"""Feature standardization for stable MLP training."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-feature zero-mean unit-variance scaling.

    Constant features get unit scale so transform stays finite.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn means and scales from a ``(n, d)`` matrix."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[0] < 1:
            raise ValueError("cannot fit a scaler on an empty matrix")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardize ``x`` with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return x * self.scale_ + self.mean_

"""Minibatch training loop for MLP regression."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.mlp import MLP
from repro.nn.optim import Adam
from repro.utils.rng import resolve_rng


@dataclass
class TrainResult:
    """Training-run summary.

    Attributes:
        iterations_run: optimizer steps actually taken (early stopping
            can end before the budget).
        best_validation_loss: lowest validation MSE seen.
        history: validation MSE per evaluation point.
    """

    iterations_run: int
    best_validation_loss: float
    history: list[float] = field(default_factory=list)


def train_regressor(model: MLP, x: np.ndarray, y: np.ndarray,
                    iterations: int = 50_000, batch_size: int = 64,
                    lr: float = 1e-3, weight_decay: float = 0.0,
                    validation_fraction: float = 0.1,
                    patience: int = 40, eval_every: int = 100,
                    seed=0) -> TrainResult:
    """Train ``model`` to regress ``y`` on ``x`` with Adam + MSE.

    The paper trains its estimator for 50k iterations; early stopping
    on a held-out split keeps reproduction runs fast without changing
    the protocol (``patience`` evaluations without improvement, model
    restored to its best point).

    Args:
        x: feature matrix ``(n, d)`` (pre-scaled by the caller).
        y: targets ``(n,)`` or ``(n, k)``.
        validation_fraction: share of rows held out for early stopping;
            0 disables early stopping.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.asarray(y, dtype=float)
    if y.ndim == 1:
        y = y[:, None]
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"{x.shape[0]} samples but {y.shape[0]} targets")
    if x.shape[0] < 2:
        raise ValueError("need at least two samples to train")
    if not 0.0 <= validation_fraction < 1.0:
        raise ValueError("validation_fraction must lie in [0, 1)")

    rng = resolve_rng(seed)
    order = rng.permutation(x.shape[0])
    n_val = int(round(validation_fraction * x.shape[0]))
    val_idx, train_idx = order[:n_val], order[n_val:]
    if train_idx.size == 0:
        raise ValueError("validation split leaves no training data")
    x_train, y_train = x[train_idx], y[train_idx]
    x_val, y_val = x[val_idx], y[val_idx]

    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    best_val = float("inf")
    best_state = model.state_dict()
    history: list[float] = []
    since_best = 0
    batch = min(batch_size, x_train.shape[0])

    it = 0
    for it in range(1, iterations + 1):
        pick = rng.integers(0, x_train.shape[0], size=batch)
        xb, yb = x_train[pick], y_train[pick]
        pred = model.forward(xb, train=True)
        grad_out = 2.0 * (pred - yb) / xb.shape[0]
        grad_w, grad_b = model.backward(grad_out)
        grads = []
        for gw, gb in zip(grad_w, grad_b):
            grads.extend((gw, gb))
        optimizer.step(grads)

        if n_val > 0 and it % eval_every == 0:
            val_pred = model.forward(x_val)
            val_loss = float(np.mean((val_pred - y_val) ** 2))
            history.append(val_loss)
            if val_loss < best_val - 1e-12:
                best_val = val_loss
                best_state = model.state_dict()
                since_best = 0
            else:
                since_best += 1
                if since_best >= patience:
                    break

    if n_val > 0:
        model.load_state_dict(best_state)
    else:
        pred = model.forward(x)
        best_val = float(np.mean((pred - y) ** 2))
    return TrainResult(iterations_run=it, best_validation_loss=best_val,
                       history=history)

"""A small NumPy neural-network library.

The paper's memory estimator is "a simple ML model": a five-layer MLP
with 200 hidden units trained on profiled memory measurements (§VI,
Eq. 7).  PyTorch is not available in this reproduction environment,
so this package implements the needed pieces from scratch: dense
layers with ReLU, mean-squared-error loss, the Adam optimizer, input/
output standardization, and a minibatch training loop with early
stopping.
"""

from repro.nn.mlp import MLP
from repro.nn.optim import Adam, SGD
from repro.nn.scaling import StandardScaler
from repro.nn.train import TrainResult, train_regressor

__all__ = ["MLP", "Adam", "SGD", "StandardScaler", "TrainResult", "train_regressor"]

"""First-order optimizers for the NumPy MLP."""

from __future__ import annotations

import numpy as np


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[np.ndarray], lr: float = 1e-2,
                 momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self, grads: list[np.ndarray]) -> None:
        """Apply one update from gradients aligned with ``params``."""
        if len(grads) != len(self.params):
            raise ValueError(f"expected {len(self.params)} grads, got {len(grads)}")
        for p, g, v in zip(self.params, grads, self._velocity):
            v *= self.momentum
            v += g
            p -= self.lr * v


class Adam:
    """Adam optimizer (Kingma & Ba 2015), the standard for small MLPs.

    ``weight_decay`` applies decoupled (AdamW-style) decay.  For the
    memory estimator this is what keeps the network's extrapolation
    tails tame: the profiled training data stops at 32 GPUs while
    predictions are needed at 128, and undecayed ReLU nets pick up
    spurious slopes that explode outside the training range.
    """

    def __init__(self, params: list[np.ndarray], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        """Apply one Adam update from gradients aligned with ``params``."""
        if len(grads) != len(self.params):
            raise ValueError(f"expected {len(self.params)} grads, got {len(grads)}")
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / correction1
            v_hat = v / correction2
            if self.weight_decay > 0.0:
                p -= self.lr * self.weight_decay * p
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

"""Multi-layer perceptron with manual backpropagation."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import resolve_rng


class MLP:
    """A fully-connected ReLU network for regression.

    Args:
        layer_sizes: sizes including input and output, e.g.
            ``[10, 200, 200, 200, 200, 1]`` is the paper's five-layer,
            200-hidden-unit estimator.
        seed: weight-initialization seed (He initialization).
    """

    def __init__(self, layer_sizes: list[int], seed=0) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least an input and an output size")
        if any(int(s) <= 0 for s in layer_sizes):
            raise ValueError(f"layer sizes must be positive, got {layer_sizes}")
        rng = resolve_rng(seed)
        self.layer_sizes = [int(s) for s in layer_sizes]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._cache: list[np.ndarray] = []

    @property
    def n_layers(self) -> int:
        """Number of weight layers (the paper's MLP has five)."""
        return len(self.weights)

    @property
    def n_parameters(self) -> int:
        """Total trainable scalars."""
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Predict outputs for a batch ``x`` of shape ``(n, d_in)``.

        With ``train=True`` the layer activations are cached for
        :meth:`backward`.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.layer_sizes[0]:
            raise ValueError(
                f"expected {self.layer_sizes[0]} input features, got {x.shape[1]}"
            )
        cache = [x]
        h = x
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i < self.n_layers - 1:
                h = np.maximum(h, 0.0)
            cache.append(h)
        if train:
            self._cache = cache
        return h

    def backward(self, grad_out: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Backpropagate ``dLoss/dOutput``; returns (weight, bias) grads.

        Requires a preceding ``forward(..., train=True)`` call on the
        same batch.
        """
        if not self._cache:
            raise RuntimeError("call forward(x, train=True) before backward()")
        grad = np.atleast_2d(np.asarray(grad_out, dtype=float))
        grad_w = [np.zeros_like(w) for w in self.weights]
        grad_b = [np.zeros_like(b) for b in self.biases]
        for i in range(self.n_layers - 1, -1, -1):
            pre_activation_input = self._cache[i]
            if i < self.n_layers - 1:
                # cache[i+1] holds the *post*-ReLU activation of layer i.
                grad = grad * (self._cache[i + 1] > 0.0)
            grad_w[i] = pre_activation_input.T @ grad
            grad_b[i] = grad.sum(axis=0)
            if i > 0:
                grad = grad @ self.weights[i].T
        return grad_w, grad_b

    def parameters(self) -> list[np.ndarray]:
        """Flat list of parameter arrays (weights then biases interleaved)."""
        params = []
        for w, b in zip(self.weights, self.biases):
            params.extend((w, b))
        return params

    def state_dict(self) -> dict:
        """Serializable copy of all parameters."""
        return {
            "layer_sizes": list(self.layer_sizes),
            "weights": [w.copy() for w in self.weights],
            "biases": [b.copy() for b in self.biases],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        if list(state["layer_sizes"]) != self.layer_sizes:
            raise ValueError(
                f"architecture mismatch: {state['layer_sizes']} vs {self.layer_sizes}"
            )
        self.weights = [np.array(w, dtype=float) for w in state["weights"]]
        self.biases = [np.array(b, dtype=float) for b in state["biases"]]

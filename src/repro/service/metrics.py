"""Prometheus-text-format metrics for the serving stack, stdlib only.

A planning service that answers live traffic needs to be *observable*:
an operator watching ``GET /metrics`` must be able to tell how many
requests each cluster answered (and how — cache hit, fresh search,
coalesced, rejected), how deep the lanes are queued, and where the
latency distribution sits, without attaching a debugger to the
gateway.  This module supplies the minimal instrument set the serving
stack needs — :class:`Counter`, :class:`Gauge`, :class:`Histogram`,
collected in a :class:`MetricsRegistry` that renders the Prometheus
text exposition format (version 0.0.4) — with no dependency beyond
the standard library.

Two ways to feed an instrument:

* **event-driven** — call :meth:`Counter.inc` / :meth:`Histogram.observe`
  at the moment something happens.  The gateway uses this for
  per-request outcomes and latency, which exist nowhere else.
* **pull-bound** — :meth:`Counter.bind` / :meth:`Gauge.set_function`
  attach a zero-argument callable that is read at scrape time.  The
  cache, service, and gateway counters that already live in
  ``CacheStats`` / ``GatewayStats`` are exported this way, so the
  ``/metrics`` page and the in-process stats objects *cannot*
  disagree — they are the same numbers (see
  ``tests/test_service_metrics.py`` for the regression contract).

Instruments are identified by name: asking the registry for an
existing name returns the existing family (so every cluster's cache
can attach to one ``pipette_cache_hits_total`` family under its own
``cluster`` label), while a name re-registered with a different kind
or label set raises.  All instruments are thread-safe — drain threads
and the event loop increment them concurrently.

The full catalog of series exported by the serving stack, with labels
and meanings, is documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_expositions",
]

#: Histogram bucket bounds (seconds) used for plan latency: the low
#: end resolves cache hits and transport overhead (milliseconds), the
#: high end resolves cold Algorithm-1 searches (tens of seconds).
DEFAULT_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                           0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsError(ValueError):
    """An instrument was misused (bad name, conflicting registration)."""


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """One sample value in exposition format (integers stay integral)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(pairs: "tuple[tuple[str, str], ...]") -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


class _Child:
    """One labeled time series of a family; value or pull-callback."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn = None

    @property
    def value(self) -> float:
        """Current sample value (calls the bound function, if any)."""
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class _CounterChild(_Child):
    """A monotonically increasing series."""

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricsError(f"counters only go up; inc({amount})")
        with self._lock:
            self._value += amount

    def bind(self, fn) -> "_CounterChild":
        """Read this series from ``fn()`` at scrape time instead.

        The callable must be monotonic for the series to behave as a
        Prometheus counter; binding the same child twice (two owners
        claiming one series) raises.
        """
        with self._lock:
            if self._fn is not None:
                raise MetricsError("series is already bound to a callback")
            self._fn = fn
        return self


class _GaugeChild(_Child):
    """A series that can go up and down, or mirror a live value."""

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    def set_function(self, fn) -> "_GaugeChild":
        """Read this series from ``fn()`` at scrape time (live view)."""
        with self._lock:
            if self._fn is not None:
                raise MetricsError("series is already bound to a callback")
            self._fn = fn
        return self


class _HistogramChild:
    """One labeled latency/size distribution (cumulative buckets)."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum")

    def __init__(self, lock: threading.Lock,
                 bounds: "tuple[float, ...]") -> None:
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        """Total observations recorded."""
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def _snapshot(self) -> "tuple[list[int], float]":
        with self._lock:
            return list(self._counts), self._sum


class _Family:
    """A named metric with zero or more labeled children.

    Families are created through :class:`MetricsRegistry`; a family
    with no label names owns a single default child and proxies the
    child's mutators (``counter.inc()`` works without ``labels()``).
    """

    kind = "untyped"

    def __init__(self, name: str, documentation: str,
                 labelnames: "tuple[str, ...]") -> None:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricsError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise MetricsError(f"duplicate label names in {labelnames}")
        self.name = name
        self.documentation = documentation
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: "dict[tuple[str, ...], object]" = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child series for exactly this label assignment."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricsError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(labelvalues)}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default(self):
        if self.labelnames:
            raise MetricsError(
                f"{self.name} is labeled by {self.labelnames}; "
                "select a series with labels() first")
        return self._children[()]

    def _items(self) -> "list[tuple[tuple[tuple[str, str], ...], object]]":
        with self._lock:
            return [(tuple(zip(self.labelnames, key)), child)
                    for key, child in self._children.items()]

    def _sample_lines(self) -> "list[str]":
        return [f"{self.name}{_render_labels(pairs)} "
                f"{_format_value(child.value)}"
                for pairs, child in self._items()]


class Counter(_Family):
    """A monotonically increasing metric family.

    Feed it with :meth:`inc` per event, or :meth:`bind` a callable
    reading an existing monotonic counter (e.g. a ``CacheStats``
    field) so the exposition can never drift from the source.
    """

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the (unlabeled) default series."""
        self._default().inc(amount)

    def bind(self, fn) -> _CounterChild:
        """Pull-bind the (unlabeled) default series to ``fn()``."""
        return self._default().bind(fn)

    @property
    def value(self) -> float:
        """Current value of the (unlabeled) default series."""
        return self._default().value


class Gauge(_Family):
    """A metric family whose series can rise and fall."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        """Set the (unlabeled) default series."""
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the (unlabeled) default series."""
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the (unlabeled) default series."""
        self._default().dec(amount)

    def set_function(self, fn) -> _GaugeChild:
        """Pull-bind the (unlabeled) default series to ``fn()``."""
        return self._default().set_function(fn)

    @property
    def value(self) -> float:
        """Current value of the (unlabeled) default series."""
        return self._default().value


class Histogram(_Family):
    """A distribution family with cumulative buckets.

    Args:
        buckets: ascending upper bounds; a ``+Inf`` bucket is always
            appended.  Defaults to :data:`DEFAULT_LATENCY_BUCKETS`.
    """

    kind = "histogram"

    def __init__(self, name: str, documentation: str,
                 labelnames: "tuple[str, ...]" = (),
                 buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
                 ) -> None:
        bounds = tuple(float(b) for b in buckets if not math.isinf(b))
        if not bounds:
            raise MetricsError("histogram needs at least one finite bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricsError(
                f"histogram buckets must be strictly ascending: {buckets}")
        if "le" in labelnames:
            raise MetricsError("'le' is reserved for histogram buckets")
        self.buckets = bounds
        super().__init__(name, documentation, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation on the (unlabeled) default series."""
        self._default().observe(value)

    def _sample_lines(self) -> "list[str]":
        lines = []
        for pairs, child in self._items():
            counts, total = child._snapshot()
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                bucket_pairs = pairs + (("le", _format_value(bound)),)
                lines.append(f"{self.name}_bucket"
                             f"{_render_labels(bucket_pairs)} {cumulative}")
            cumulative += counts[-1]
            inf_pairs = pairs + (("le", "+Inf"),)
            lines.append(f"{self.name}_bucket{_render_labels(inf_pairs)} "
                         f"{cumulative}")
            lines.append(f"{self.name}_sum{_render_labels(pairs)} "
                         f"{_format_value(total)}")
            lines.append(f"{self.name}_count{_render_labels(pairs)} "
                         f"{cumulative}")
        return lines


class MetricsRegistry:
    """Named instruments behind one ``/metrics`` page.

    The registry is the unit of exposition: everything the serving
    stack attaches to one registry renders as one Prometheus text
    document (:meth:`render`), in registration order.  Asking for an
    instrument that already exists returns the existing family when
    the kind and label names match, so independent components can
    share a family and differ only in label values; a mismatch raises
    :class:`MetricsError` rather than silently forking the series.
    """

    #: Content-Type of the rendered exposition, for HTTP servers.
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "dict[str, _Family]" = {}

    def _get_or_register(self, cls, name: str, documentation: str,
                         labelnames: "tuple[str, ...]", **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls \
                        or existing.labelnames != tuple(labelnames):
                    raise MetricsError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels {existing.labelnames}")
                return existing
            family = cls(name, documentation, tuple(labelnames), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, documentation: str,
                labelnames: "tuple[str, ...]" = ()) -> Counter:
        """Get or register a :class:`Counter` family."""
        return self._get_or_register(Counter, name, documentation, labelnames)

    def gauge(self, name: str, documentation: str,
              labelnames: "tuple[str, ...]" = ()) -> Gauge:
        """Get or register a :class:`Gauge` family."""
        return self._get_or_register(Gauge, name, documentation, labelnames)

    def histogram(self, name: str, documentation: str,
                  labelnames: "tuple[str, ...]" = (),
                  buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        """Get or register a :class:`Histogram` family."""
        return self._get_or_register(Histogram, name, documentation,
                                     labelnames, buckets=buckets)

    def get(self, name: str) -> "_Family | None":
        """The registered family under ``name``, if any."""
        with self._lock:
            return self._families.get(name)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            families = list(self._families.values())
        lines = []
        for family in families:
            lines.append(f"# HELP {family.name} "
                         f"{_escape_help(family.documentation)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family._sample_lines())
        return "\n".join(lines) + "\n"


# ------------------------------------------------------- fleet aggregation

_MERGE_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s(.+)$")
_HISTOGRAM_SUFFIX_RE = re.compile(r"_(bucket|sum|count)$")


def merge_expositions(pages, label: str = "worker") -> str:
    """Merge several Prometheus pages into one labeled exposition.

    The fleet router's ``GET /metrics`` problem: every worker renders
    the same families (``pipette_requests_total``, ...), and a valid
    exposition declares each family's ``# HELP``/``# TYPE`` exactly
    once with all its samples grouped together.  This function takes
    ``(label value, page text)`` pairs — one per worker — injects
    ``label="value"`` as the first label of every sample, and regroups
    samples under a single declaration per family (the first page's
    wording wins), so the merged page is scrapeable and per-worker
    series stay distinguishable.

    Samples must not already carry ``label`` (the router guarantees
    this: workers know nothing of their shard index); a malformed
    sample line raises :class:`MetricsError` rather than producing an
    exposition a scraper would reject.  Families keep first-seen
    order, which keeps merged pages stable across scrapes.
    """
    if not _LABEL_RE.match(label):
        raise MetricsError(f"invalid merge label name {label!r}")
    families: "dict[str, dict]" = {}
    for value, text in pages:
        escaped = _escape_label(str(value))
        current = None
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                name = line.split(None, 3)[2]
                family = families.setdefault(
                    name, {"help": None, "type": None, "samples": []})
                if family["help"] is None:
                    family["help"] = line
                continue
            if line.startswith("# TYPE "):
                name = line.split(None, 3)[2]
                family = families.setdefault(
                    name, {"help": None, "type": None, "samples": []})
                if family["type"] is None:
                    family["type"] = line
                current = name
                continue
            if line.startswith("#"):
                continue  # other comments carry no samples
            match = _MERGE_SAMPLE_RE.match(line)
            if match is None:
                raise MetricsError(f"malformed sample line {line!r}")
            name, labels, sample_value = match.groups()
            if name in families:
                family_name = name
            elif _HISTOGRAM_SUFFIX_RE.sub("", name) in families:
                family_name = _HISTOGRAM_SUFFIX_RE.sub("", name)
            elif current is not None:
                family_name = current
            else:
                raise MetricsError(
                    f"sample {name!r} has no preceding # TYPE")
            if labels:
                relabeled = f'{{{label}="{escaped}",{labels[1:-1]}}}'
            else:
                relabeled = f'{{{label}="{escaped}"}}'
            families[family_name]["samples"].append(
                f"{name}{relabeled} {sample_value}")
    lines = []
    for name, family in families.items():
        if family["help"] is not None:
            lines.append(family["help"])
        if family["type"] is not None:
            lines.append(family["type"])
        lines.extend(family["samples"])
    return "\n".join(lines) + "\n" if lines else ""

"""Background template warming: fill the library off the request path.

Generating a :class:`~repro.core.templates.TemplateLibrary` costs one
Algorithm-1-shaped search per node count — exactly the work the
library exists to keep *off* the failure-recovery path.  The
:class:`TemplateWarmer` runs that generation on a daemon thread:
:meth:`~repro.service.planner.PlanningService.warm_templates` already
snapshots service state and searches outside the service lock (fanning
over the service's executor), so plan requests keep draining while the
library fills, and the finished library installs atomically.

A warmer with a :class:`~repro.service.store.TemplateStore` persists
every freshly generated library and can :meth:`rehydrate` a persisted
one at startup — the template analogue of the durable plan cache.
"""

from __future__ import annotations

import threading

from repro.core.templates import TemplateLibrary
from repro.model.transformer import TransformerConfig
from repro.obs.logs import get_logger
from repro.service.store import TemplateStore

_log = get_logger("service.warmer")


class TemplateWarmer:
    """Fills one service's template library in the background.

    Args:
        service: the :class:`~repro.service.planner.PlanningService`
            to warm.
        store: optional durable home; freshly warmed libraries are
            saved to it and :meth:`rehydrate` loads from it.

    One warmer runs one generation at a time: :meth:`start` while a
    previous run is still in flight raises rather than racing two
    generations against each other (last-install-wins would silently
    discard one of them).
    """

    def __init__(self, service, store: TemplateStore | None = None) -> None:
        self.service = service
        self.store = store
        self._thread: threading.Thread | None = None
        self._result: TemplateLibrary | None = None
        self._error: BaseException | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ api

    def rehydrate(self) -> TemplateLibrary | None:
        """Install the persisted library, if the store holds one."""
        if self.store is None:
            return None
        library = self.store.load()
        if library is not None:
            self.service.set_template_library(library)
            _log.info("template library rehydrated", extra={
                "path": str(self.store.path), "templates": library.size})
        return library

    def warm(self, model: TransformerConfig, global_batch: int,
             **kwargs) -> TemplateLibrary:
        """Generate, install, and (when stored) persist — synchronously.

        ``kwargs`` pass through to
        :meth:`~repro.service.planner.PlanningService.warm_templates`
        (node range, memory limit, sweep restrictions, options).
        """
        library = self.service.warm_templates(model, global_batch, **kwargs)
        if self.store is not None:
            self.store.save(library)
        return library

    def start(self, model: TransformerConfig, global_batch: int,
              **kwargs) -> threading.Thread:
        """Kick off :meth:`warm` on a daemon thread and return it."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                raise RuntimeError("a template warm-up is already running")
            self._result = None
            self._error = None

            def _run() -> None:
                try:
                    result = self.warm(model, global_batch, **kwargs)
                    with self._lock:
                        self._result = result
                except BaseException as exc:  # surfaced via wait()
                    with self._lock:
                        self._error = exc
                    _log.error("template warm-up failed",
                               extra={"error": str(exc)})

            self._thread = threading.Thread(
                target=_run, name="template-warmer", daemon=True)
            self._thread.start()
            return self._thread

    def wait(self, timeout: float | None = None) -> TemplateLibrary | None:
        """Join the background run; return its library.

        Returns ``None`` while still running (timeout expired) or when
        no run was started; re-raises the run's exception if it failed.
        """
        with self._lock:
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
        with self._lock:
            if self._error is not None:
                raise self._error
            return self._result

    @property
    def running(self) -> bool:
        """Whether a background warm-up is in flight."""
        with self._lock:
            return self._thread is not None and self._thread.is_alive()

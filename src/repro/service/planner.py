"""The planning service: Pipette behind a request/response front door.

One :class:`PlanningService` owns everything that is expensive to
acquire and slow to change for a cluster — the profiled bandwidth
matrix, the per-model compute profiles, the fitted memory estimator,
a worker pool — and answers :class:`~repro.service.cache.PlanRequest`\\ s
against that state:

* identical requests are answered from the LRU plan cache
  (:mod:`repro.service.cache`);
* requests queued together are *deduplicated in flight* — one search
  serves every ticket with the same fingerprint;
* cache misses run Algorithm 1, optionally fanned over the service's
  :class:`~repro.service.executor.CandidateExecutor`;
* a re-profiled matrix that drifted beyond the threshold, or a node
  failure, rolls the bandwidth epoch and retires stale plans
  (:meth:`PlanningService.update_bandwidth`,
  :meth:`PlanningService.replan`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.topology import ClusterSpec
from repro.core.annealing import anneal_mapping
from repro.core.configurator import (
    PipetteConfigurator,
    PipetteOptions,
    PipetteResult,
    RankedConfig,
    SearchContext,
    candidate_kernel,
)
from repro.core.memory_estimator import MemoryEstimator
from repro.core.templates import (
    PipelineTemplate,
    PipelineTemplateGenerator,
    TemplateLibrary,
)
from repro.model.transformer import TransformerConfig
from repro.obs.logs import get_logger
from repro.obs.trace import TRACER, Span
from repro.profiling.profile_run import ComputeProfile, profile_compute
from repro.service.cache import PlanCache, PlanRequest
from repro.service.executor import CandidateExecutor
from repro.service.replan import (
    DEFAULT_DRIFT_THRESHOLD,
    ClusterEvent,
    ReplanReport,
    default_warm_sa,
    drift_exceeds,
    replan,
    shrink_cluster,
    surviving_gpus,
)

_log = get_logger("service.planner")


@dataclass(frozen=True)
class PlanTicket:
    """Receipt for one queued request.

    ``trace`` optionally carries the caller's span across the queue:
    the gateway submits from the event loop but the drain answers in a
    worker thread, where context-local parenting cannot follow — the
    ticket itself is the hand-off.  Excluded from comparison and repr;
    a traced ticket equals its untraced twin.
    """

    index: int
    fingerprint: str
    request: PlanRequest
    trace: "Span | None" = field(default=None, compare=False, repr=False)


@dataclass
class PlanResponse:
    """Answer to one ticket.

    Attributes:
        ticket: the receipt being answered.
        result: the finished plan (``None`` when ``status == "error"``).
        status: how it was obtained — ``"hit"`` (served from cache),
            ``"miss"`` (searched now), ``"deduped"`` (shared the
            search of an identical in-flight request), or ``"error"``
            (this ticket failed; the batch around it was answered).
        elapsed_s: time this ticket's answer took within its drain.
        error: what went wrong, for ``"error"`` responses.
    """

    ticket: PlanTicket
    result: PipetteResult | None
    status: str
    elapsed_s: float
    error: str | None = None

    @property
    def best(self) -> RankedConfig | None:
        """Shortcut to the recommended configuration."""
        return self.result.best if self.result is not None else None


class PlanningService:
    """A persistent planner for one profiled cluster.

    Args:
        cluster: the cluster this service plans for.
        bandwidth: its profiled matrix (Algorithm 1, line 1).
        memory_estimator: fitted estimator shared by all requests
            (the paper trains it once per cluster); ``None`` disables
            the memory check.
        executor: candidate executor for parallel search; ``None``
            searches serially.
        cache: plan store; defaults to a fresh 128-entry LRU.
        profile_seed: seed of lazily collected compute profiles.

    The service was single-caller by construction through PR 2; it is
    now safe for concurrent use.  One reentrant lock serializes every
    entry point that reads or mutates service state — queue, cache,
    profiles, cluster/bandwidth epoch — so a drain running in one
    thread can never interleave with an elastic event (or a second
    drain) in another.  Searches run *under* the lock on purpose: a
    cluster answers one drain at a time (cross-cluster concurrency is
    the registry's and gateway's job), and an epoch roll midway
    through a search could otherwise hand out a plan computed against
    a matrix the service no longer trusts.
    """

    def __init__(self, cluster: ClusterSpec, bandwidth: BandwidthMatrix,
                 memory_estimator: MemoryEstimator | None = None,
                 executor: CandidateExecutor | None = None,
                 cache: PlanCache | None = None,
                 profile_seed: int = 0) -> None:
        if bandwidth.n_gpus != cluster.n_gpus:
            raise ValueError(
                f"bandwidth matrix covers {bandwidth.n_gpus} GPUs but the "
                f"cluster has {cluster.n_gpus}"
            )
        self.cluster = cluster
        self.bandwidth = bandwidth
        self.bandwidth_fp = bandwidth.fingerprint()
        self.memory_estimator = memory_estimator
        self.executor = executor
        # ``cache or PlanCache()`` would discard an *empty* caller
        # cache (len() == 0 is falsy) — fatal for a durable cache that
        # happens to start empty.
        self.cache = cache if cache is not None else PlanCache()
        self.profile_seed = profile_seed
        self._profiles: "dict[TransformerConfig, ComputeProfile]" = {}
        self._queue: "list[PlanTicket]" = []
        self._submitted = 0
        # Where re-plan warm starts came from (ReplanReport.warm_source).
        self._warm_sources = {"template": 0, "best": 0, "portfolio": 0,
                              "cold": 0}
        # Elastic template library (None until warmed) and its lookup
        # outcomes, exported as pipette_template_lookups_total.
        self._template_library: TemplateLibrary | None = None
        self._template_lookups = {"hit": 0, "miss": 0}
        self._lock = threading.RLock()

    # ------------------------------------------------------------- profiles

    def profile_for(self, model: TransformerConfig) -> ComputeProfile:
        """The (cached) compute profile of ``model`` on this cluster."""
        with self._lock:
            profile = self._profiles.get(model)
            if profile is None:
                profile = profile_compute(model, self.cluster,
                                          seed=self.profile_seed)
                self._profiles[model] = profile
            return profile

    # ------------------------------------------------------------ requests

    def request(self, model: TransformerConfig, global_batch: int,
                **kwargs) -> PlanRequest:
        """Convenience constructor bound to this service's cluster."""
        return PlanRequest(cluster=self.cluster, model=model,
                           global_batch=global_batch, **kwargs)

    def _make_ticket(self, request: PlanRequest,
                     trace: "Span | None" = None) -> PlanTicket:
        with self._lock:
            if request.cluster != self.cluster:
                raise ValueError(
                    f"request is for cluster {request.cluster.name!r} "
                    f"({request.cluster.n_nodes} nodes) but this service "
                    f"plans for {self.cluster.name!r} "
                    f"({self.cluster.n_nodes} nodes); searches run against "
                    "this service's profiled matrix, so the specs must "
                    "match exactly"
                )
            ticket = PlanTicket(index=self._submitted,
                                fingerprint=request.fingerprint(),
                                request=request, trace=trace)
            self._submitted += 1
            return ticket

    def submit(self, request: PlanRequest,
               trace: "Span | None" = None) -> PlanTicket:
        """Queue a request; :meth:`drain` answers all queued tickets.

        ``trace`` rides along on the ticket so the spans of the
        eventual answer parent to the submitting caller's trace even
        though the drain runs in a different thread.
        """
        with self._lock:
            ticket = self._make_ticket(request, trace=trace)
            self._queue.append(ticket)
            return ticket

    def _answer(self, ticket: PlanTicket) -> PlanResponse:
        """Answer one ticket from cache or by searching (may raise)."""
        t0 = time.perf_counter()
        lookup = TRACER.start_span("plan.cache_lookup", parent=ticket.trace,
                                   fingerprint=ticket.fingerprint)
        result = self.cache.get(ticket.fingerprint, self.bandwidth_fp)
        lookup.set_attribute("outcome",
                             "miss" if result is None else "hit").end()
        status = "hit"
        if result is None:
            with TRACER.span("plan.search", parent=ticket.trace,
                             fingerprint=ticket.fingerprint,
                             cluster=self.cluster.name):
                result = self._search(ticket.request)
            self.cache.put(ticket.fingerprint, self.bandwidth_fp, result)
            status = "miss"
        # The drain thread has no context-local span, so the join key
        # is spelled out from the ticket's own trace.
        extra = {"cluster": self.cluster.name, "status": status,
                 "elapsed_ms": round((time.perf_counter() - t0) * 1000, 3)}
        if ticket.trace is not None and ticket.trace.recording:
            extra["trace_id"] = ticket.trace.trace_id
        _log.debug("ticket answered", extra=extra)
        return PlanResponse(ticket=ticket, result=result, status=status,
                            elapsed_s=time.perf_counter() - t0)

    def drain(self) -> list[PlanResponse]:
        """Answer every queued ticket, in submission order.

        Tickets are grouped by fingerprint first: each group costs at
        most one search regardless of its size (in-flight dedup), and
        nothing at all when the plan cache already holds the answer
        for the current bandwidth epoch.  ``"deduped"`` responses
        report their *own* (near-zero) answer time, not the elapsed
        time of the search they shared — per-ticket accounting must
        not bill one search N times.  A ticket that fails (e.g. it was
        queued for a cluster the service no longer plans for) yields
        an ``"error"`` response and the rest of the batch is still
        answered; identical failing tickets share the first failure
        instead of re-raising the same search N times.

        The whole drain runs under the service lock: a concurrent
        drain (two threads racing the same service) answers an empty
        batch rather than splitting tickets, and an elastic event
        waits for the batch to finish rather than rolling the epoch
        under a search.
        """
        with self._lock:
            tickets, self._queue = self._queue, []
            answered: "dict[str, PlanResponse]" = {}
            failed: "dict[str, str]" = {}
            responses = []
            for ticket in tickets:
                t0 = time.perf_counter()
                known = answered.get(ticket.fingerprint)
                if known is not None:
                    responses.append(PlanResponse(
                        ticket=ticket, result=known.result, status="deduped",
                        elapsed_s=time.perf_counter() - t0))
                    continue
                failure = failed.get(ticket.fingerprint)
                if failure is not None:
                    responses.append(PlanResponse(
                        ticket=ticket, result=None, status="error",
                        elapsed_s=time.perf_counter() - t0, error=failure))
                    continue
                try:
                    response = self._answer(ticket)
                except (ValueError, RuntimeError) as exc:
                    failed[ticket.fingerprint] = str(exc)
                    responses.append(PlanResponse(
                        ticket=ticket, result=None, status="error",
                        elapsed_s=time.perf_counter() - t0, error=str(exc)))
                    continue
                answered[ticket.fingerprint] = response
                responses.append(response)
            return responses

    def plan(self, request: PlanRequest) -> PlanResponse:
        """Answer one request immediately.

        Bypasses the queue: tickets other callers have submitted stay
        queued for their own :meth:`drain`.  Errors raise rather than
        coming back as ``"error"`` responses.
        """
        with self._lock:
            return self._answer(self._make_ticket(request))

    def _search(self, request: PlanRequest) -> PipetteResult:
        if request.cluster != self.cluster:
            # Tickets can outlive a node failure that shrank the
            # service's cluster between submit and drain.
            raise ValueError(
                f"request targets cluster {request.cluster.name!r} "
                f"({request.cluster.n_nodes} nodes) but the service now "
                f"plans for {self.cluster.n_nodes} nodes; re-submit "
                "against the current cluster"
            )
        if request.options.use_worker_dedication:
            # A warmed template library answers covered requests
            # without running Algorithm 1: instantiate the
            # precomputed leader and polish its slot assignment
            # against the *live* fabric.  This is the fast path a
            # post-failure plan request takes once the service has
            # shrunk to a covered node count.
            template = self._lookup_template(request, self.cluster.n_nodes)
            if template is not None:
                return self._answer_from_template(request, template)
        configurator = PipetteConfigurator(
            self.cluster, request.model, self.bandwidth,
            self.profile_for(request.model), self.memory_estimator,
            options=request.options,
        )
        micro = list(request.micro_batches) \
            if request.micro_batches is not None else None
        return configurator.search(
            request.global_batch,
            memory_limit_bytes=request.memory_limit_bytes,
            micro_batches=micro,
            schedules=request.schedules,
            executor=self.executor,
        )

    # ------------------------------------------------------------ templates

    @property
    def template_library(self) -> TemplateLibrary | None:
        """The installed elastic template library (``None`` until warmed).

        Deliberately lock-free: ``drain()`` holds the service lock for
        the whole of every search, and ``/healthz`` reads this property
        per cluster — taking the lock here would queue liveness probes
        behind cache-miss searches.  A single attribute read is atomic
        under the GIL, and installs swap the whole reference, so the
        worst a racing reader sees is the previous complete library.
        """
        return self._template_library

    def set_template_library(self,
                             library: TemplateLibrary | None) -> None:
        """Install (or clear) the elastic template library.

        The library must describe this service's node family — same
        GPUs per node — or lookups could instantiate geometrically
        impossible mappings.
        """
        with self._lock:
            if library is not None \
                    and library.gpus_per_node != self.cluster.gpus_per_node:
                raise ValueError(
                    f"library was generated for {library.gpus_per_node} "
                    f"GPUs/node but this cluster has "
                    f"{self.cluster.gpus_per_node}"
                )
            self._template_library = library

    def warm_templates(self, model: TransformerConfig, global_batch: int,
                       min_nodes: int = 1, max_nodes: int | None = None,
                       memory_limit_bytes: float | None = None,
                       micro_batches: "list[int] | None" = None,
                       schedules: "tuple[str, ...] | list[str] | None" = None,
                       options: PipetteOptions | None = None,
                       templates_per_count: int | None = None,
                       ) -> TemplateLibrary:
        """Generate and install the template library for ``model``.

        Generation runs *outside* the service lock against a snapshot
        of the cluster state, so plan requests keep draining while the
        library fills (the :class:`~repro.service.warmer.TemplateWarmer`
        calls this from a background thread).  Only the final install
        retakes the lock.
        """
        with self._lock:
            cluster = self.cluster
            bandwidth = self.bandwidth
            profile = self.profile_for(model)
        generator = PipelineTemplateGenerator(
            model, cluster, bandwidth, profile,
            memory_estimator=self.memory_estimator,
            options=options or PipetteOptions(),
        )
        kwargs = {} if templates_per_count is None \
            else {"templates_per_count": templates_per_count}
        library = generator.generate(
            global_batch, min_nodes=min_nodes, max_nodes=max_nodes,
            memory_limit_bytes=memory_limit_bytes,
            micro_batches=micro_batches, schedules=schedules,
            executor=self.executor, **kwargs)
        self.set_template_library(library)
        _log.info("template library warmed", extra={
            "cluster": cluster.name, "model": model.name,
            "templates": library.size,
            "covered_counts": list(library.covered_counts)})
        return library

    def _lookup_template(self, request: PlanRequest,
                         n_nodes: int) -> "PipelineTemplate | None":
        """Library lookup for ``request`` at ``n_nodes``, with accounting.

        Returns ``None`` (and counts nothing) when no library is
        installed; otherwise every call counts a hit or a miss in
        ``pipette_template_lookups_total`` and leaves a
        ``templates.lookup`` span behind.
        """
        library = self._template_library
        if library is None:
            return None
        template = None
        if library.matches(request.model.name, request.global_batch):
            template = library.lookup(
                n_nodes,
                micro_batches=request.micro_batches,
                schedules=request.schedules,
                memory_limit_bytes=request.memory_limit_bytes,
            )
        outcome = "hit" if template is not None else "miss"
        self._template_lookups[outcome] += 1
        TRACER.record_span("templates.lookup", 0.0, outcome=outcome,
                           n_nodes=n_nodes, model=request.model.name)
        return template

    def _answer_from_template(self, request: PlanRequest,
                              template: PipelineTemplate) -> PipetteResult:
        """Instantiate a template and polish it against the live fabric.

        The stored placement (and its portfolio runner-ups) are
        re-scored on the current bandwidth matrix in one batched
        kernel call; the best seeds a quarter-budget anneal — the same
        slot-assignment polish an elastic re-plan runs.  The result is
        a regular :class:`PipetteResult`, cacheable under the current
        epoch like any searched plan.
        """
        t0 = time.perf_counter()
        with TRACER.span("search.template", warm_source="template",
                         n_nodes=template.n_nodes,
                         schedule=template.config.schedule) as span:
            leader = template.instantiate(self.cluster)
            warm_sa = default_warm_sa(request.options.sa)
            ctx = SearchContext(
                cluster=self.cluster, model=request.model,
                bandwidth=self.bandwidth,
                profile=self.profile_for(request.model),
                memory_estimator=self.memory_estimator, sa=warm_sa)
            kernel = candidate_kernel(ctx, leader.config)
            starts = [leader.mapping, *leader.portfolio]
            if len(starts) > 1:
                perms = np.stack([np.asarray(m.block_to_slot, dtype=np.int64)
                                  for m in starts])
                start = starts[int(np.argmin(kernel.evaluate_batch(perms)))]
            else:
                start = starts[0]
            sa_result = anneal_mapping(
                start, kernel, warm_sa.with_seed(request.options.seed))
            entry = RankedConfig(
                config=leader.config, mapping=sa_result.mapping,
                estimated_latency_s=sa_result.value,
                estimated_memory_bytes=leader.estimated_memory_bytes,
                memory_ok=leader.memory_ok,
                portfolio=tuple(m for m, _ in sa_result.portfolio[1:]),
            )
            span.set_attribute("estimated_latency_s", entry.estimated_latency_s)
            return PipetteResult(
                best=entry, ranked=[entry], rejected_oom=0,
                memory_check_s=0.0, annealing_s=sa_result.elapsed_s,
                total_s=time.perf_counter() - t0,
            )

    # -------------------------------------------------------------- elastic

    def apply_failure(self, *failed_nodes: int) -> int:
        """Adopt the post-failure world without re-planning anything.

        Installs the shrunken cluster and the survivor-restricted
        matrix, rolls the bandwidth epoch, and retires every cached
        plan and per-model profile (they all reference GPUs that no
        longer all exist).  Unlike :meth:`replan`, no request is
        needed — a registry can propagate a failure event to the right
        cluster and let later requests re-plan on demand.  Returns the
        number of retired plans.
        """
        with self._lock:
            keep = surviving_gpus(self.cluster, failed_nodes)
            self.cluster = shrink_cluster(self.cluster, failed_nodes)
            self.bandwidth = self.bandwidth.restrict(keep)
            self.bandwidth_fp = self.bandwidth.fingerprint()
            retired = len(self.cache)
            self.cache.clear()
            self._profiles.clear()
            return retired

    def update_bandwidth(self, new_bandwidth: BandwidthMatrix,
                         drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
                         ) -> int:
        """Adopt a re-profiled matrix; retire stale plans if it drifted.

        Drift is always measured against the *epoch baseline* — the
        matrix the cached plans were actually searched against — so
        slow cumulative drift cannot ratchet past the threshold
        unnoticed.  A re-profile within the threshold is treated as
        measurement wiggle and discarded entirely (cached plans stay
        valid; re-searching over profiler noise would thrash the cache
        for identical answers).  Drift beyond it adopts the new matrix,
        rolls the epoch, and drops every cached plan searched against
        the old fabric.  Returns the number of retired plans.
        """
        with self._lock:
            if new_bandwidth.n_gpus != self.cluster.n_gpus:
                raise ValueError(
                    f"new matrix covers {new_bandwidth.n_gpus} GPUs but the "
                    f"cluster has {self.cluster.n_gpus}"
                )
            if not drift_exceeds(self.bandwidth, new_bandwidth,
                                 drift_threshold):
                return 0
            self.bandwidth = new_bandwidth
            self.bandwidth_fp = new_bandwidth.fingerprint()
            return self.cache.invalidate_epoch(self.bandwidth_fp)

    def replan(self, request: PlanRequest, event: ClusterEvent,
               new_bandwidth: BandwidthMatrix | None = None,
               run_cold: bool = True) -> ReplanReport:
        """Answer ``request`` again after ``event``, warm-starting.

        The previous plan is taken from the cache (or computed now if
        the service never answered this request).  The service then
        *adopts* the post-event world, so later answers agree with the
        report: a node failure installs the shrunken cluster and
        survivor matrix (retiring the whole cache and the per-model
        profiles — every cached plan maps workers onto GPUs that no
        longer all exist); a drift event installs ``new_bandwidth``
        unconditionally (the caller declared it real — the
        :meth:`update_bandwidth` threshold is for routine re-profiles,
        not declared events) and seeds the fresh epoch with the cold
        result when one was computed.  Tickets still queued for the
        pre-failure cluster get ``"error"`` responses at drain rather
        than being answered with a stale plan.
        """
        with self._lock:
            previous = self.plan(request).best
            if previous is None:
                raise RuntimeError(
                    "no feasible previous plan to warm-start from")
            template = None
            if event.kind == "node_failure":
                # Consult the warmed library for the surviving node
                # count first: a hit skips the re-rank search and
                # reports warm_source="template".
                survivors = self.cluster.n_nodes \
                    - len({int(n) for n in event.failed_nodes})
                if survivors >= 1:
                    template = self._lookup_template(request, survivors)
            report = replan(
                self.cluster, request.model, self.bandwidth,
                self.profile_for(request.model), previous, event,
                memory_estimator=self.memory_estimator,
                options=request.options,
                new_bandwidth=new_bandwidth,
                memory_limit_bytes=request.memory_limit_bytes,
                micro_batches=list(request.micro_batches)
                if request.micro_batches is not None else None,
                schedules=request.schedules,
                executor=self.executor,
                run_cold=run_cold,
                template=template,
            )
            self._warm_sources[report.warm_source] = \
                self._warm_sources.get(report.warm_source, 0) + 1
            if event.kind == "node_failure":
                self.cluster = report.cluster
                self.bandwidth = report.bandwidth
                self.bandwidth_fp = report.bandwidth.fingerprint()
                self.cache.clear()
                self._profiles.clear()
            else:
                self.bandwidth = report.bandwidth
                self.bandwidth_fp = report.bandwidth.fingerprint()
                self.cache.invalidate_epoch(self.bandwidth_fp)
                if report.cold_result is not None:
                    # The cold search is exactly what a fresh plan() of
                    # this request would compute — don't pay for it
                    # twice.
                    self.cache.put(request.fingerprint(),
                                   self.bandwidth_fp, report.cold_result)
            return report

    # --------------------------------------------------------------- metrics

    def attach_metrics(self, metrics, cluster: str) -> None:
        """Export this service's counters on a metrics registry.

        Attaches the plan cache (:meth:`PlanCache.attach_metrics`) and
        the service's own series under the ``cluster`` label.  All
        series are pull-bound to the live state, so ``/metrics`` and
        :attr:`stats` cannot disagree.

        Args:
            metrics: a :class:`repro.service.metrics.MetricsRegistry`.
            cluster: label value identifying this cluster.
        """
        self.cache.attach_metrics(metrics, cluster)
        metrics.counter(
            "pipette_service_submitted_total",
            "Plan tickets issued by the planning service "
            "(inline plans included).",
            ("cluster",)).labels(cluster=cluster).bind(
                lambda: self._submitted)
        metrics.gauge(
            "pipette_profiled_models",
            "Per-model compute profiles held by the service.",
            ("cluster",)).labels(cluster=cluster).set_function(
                lambda: len(self._profiles))
        metrics.gauge(
            "pipette_cluster_gpus",
            "GPUs the service currently plans for (shrinks on "
            "node failure).",
            ("cluster",)).labels(cluster=cluster).set_function(
                lambda: self.cluster.n_gpus)
        warm = metrics.counter(
            "pipette_replans_warm_source",
            "Re-plans by warm-start origin: a precomputed pipeline "
            "template for the surviving node count (template), the "
            "previous plan's own mapping (best), a portfolio "
            "runner-up that outscored it (portfolio), or no surviving "
            "mapping (cold).",
            ("cluster", "source"))
        for source in ("template", "best", "portfolio", "cold"):
            warm.labels(cluster=cluster, source=source).bind(
                lambda s=source: self._warm_sources[s])
        lookups = metrics.counter(
            "pipette_template_lookups_total",
            "Template-library lookups by outcome (only counted while "
            "a library is installed).",
            ("cluster", "outcome"))
        for outcome in ("hit", "miss"):
            lookups.labels(cluster=cluster, outcome=outcome).bind(
                lambda o=outcome: self._template_lookups[o])
        metrics.gauge(
            "pipette_template_library_size",
            "Pipeline templates held across all covered node counts "
            "(0 until a library is warmed).",
            ("cluster",)).labels(cluster=cluster).set_function(
                lambda: 0 if self._template_library is None
                else self._template_library.size)

    # ---------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Operational counters of cache, queue, and executor."""
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        # Both stats objects are copied atomically under their own
        # locks — field-by-field reads of live stats can tear against
        # a drain bumping them in another thread.
        cache_stats = self.cache.stats_snapshot()
        out = {
            "requests_submitted": self._submitted,
            "cache_entries": len(self.cache),
            "cache_hits": cache_stats.hits,
            "cache_misses": cache_stats.misses,
            "cache_hit_rate": cache_stats.hit_rate,
            "cache_evictions": cache_stats.evictions,
            "cache_stale_drops": cache_stats.stale_drops,
            "profiled_models": len(self._profiles),
            "replan_warm_sources": dict(self._warm_sources),
            "template_lookups": dict(self._template_lookups),
            "template_library_size": 0 if self._template_library is None
            else self._template_library.size,
        }
        if self.executor is not None:
            executor_stats = self.executor.stats_snapshot()
            out["executor_kind"] = self.executor.kind
            out["executor_workers"] = self.executor.n_workers
            out["executor_batches"] = executor_stats.batches
            out["executor_tasks"] = executor_stats.tasks
        return out

"""The planning service: Pipette as a persistent system service.

The offline configurator answers one ``search()`` at a time; this
package makes it production-shaped, the way Piper exposes planning as
a programmable service and PipeTune amortizes tuning across jobs:

* :mod:`repro.service.cache` — canonical request fingerprints and an
  LRU plan store invalidated by bandwidth-matrix epoch;
* :mod:`repro.service.executor` — fans the configurator's pure
  per-candidate work units over ``concurrent.futures`` pools;
* :mod:`repro.service.replan` — elastic re-planning after node
  failures and bandwidth drift, warm-starting SA from the prior plan;
* :mod:`repro.service.planner` — the front door: request batching,
  in-flight dedup, cache, and event handling;
* :mod:`repro.service.store` — durable JSON-lines plan persistence,
  rehydrating the cache (epochs intact) across service restarts;
* :mod:`repro.service.registry` — many named services behind one
  router: pinned/spec-matched/cheapest-feasible planning, registry
  level queueing/draining, per-cluster elastic events;
* :mod:`repro.service.gateway` — the asyncio front door: concurrent
  clients, in-flight coalescing, bounded per-cluster backpressure,
  weighted-fair per-client lanes, drains off the event loop, elastic
  events fenced between batches;
* :mod:`repro.service.metrics` — stdlib Prometheus-text-format
  counters/gauges/histograms, pull-bound to the live stats objects so
  ``/metrics`` and in-process stats can never disagree;
* :mod:`repro.service.http` — a hand-rolled asyncio HTTP/1.1 front
  end over the gateway (``POST /v1/plan``, elastic-event routes,
  ``GET /healthz``, Prometheus ``GET /metrics``);
* :mod:`repro.service.shard` — consistent-hash placement for the
  fleet: a sha256 ring with virtual nodes, the plan-content routing
  key, and per-shard durable segment naming;
* :mod:`repro.service.fleet` — the horizontal scale-out layer:
  a supervisor over N worker processes (health checks, crash
  restarts, rolling restarts through graceful drains) and the
  front-end router (shard routing, event fan-out, aggregated
  ``/healthz`` + ``/metrics``, per-client admission quotas);
* ``python -m repro.service`` — a small CLI over all of the above
  (including the ``serve`` front ends: JSON lines over stdin or TCP,
  HTTP with ``--http PORT``, and the multi-process ``fleet``
  subcommand).

``docs/ARCHITECTURE.md`` has the layer diagram and request lifecycle;
``docs/SERVING.md`` is the operator guide (schemas, metrics catalog,
tuning).
"""

from repro.service.cache import (
    CacheStats,
    PlanCache,
    PlanRequest,
    canonical_value,
)
from repro.service.executor import (
    CandidateExecutor,
    ExecutorStats,
    available_workers,
)
from repro.service.fleet import (
    AdmissionController,
    FleetRouter,
    FleetSupervisor,
    TokenBucket,
    WorkerClient,
)
from repro.service.gateway import (
    GatewayOverloadedError,
    GatewayResponse,
    GatewayStats,
    PlanGateway,
)
from repro.service.http import (
    HttpError,
    HttpPlanServer,
    answer_payload,
    plan_response_payload,
)
from repro.service.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.service.replan import (
    DEFAULT_DRIFT_THRESHOLD,
    ClusterEvent,
    ReplanReport,
    bandwidth_drift_ratio,
    default_warm_sa,
    drift_exceeds,
    fabric_drift_ratio,
    replan,
    shrink_cluster,
    surviving_gpus,
)
from repro.service.planner import (
    PlanningService,
    PlanResponse,
    PlanTicket,
)
from repro.service.registry import (
    ClusterRegistry,
    RoutedResponse,
)
from repro.service.shard import (
    DEFAULT_REPLICAS,
    HashRing,
    routing_key,
    shard_segment_path,
)
from repro.service.store import (
    SCHEMA_VERSION,
    DurablePlanCache,
    PlanStore,
    PlanStoreError,
    PlanStoreLockedError,
)

__all__ = [
    "CacheStats",
    "PlanCache",
    "PlanRequest",
    "canonical_value",
    "CandidateExecutor",
    "ExecutorStats",
    "available_workers",
    "AdmissionController",
    "FleetRouter",
    "FleetSupervisor",
    "TokenBucket",
    "WorkerClient",
    "DEFAULT_REPLICAS",
    "HashRing",
    "routing_key",
    "shard_segment_path",
    "GatewayOverloadedError",
    "GatewayResponse",
    "GatewayStats",
    "PlanGateway",
    "HttpError",
    "HttpPlanServer",
    "answer_payload",
    "plan_response_payload",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "DEFAULT_DRIFT_THRESHOLD",
    "ClusterEvent",
    "ReplanReport",
    "bandwidth_drift_ratio",
    "default_warm_sa",
    "drift_exceeds",
    "fabric_drift_ratio",
    "replan",
    "shrink_cluster",
    "surviving_gpus",
    "PlanningService",
    "PlanResponse",
    "PlanTicket",
    "ClusterRegistry",
    "RoutedResponse",
    "SCHEMA_VERSION",
    "DurablePlanCache",
    "PlanStore",
    "PlanStoreError",
    "PlanStoreLockedError",
]

"""Elastic re-planning: warm-started answers to cluster events.

Real clusters are not static: the paper's 40-day campaign (Fig. 3,
:mod:`repro.cluster.trace`) shows attained bandwidth drifting week to
week, and long training campaigns lose nodes outright.  Cold-searching
Algorithm 1 after every such event repays the full configuration
overhead of Table II; re-planning instead *reuses* the previous answer:

* the naive scoring pass re-ranks the (changed) configuration space
  without any annealing,
* the leader's worker mapping is warm-started from the previous plan —
  via mapping surgery (:func:`repro.parallel.mapping.compact_mapping_after_failure`)
  when nodes failed, or verbatim when only bandwidth drifted —
* and a short simulated-annealing run polishes that warm start, rather
  than re-growing a placement from the framework default.

When a precomputed :class:`repro.core.templates.PipelineTemplate` for
the surviving node count is available (a warmed
:class:`~repro.core.templates.TemplateLibrary`), the re-rank search is
skipped entirely: the template instantiates onto the survivors and
only the slot-assignment polish runs — ``warm_source="template"``.

:func:`replan` also runs the cold search for comparison, reporting the
latency gap and search-time saving of the warm path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.fabric import BandwidthMatrix, Fabric
from repro.cluster.topology import ClusterSpec
from repro.core.annealing import SAOptions, anneal_mapping
from repro.core.configurator import (
    PipetteConfigurator,
    PipetteOptions,
    PipetteResult,
    RankedConfig,
    SearchContext,
    candidate_kernel,
)
from repro.core.memory_estimator import MemoryEstimator
from repro.core.templates import PipelineTemplate
from repro.model.transformer import TransformerConfig
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import TRACER
from repro.parallel.mapping import (
    WorkerGrid,
    compact_mapping_after_failure,
)
from repro.profiling.profile_run import ComputeProfile

#: Relative bandwidth change beyond which cached plans are considered
#: stale.  The Fig. 3 campaign shows day-to-day wiggle well under this
#: and week-scale drift above it, so the default separates measurement
#: noise from real fabric change.
DEFAULT_DRIFT_THRESHOLD = 0.10


@dataclass(frozen=True)
class ClusterEvent:
    """Something that happened to the cluster since the last plan.

    Attributes:
        kind: ``"node_failure"`` or ``"bandwidth_drift"``.
        failed_nodes: node indices that died (``node_failure`` only).
        day: fabric day of the observation (``bandwidth_drift`` only;
            informational).
    """

    kind: str
    failed_nodes: tuple[int, ...] = ()
    day: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("node_failure", "bandwidth_drift"):
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.kind == "node_failure" and not self.failed_nodes:
            raise ValueError("node_failure event needs at least one node")

    @classmethod
    def node_failure(cls, *nodes: int) -> "ClusterEvent":
        """The event of losing ``nodes`` from the cluster."""
        return cls(kind="node_failure",
                   failed_nodes=tuple(sorted(int(n) for n in nodes)))

    @classmethod
    def bandwidth_drift(cls, day: float | None = None) -> "ClusterEvent":
        """The event of a re-profiled, drifted bandwidth matrix."""
        return cls(kind="bandwidth_drift", day=day)


def bandwidth_drift_ratio(old: BandwidthMatrix,
                          new: BandwidthMatrix) -> float:
    """Largest relative per-link bandwidth change between two matrices.

    A link that was measurable in ``old`` but comes back NaN/inf in
    ``new`` is dead, not unchanged, and a link profiled at 0 GB/s that
    now attains anything has no finite ratio either; both report
    infinite drift so the caller always retires plans searched against
    a fabric that lost a link.
    """
    if old.n_gpus != new.n_gpus:
        raise ValueError(
            f"matrices cover {old.n_gpus} vs {new.n_gpus} GPUs; drift is "
            "only defined over an unchanged GPU set"
        )
    old_finite = np.isfinite(old.matrix)
    new_finite = np.isfinite(new.matrix)
    if np.any(old_finite & ~new_finite):
        return float("inf")
    both = old_finite & new_finite
    if not both.any():
        return 0.0
    denom = old.matrix[both]
    diff = np.abs(new.matrix[both] - denom)
    if np.any((denom == 0.0) & (diff > 0.0)):
        return float("inf")
    nonzero = denom > 0.0
    if not nonzero.any():
        return 0.0
    return float((diff[nonzero] / denom[nonzero]).max())


def drift_exceeds(old: BandwidthMatrix, new: BandwidthMatrix,
                  threshold: float = DEFAULT_DRIFT_THRESHOLD) -> bool:
    """Whether the fabric moved enough to retire cached plans."""
    return bandwidth_drift_ratio(old, new) > threshold


def fabric_drift_ratio(fabric: Fabric, day: float,
                       baseline_day: float = 0.0) -> float:
    """Drift of a fabric between two days of its Fig. 3 trace.

    Convenience for monitoring loops that re-run the
    :func:`repro.cluster.trace.collect_latency_trace` campaign: the
    same temporal drift that separates the trace's quantile lines moves
    this ratio.
    """
    return bandwidth_drift_ratio(fabric.bandwidth_at_day(baseline_day),
                                 fabric.bandwidth_at_day(day))


def surviving_gpus(cluster: ClusterSpec, failed_nodes) -> list[int]:
    """GPU ids of ``cluster`` outside the failed nodes, in order."""
    failed = {int(n) for n in failed_nodes}
    return [g for g in range(cluster.n_gpus)
            if cluster.node_of(g) not in failed]


def shrink_cluster(cluster: ClusterSpec, failed_nodes) -> ClusterSpec:
    """The cluster left after ``failed_nodes`` drop out.

    Nodes are homogeneous on paper, so the shrunken spec is the same
    hardware with fewer nodes; GPU ids are compacted to match
    :meth:`repro.cluster.fabric.BandwidthMatrix.restrict`.
    """
    failed = {int(n) for n in failed_nodes}
    for node in failed:
        if not 0 <= node < cluster.n_nodes:
            raise ValueError(f"failed node {node} outside the cluster")
    remaining = cluster.n_nodes - len(failed)
    if remaining < 1:
        raise ValueError("no nodes left after the failure")
    return cluster.scaled_to(remaining)


def default_warm_sa(sa: SAOptions) -> SAOptions:
    """A quarter-budget annealing schedule for warm-started re-plans.

    Warm starts begin near the optimum, so they converge in a fraction
    of the cold budget; whichever budget (iterations or wall-clock) is
    configured is scaled down.
    """
    iterations = None if sa.max_iterations is None \
        else max(200, sa.max_iterations // 4)
    time_limit = None if sa.time_limit_s is None \
        else max(0.5, sa.time_limit_s / 4)
    return replace(sa, max_iterations=iterations, time_limit_s=time_limit)


@dataclass
class ReplanReport:
    """Outcome of one elastic re-plan, warm path vs cold search.

    Attributes:
        event: what happened.
        cluster: the cluster planned for after the event.
        bandwidth: the matrix the re-plan was searched against (the
            restricted survivor matrix after a failure, the re-profiled
            one after drift) — what a service adopts as its new state.
        previous: the plan that was in force before the event.
        warm: warm-started recommendation.
        warm_start_latency_s: estimated latency of the surgically
            warm-started mapping *before* annealing polished it.
        warm_search_s: wall-clock of the warm path (naive re-ranking +
            short anneal).
        cold: cold-search recommendation (``None`` if skipped).
        cold_search_s: wall-clock of the cold search.
        cold_result: the cold search's full result (``None`` if skipped).
        warm_source: where the polished warm start came from —
            ``"template"`` (a precomputed pipeline template for the
            surviving node count answered; no re-rank search ran),
            ``"best"`` (the previous plan's own mapping),
            ``"portfolio"`` (one of its runner-up mappings outscored
            the old best on the post-event cluster), or ``"cold"``
            (no previous mapping survived; the leader's naive mapping
            started the polish).
    """

    event: ClusterEvent
    cluster: ClusterSpec
    bandwidth: BandwidthMatrix
    previous: RankedConfig
    warm: RankedConfig
    warm_start_latency_s: float
    warm_search_s: float
    cold: RankedConfig | None = None
    cold_search_s: float | None = None
    cold_result: PipetteResult | None = None
    warm_source: str = "best"

    @property
    def latency_gap(self) -> float:
        """Relative latency excess of warm over cold (negative = warm wins)."""
        if self.cold is None:
            raise ValueError("cold search was skipped; no gap to report")
        return (self.warm.estimated_latency_s
                / self.cold.estimated_latency_s) - 1.0

    @property
    def search_speedup(self) -> float:
        """How many times faster the warm path found its answer."""
        if self.cold_search_s is None:
            raise ValueError("cold search was skipped; no speedup to report")
        return self.cold_search_s / max(self.warm_search_s, 1e-9)


def _warm_candidates(event: ClusterEvent, previous: RankedConfig,
                     leader: RankedConfig, cluster: ClusterSpec
                     ) -> "list[tuple]":
    """Every viable warm start, as ``(mapping, source)`` pairs.

    The previous plan's own mapping (source ``"best"``) leads, followed
    by its portfolio runner-ups (source ``"portfolio"``); each is
    carried over verbatim on a drift or put through mapping surgery on
    a failure, dropping candidates the surgery rejects.  When nothing
    survives — the leader changed shape, or surgery failed on every
    candidate — the leader's own naive mapping (source ``"cold"``) is
    the honest start.  The best-first order means latency ties in the
    caller's argmin resolve toward ``"best"``.
    """
    sources = [(previous.mapping, "best")] + \
        [(m, "portfolio") for m in previous.portfolio]
    if event.kind == "bandwidth_drift":
        if leader.config.pp == previous.config.pp \
                and leader.config.tp == previous.config.tp \
                and leader.config.dp == previous.config.dp:
            return sources
        return [(leader.mapping, "cold")]
    grid = WorkerGrid(pp=leader.config.pp, tp=leader.config.tp,
                      dp=leader.config.dp)
    survivors = []
    for mapping, source in sources:
        try:
            survivors.append((compact_mapping_after_failure(
                mapping, event.failed_nodes, cluster, grid), source))
        except ValueError:
            # This mapping's slot geometry does not carry over (e.g.
            # the leader changed tensor-parallel width).
            continue
    return survivors or [(leader.mapping, "cold")]


def template_fits(template: PipelineTemplate, cluster: ClusterSpec,
                  global_batch: int) -> bool:
    """Whether ``template`` can instantiate onto ``cluster`` for this job.

    A template binds a node count, a GPU-per-node geometry and a
    global batch; all three must match the post-event world (a library
    generated for a different family, or a stale lookup raced by a
    second failure, fails closed and the re-rank path answers instead).
    """
    config = template.config
    return (template.n_nodes == cluster.n_nodes
            and config.pp * config.tp * config.dp == cluster.n_gpus
            and cluster.gpus_per_node % config.tp == 0
            and config.global_batch == global_batch)


def replan(cluster: ClusterSpec, model: TransformerConfig,
           bandwidth: BandwidthMatrix, profile: ComputeProfile,
           previous: RankedConfig, event: ClusterEvent,
           memory_estimator: MemoryEstimator | None = None,
           options: PipetteOptions | None = None,
           warm_sa: SAOptions | None = None,
           new_bandwidth: BandwidthMatrix | None = None,
           memory_limit_bytes: float | None = None,
           micro_batches: "list[int] | None" = None,
           schedules: "tuple[str, ...] | list[str] | None" = None,
           executor=None, run_cold: bool = True,
           template: PipelineTemplate | None = None) -> ReplanReport:
    """Re-plan after a cluster event, warm-starting from ``previous``.

    Args:
        cluster: the cluster ``previous`` was planned for.
        bandwidth: the matrix ``previous`` was searched against.
        previous: the plan in force when the event happened.
        event: what changed.  ``node_failure`` shrinks the cluster and
            restricts the matrix to the survivors; ``bandwidth_drift``
            keeps the cluster and requires ``new_bandwidth`` (the
            re-profiled matrix).
        warm_sa: annealing budget of the warm polish; defaults to a
            quarter of the cold budget (:func:`default_warm_sa`).
        micro_batches: microbatch restriction of the original request,
            honored by both the warm re-ranking and the cold search.
        schedules: pipeline-schedule restriction of the original
            request, honored the same way.
        executor: optional :class:`~repro.service.executor.CandidateExecutor`
            for both the warm re-ranking and the cold search.
        run_cold: also run the full cold search for comparison.
        template: precomputed pipeline template for the surviving node
            count (a :meth:`~repro.core.templates.TemplateLibrary.lookup`
            hit).  On a fitting node-failure template the warm path
            skips the re-rank search entirely — the template
            instantiates onto the survivors and only the
            slot-assignment polish runs (``warm_source="template"``).
            A template that does not fit the post-event world falls
            back to the re-rank path.
    """
    options = options or PipetteOptions()
    warm_sa = warm_sa or default_warm_sa(options.sa)
    global_batch = previous.config.global_batch

    if event.kind == "node_failure":
        new_cluster = shrink_cluster(cluster, event.failed_nodes)
        keep = surviving_gpus(cluster, event.failed_nodes)
        base = new_bandwidth if new_bandwidth is not None else bandwidth
        new_bw = base if base.n_gpus == new_cluster.n_gpus \
            else base.restrict(keep)
    else:
        if new_bandwidth is None:
            raise ValueError("bandwidth_drift re-planning needs the "
                             "re-profiled matrix (new_bandwidth)")
        new_cluster = cluster
        new_bw = new_bandwidth

    # The whole re-plan is one span tagged with the triggering event,
    # so failure-recovery latency is directly measurable per event
    # kind in traces and the phase-latency histogram.
    with TRACER.span("replan", event_kind=event.kind,
                     failed_nodes=list(event.failed_nodes),
                     event_day=event.day) as replan_span:
        # Warm path: instantiate a precomputed template when one fits
        # the surviving node count; otherwise re-rank the configuration
        # space with naive mappings only (no annealing).  Either way a
        # short anneal then polishes the warm-started mapping.
        t0 = time.perf_counter()
        use_template = (template is not None
                        and event.kind == "node_failure"
                        and template_fits(template, new_cluster,
                                          global_batch))
        if use_template:
            with TRACER.span("replan.template",
                             n_nodes=template.n_nodes,
                             schedule=template.config.schedule):
                leader = template.instantiate(new_cluster)
        else:
            with TRACER.span("replan.rerank"):
                naive = PipetteConfigurator(
                    new_cluster, model, new_bw, profile, memory_estimator,
                    options=replace(options, use_worker_dedication=False),
                ).search(global_batch, memory_limit_bytes=memory_limit_bytes,
                         micro_batches=micro_batches, schedules=schedules,
                         executor=executor)
            if naive.best is None:
                raise RuntimeError("no feasible configuration on the "
                                   "post-event cluster; cannot re-plan")
            leader = naive.best
        ctx = SearchContext(cluster=new_cluster, model=model,
                            bandwidth=new_bw, profile=profile,
                            memory_estimator=memory_estimator, sa=warm_sa)
        # The warm polish (and the candidate selection below) runs
        # against the compiled latency kernel — same values as the
        # reference estimator bit for bit, so warm results remain
        # comparable with (and cacheable alongside) cold searches.
        kernel = candidate_kernel(ctx, leader.config)
        if use_template:
            # The template's stored placement (plus its portfolio
            # runner-ups) seeds the polish; the previous plan's
            # mappings are already folded into the library.
            candidates = [(leader.mapping, "template")] + \
                [(m, "template") for m in leader.portfolio]
        else:
            candidates = _warm_candidates(event, previous, leader,
                                          new_cluster)
        if len(candidates) > 1:
            # Score every survivor in one batched kernel call and
            # polish the best: a re-plan starts from the strongest
            # member of the previous plan's portfolio, not blindly
            # from its old best.
            perms = np.stack([np.asarray(m.block_to_slot, dtype=np.int64)
                              for m, _ in candidates])
            pick = int(np.argmin(kernel.evaluate_batch(perms)))
        else:
            pick = 0
        start_mapping, warm_source = candidates[pick]
        # The polish runs inline, so its flight recorder (provenance
        # "warm-start") lands on the span directly rather than
        # crossing a pool boundary.
        recorder = FlightRecorder(provenance="warm-start") \
            if TRACER.enabled else None
        with TRACER.span("replan.warm_anneal") as warm_span:
            sa_result = anneal_mapping(
                start_mapping,
                kernel,
                warm_sa.with_seed(options.seed),
                recorder=recorder,
            )
            if recorder is not None:
                warm_span.set_attribute("flight", recorder.to_payload())
                warm_span.set_attribute("exit_reason", sa_result.exit_reason)
        warm_search_s = time.perf_counter() - t0
        warm = RankedConfig(
            config=leader.config, mapping=sa_result.mapping,
            estimated_latency_s=sa_result.value,
            estimated_memory_bytes=leader.estimated_memory_bytes,
            memory_ok=leader.memory_ok,
            portfolio=tuple(m for m, _ in sa_result.portfolio[1:]),
        )

        report = ReplanReport(
            event=event, cluster=new_cluster, bandwidth=new_bw,
            previous=previous, warm=warm,
            warm_start_latency_s=sa_result.initial_value,
            warm_search_s=warm_search_s,
            warm_source=warm_source,
        )
        if run_cold:
            with TRACER.span("replan.cold_search"):
                cold_result = PipetteConfigurator(
                    new_cluster, model, new_bw, profile, memory_estimator,
                    options=options,
                ).search(global_batch,
                         memory_limit_bytes=memory_limit_bytes,
                         micro_batches=micro_batches, schedules=schedules,
                         executor=executor)
            report.cold = cold_result.best
            report.cold_search_s = cold_result.total_s
            report.cold_result = cold_result
        replan_span.set_attribute("warm_search_s", warm_search_s)
        replan_span.set_attribute("warm_source", warm_source)
        return report

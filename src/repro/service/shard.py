"""Consistent-hash sharding for the planning fleet.

A fleet of worker processes only preserves the single-process serving
guarantees — one search per (cluster, fingerprint, epoch), an
effective per-key LRU, byte-identical answers — if every request for
the same planning question lands on the same worker.  This module is
the routing math that makes that hold:

* :class:`HashRing` — a consistent-hash ring with virtual nodes.
  Adding or removing a worker remaps roughly ``K/N`` of ``K`` keys
  (the classic consistent-hashing bound, property-tested in
  ``tests/test_service_fleet.py``), so a restarted or resized fleet
  keeps most shards' caches warm instead of reshuffling everything.
* :func:`routing_key` — a stable content hash of the
  *plan-determining* fields of a request payload, normalized exactly
  the way :class:`~repro.service.cache.PlanRequest` normalizes them
  (sorted/deduplicated ``micro_batches`` and ``schedule``, defaulted
  ``global_batch``), and deliberately blind to transport identity
  (``client_id``, ``detail``, ``id``, ``traceparent``).  Two payload
  spellings of one question therefore hash to one shard, where the
  worker's own cache and in-flight coalescing collapse them into one
  search.
* :func:`shard_segment_path` — the naming convention of the sharded
  durable layer: worker ``k`` of a fleet appends to
  ``<cluster>.shard-<k>.jsonl``, so workers never contend on one
  append log and each shard rehydrates independently after a crash.

Hashes are :mod:`hashlib` SHA-256 (stable across processes, platforms
and Python versions) — ``hash()`` randomization would re-deal every
shard on every restart.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os

__all__ = ["HashRing", "routing_key", "shard_segment_path"]

#: Virtual nodes per ring member.  More points smooth the key
#: distribution (the load of the busiest member concentrates toward
#: K/N as replicas grow) at a small lookup-table cost; 128 keeps the
#: busiest-of-4 shard within ~30% of the mean in practice.
DEFAULT_REPLICAS = 128


def _hash64(value: str) -> int:
    """Stable 64-bit position on the ring for ``value``."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing over an arbitrary set of member ids.

    Args:
        members: initial ring members (any hashable, stringified for
            hashing — worker indices in the fleet).
        replicas: virtual nodes per member (see
            :data:`DEFAULT_REPLICAS`).

    ``lookup(key)`` walks clockwise from the key's hash to the first
    virtual node and returns its member.  Membership changes only move
    the keys whose clockwise successor changed — everything else stays
    put, which is the whole point.
    """

    def __init__(self, members=(), replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: "list[int]" = []          # sorted vnode positions
        self._owners: "dict[int, object]" = {}  # position -> member
        self._members: "set" = set()
        for member in members:
            self.add(member)

    # ---------------------------------------------------------- membership

    def add(self, member) -> None:
        """Add one member (``replicas`` virtual nodes) to the ring."""
        if member in self._members:
            raise ValueError(f"member {member!r} is already on the ring")
        self._members.add(member)
        for i in range(self.replicas):
            point = _hash64(f"{member}#{i}")
            # A position collision between two members' vnodes is a
            # 2^-64 event per pair; first owner keeps the point.
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = member

    def remove(self, member) -> None:
        """Remove one member; its arcs fall to the clockwise successors."""
        if member not in self._members:
            raise ValueError(f"member {member!r} is not on the ring")
        self._members.discard(member)
        for point, owner in list(self._owners.items()):
            if owner == member:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    @property
    def members(self) -> "set":
        """The current ring membership (a copy)."""
        return set(self._members)

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------- lookup

    def lookup(self, key: str):
        """The member owning ``key`` (clockwise-first virtual node)."""
        if not self._points:
            raise ValueError("lookup on an empty ring")
        position = _hash64(key)
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap past twelve o'clock
        return self._owners[self._points[index]]


def routing_key(payload: dict) -> str:
    """Stable shard key of one plan-request payload.

    Hashes exactly the fields that enter the worker-side
    :meth:`~repro.service.cache.PlanRequest.fingerprint` — and none of
    the transport fields — with the same normalization the request
    dataclass applies, so any two payloads that would share a cache
    entry on a worker also share a shard.  (The key is *not* the cache
    fingerprint itself: the router must not need model catalogs or
    cluster specs to route.  It only has to be constant per question.)

    Unpinned requests (no ``"cluster"``) fan over every cluster inside
    whichever worker they land on, so they hash under a ``"*"``
    sentinel: the same unpinned question always reaches the same
    worker and coalesces there.
    """
    if not isinstance(payload, dict):
        raise ValueError("plan payload must be a JSON object")
    micro_batches = payload.get("micro_batches")
    if micro_batches is not None:
        micro_batches = sorted({int(m) for m in micro_batches})
    schedule = payload.get("schedule")
    if schedule is not None:
        if isinstance(schedule, str):
            schedule = [schedule]
        schedule = sorted({str(s) for s in schedule})
    cluster = payload.get("cluster")
    memory_limit = payload.get("memory_limit_gib")
    portfolio_k = payload.get("portfolio_k")
    parts = {
        "cluster": "*" if cluster is None else str(cluster),
        "model": str(payload.get("model", "")),
        "global_batch": int(payload.get("global_batch", 64)),
        "micro_batches": micro_batches,
        "memory_limit_gib":
            None if memory_limit is None else float(memory_limit),
        "schedule": schedule,
        "portfolio_k": None if portfolio_k is None else int(portfolio_k),
    }
    canonical = json.dumps(parts, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


def shard_segment_path(store_dir: str, cluster: str,
                       shard_index: "int | None") -> str:
    """Durable-log path of one cluster on one shard.

    ``None`` is the single-process layout (``<cluster>.jsonl``, the
    pre-fleet naming, kept so existing stores rehydrate unchanged);
    worker ``k`` appends to ``<cluster>.shard-<k>.jsonl``.  Each
    segment keeps its own fcntl lock sidecar, so fleet workers never
    contend on one append log.
    """
    if shard_index is None:
        return os.path.join(store_dir, f"{cluster}.jsonl")
    if shard_index < 0:
        raise ValueError(f"shard_index must be >= 0, got {shard_index}")
    return os.path.join(store_dir, f"{cluster}.shard-{shard_index}.jsonl")

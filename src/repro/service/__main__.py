"""Command-line front door of the planning service.

Eight subcommands, each a small end-to-end story on a simulated
cluster (swap the simulated fabric for a real profiling campaign to
use them against physical machines):

* ``plan``     — answer one planning request and print the ranking;
* ``demo``     — serve a queued workload with duplicates, showing
  caching, in-flight dedup, and (optionally) parallel search;
* ``replan``   — fail a node and compare warm-started re-planning with
  the cold search;
* ``registry`` — serve several named clusters at once: pinned and
  cheapest-feasible routing, per-cluster failure isolation;
* ``serve``    — run the async gateway as a long-lived server: a
  JSON-lines transport (stdin/stdout by default, TCP with ``--port``)
  and/or an HTTP/1.1 front end (``--http PORT``) with ``POST
  /v1/plan``, elastic-event routes, ``GET /healthz``, and a
  Prometheus ``GET /metrics`` page — with in-flight coalescing,
  per-cluster backpressure, and weighted-fair per-client lanes
  across all transports (see ``docs/SERVING.md``).  ``--log-level``
  selects the stderr JSON log threshold; ``--trace``/``--trace-dir``
  turn on end-to-end plan tracing (``GET /v1/debug/traces``, span
  dump files — see ``docs/OBSERVABILITY.md``).  With a socket
  transport, SIGTERM/SIGINT drain gracefully: stop accepting, finish
  in-flight plans, compact the durable stores, exit 0.
  ``--shard-index`` names this process's durable shard segments
  (``<cluster>.shard-<k>.jsonl``) — normally set by ``fleet``, not by
  hand;
* ``fleet``    — run ``--workers N`` ``serve`` processes behind one
  consistent-hash router: same plan question always lands on the same
  worker (so per-shard caches and coalescing keep working), elastic
  events fan to all workers, ``/metrics`` aggregates the fleet onto
  one page, crashed workers are restarted over their shard stores,
  and ``--quota-rate`` enforces per-``client_id`` admission at the
  front door;
* ``trace``    — pretty-print a span dump written by
  ``serve --trace-dir`` as indented per-trace timing trees;
* ``templates`` — generate, inspect, or background-warm an elastic
  pipeline-template library (``--library FILE`` persists it; ``serve
  --store-dir`` rehydrates per-cluster libraries at startup and
  exposes ``POST /v1/templates/warm``).

``--store-path`` (or the registry's ``--store-dir``) makes the plan
cache durable: re-running the same command answers previously planned
requests as cache hits, across process restarts.

Run ``python -m repro.service <subcommand> --help`` for knobs, or use
the ``pipette-plan`` console script installed by the package.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import itertools
import json
import os
import signal
import sys
from functools import partial

from repro.cluster import NetworkProfiler, make_fabric
from repro.cluster.presets import high_end_cluster, mid_range_cluster
from repro.core import PipetteOptions, SAOptions
from repro.model import MODEL_CATALOG, get_model
from repro.obs import TRACER, configure_logging, get_logger
from repro.service.cache import PlanRequest
from repro.service.executor import CandidateExecutor, available_workers
from repro.service.fleet import (
    AdmissionController,
    FleetRouter,
    FleetSupervisor,
    WorkerClient,
)
from repro.service.gateway import PlanGateway
from repro.service.http import (
    HttpPlanServer,
    answer_payload,
    plan_response_payload,
)
from repro.service.metrics import MetricsRegistry
from repro.service.planner import PlanningService
from repro.sim.schedule import registered_schedules
from repro.service.registry import ClusterRegistry
from repro.service.replan import ClusterEvent
from repro.service.shard import shard_segment_path
from repro.service.store import DurablePlanCache, PlanStoreError, \
    TemplateStore
from repro.service.warmer import TemplateWarmer
from repro.units import GIB

PRESETS = {"mid-range": mid_range_cluster, "high-end": high_end_cluster}


def _executor(args) -> CandidateExecutor | None:
    if args.workers == 0:
        return None
    return CandidateExecutor(
        max_workers=args.workers if args.workers > 0 else None)


def _durable_cache(path: str | None) -> DurablePlanCache | None:
    if path is None:
        return None
    cache = DurablePlanCache(path)
    print(f"store: {path} ({cache.rehydrated} plans rehydrated)")
    return cache


def _build_service(args) -> PlanningService:
    cluster = PRESETS[args.cluster](n_nodes=args.nodes)
    fabric = make_fabric(cluster, seed=args.seed)
    network = NetworkProfiler().profile(fabric, seed=args.seed)
    executor = _executor(args)
    print(f"cluster: {cluster.description or cluster.name} "
          f"({cluster.n_nodes} nodes x {cluster.gpus_per_node} GPUs)")
    if executor is not None:
        print(f"executor: {executor.kind} pool, {executor.n_workers} workers")
    return PlanningService(cluster, network.bandwidth, executor=executor,
                           cache=_durable_cache(args.store_path),
                           profile_seed=args.seed)


def _options(args) -> PipetteOptions:
    return PipetteOptions(
        use_worker_dedication=not args.no_dedication,
        sa=SAOptions(max_iterations=args.sa_iterations,
                     portfolio_k=args.portfolio_k),
        seed=args.seed,
    )


def _print_plan(response) -> None:
    result = response.result
    print(f"[{response.status}] {len(result.ranked)} feasible, "
          f"{result.rejected_oom} rejected OOM, "
          f"{response.elapsed_s * 1e3:.1f} ms")
    for rank, entry in enumerate(result.ranked[:5]):
        mem = "" if entry.estimated_memory_bytes is None else \
            f", {entry.estimated_memory_bytes / GIB:5.1f} GiB/GPU"
        print(f"  #{rank + 1} {entry.config.describe():<24} "
              f"{entry.estimated_latency_s:7.3f} s/iter{mem}")


def cmd_plan(args) -> int:
    """Answer one planning request and print the top of the ranking."""
    service = _build_service(args)
    model = get_model(args.model)
    print(f"model:   {model.name}, global batch {args.global_batch}\n")
    kwargs = {}
    if args.schedule:
        kwargs["schedules"] = tuple(args.schedule)
    response = service.plan(service.request(
        model, args.global_batch, options=_options(args), **kwargs))
    _print_plan(response)
    if response.best is not None:
        print(f"\nschedule: {response.best.config.schedule}")
    return 0 if response.best is not None else 1


def cmd_demo(args) -> int:
    """Serve a queued workload with duplicates (cache/dedup showcase)."""
    service = _build_service(args)
    options = _options(args)
    models = [get_model(name) for name in args.models]
    print(f"workload: {args.repeats} rounds over "
          f"{[m.name for m in models]}, batch {args.global_batch}\n")

    # Queue the whole workload: each round re-asks every model, so
    # round one pays the searches and the rest ride the cache; queuing
    # a round twice shows in-flight dedup.
    for _ in range(args.repeats):
        for model in models:
            service.submit(service.request(model, args.global_batch,
                                           options=options))
            service.submit(service.request(model, args.global_batch,
                                           options=options))
        for response in service.drain():
            best = response.best
            print(f"  [{response.status:<7}] {best.config.describe():<24} "
                  f"{best.estimated_latency_s:7.3f} s/iter  "
                  f"({response.elapsed_s * 1e3:8.2f} ms)")
    print("\nservice stats:")
    for key, value in service.stats.items():
        print(f"  {key}: {value}")
    return 0


def cmd_replan(args) -> int:
    """Fail a node and compare warm-started re-planning with cold."""
    service = _build_service(args)
    model = get_model(args.model)
    print(f"model:   {model.name}, global batch {args.global_batch}\n")
    request = service.request(model, args.global_batch,
                              options=_options(args))
    report = service.replan(request, ClusterEvent.node_failure(args.fail_node))
    prev = report.previous
    print(f"before failure: {prev.config.describe():<24} "
          f"{prev.estimated_latency_s:7.3f} s/iter")
    print(f"node {args.fail_node} failed -> "
          f"{report.cluster.n_nodes} nodes remain\n")
    print(f"warm re-plan:   {report.warm.config.describe():<24} "
          f"{report.warm.estimated_latency_s:7.3f} s/iter "
          f"in {report.warm_search_s:6.2f} s "
          f"(warm start was {report.warm_start_latency_s:.3f}, "
          f"source {report.warm_source})")
    print(f"cold search:    {report.cold.config.describe():<24} "
          f"{report.cold.estimated_latency_s:7.3f} s/iter "
          f"in {report.cold_search_s:6.2f} s")
    print(f"\nwarm vs cold latency: {report.latency_gap * 100:+.2f}%   "
          f"search speedup: {report.search_speedup:.1f}x")
    return 0


def _parse_cluster_arg(entry: str, index: int):
    """One ``preset:nodes`` CLI entry -> (name, preset fn, node count)."""
    preset, _, nodes = entry.partition(":")
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; "
                         f"choose from {sorted(PRESETS)}")
    try:
        n_nodes = int(nodes) if nodes else 4
    except ValueError:
        raise ValueError(f"bad node count in {entry!r}") from None
    return f"{preset}-{index}", PRESETS[preset], n_nodes


def _build_registry(args) -> ClusterRegistry:
    registry = ClusterRegistry(executor=_executor(args))
    for index, entry in enumerate(args.clusters):
        name, preset, n_nodes = _parse_cluster_arg(entry, index)
        cluster = preset(n_nodes=n_nodes)
        seed = args.seed + index
        network = NetworkProfiler().profile(make_fabric(cluster, seed=seed),
                                            seed=seed)
        cache = None
        if args.store_dir is not None:
            # Under a fleet each worker owns per-shard segments
            # (<name>.shard-<k>.jsonl) in the shared directory; a
            # standalone server keeps the plain <name>.jsonl path.
            cache = _durable_cache(shard_segment_path(
                args.store_dir, name, getattr(args, "shard_index", None)))
        registry.add_cluster(name, cluster, network.bandwidth, cache=cache,
                             profile_seed=seed)
        print(f"registered {name}: {cluster.n_nodes} nodes x "
              f"{cluster.gpus_per_node} GPUs")
    return registry


def cmd_registry(args) -> int:
    """Serve several named clusters: routing and failure isolation."""
    registry = _build_registry(args)
    options = _options(args)
    model = get_model(args.model)
    print(f"\nmodel: {model.name}, global batch {args.global_batch}\n")

    for name in registry.names:
        routed = registry.plan_on(name, model, args.global_batch,
                                  options=options)
        best = routed.best
        print(f"  [{routed.status:<7}] {name:<14} "
              f"{best.config.describe():<24} "
              f"{best.estimated_latency_s:7.3f} s/iter")

    cheapest = registry.plan_cheapest(model, args.global_batch,
                                      options=options)
    print(f"\ncheapest feasible: {cheapest.cluster_name} "
          f"({cheapest.best.config.describe()}, "
          f"{cheapest.best.estimated_latency_s:.3f} s/iter, "
          f"[{cheapest.status}])")

    if args.fail_node is not None:
        # Destructive by design: the victim's cache (and durable
        # store, if any) is cleared, so this step is opt-in — a
        # --store-dir re-run without it keeps answering [hit].
        victim = registry.names[0]
        retired = registry.fail_nodes(victim, args.fail_node)
        print(f"\nnode {args.fail_node} failed on {victim}: "
              f"{retired} cached plans retired; siblings untouched")
        after = registry.plan_cheapest(model, args.global_batch,
                                       options=options)
        print(f"cheapest now: {after.cluster_name} "
              f"({after.best.config.describe()}, "
              f"{after.best.estimated_latency_s:.3f} s/iter, "
              f"[{after.status}])")

    print("\nregistry stats:")
    for name, stats in registry.stats.items():
        print(f"  {name}: entries={stats['cache_entries']} "
              f"hits={stats['cache_hits']} misses={stats['cache_misses']}")
    return 0


async def _handle_line(gateway: PlanGateway, options: PipetteOptions,
                       line: str, default_id, write_line) -> None:
    """One JSON-lines request -> one answer line, errors included.

    The answering itself (routing, cheapest-feasible fan-out,
    ``client_id`` fairness) is shared with the HTTP front end via
    :func:`repro.service.http.answer_payload`.
    """
    rid = default_id
    try:
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ValueError("each request line must be a JSON object")
        rid = payload.get("id", default_id)
        answer = await answer_payload(gateway, options, payload)
        # plan_response_payload reports this caller's own
        # submit-to-answer time — a coalesced follower must not
        # report its leader's full search time.
        out = plan_response_payload(answer, payload,
                                    registry=gateway.registry)
        out["id"] = rid
    except (ValueError, TypeError, RuntimeError, KeyError,
            json.JSONDecodeError) as exc:
        # TypeError included: a wrongly-typed field (e.g. a number for
        # micro_batches) must answer as an error line, never vanish.
        out = {"id": rid, "status": "error", "error": str(exc)}
    await write_line(json.dumps(out, sort_keys=True))


async def _serve_stream(gateway: PlanGateway, options: PipetteOptions,
                        read_line, write_line) -> None:
    """Pump request lines until EOF; answers land as they finish.

    A reader failure (an over-long line, a reset connection) must not
    abandon in-flight handlers: the started tasks are always gathered
    so every accepted request gets its answer attempt before the
    stream winds down.
    """
    counter = itertools.count(1)
    # Completed handlers remove themselves: a long-lived connection
    # serves unboundedly many requests, so finished tasks must not
    # accumulate for the stream's whole lifetime.
    tasks: "set[asyncio.Task]" = set()
    try:
        while True:
            try:
                line = await read_line()
            except (asyncio.LimitOverrunError, ValueError) as exc:
                await write_line(json.dumps(
                    {"status": "error",
                     "error": f"unreadable request line ({exc})"},
                    sort_keys=True))
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            task = asyncio.ensure_future(_handle_line(
                gateway, options, line, next(counter), write_line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


async def _serve_connection(gateway, options, reader, writer) -> None:
    async def write_line(text: str) -> None:
        writer.write((text + "\n").encode("utf-8"))
        # Per-answer flow control: a slow reader parks the handler
        # here instead of growing the transport buffer without bound.
        await writer.drain()

    async def read_line():
        return (await reader.readline()).decode("utf-8")

    try:
        await _serve_stream(gateway, options, read_line, write_line)
    except ConnectionResetError:
        pass  # client went away; nothing left to answer
    finally:
        writer.close()


def _parse_client_weights(entries) -> dict:
    """``NAME=WEIGHT`` CLI entries -> fair-lane weight table."""
    weights = {}
    for entry in entries or ():
        name, sep, weight = entry.partition("=")
        if not sep or not name:
            raise ValueError(f"bad client weight {entry!r}; "
                             "expected NAME=WEIGHT")
        try:
            weights[name] = int(weight)
        except ValueError:
            raise ValueError(f"bad client weight {entry!r}; "
                             f"{weight!r} is not an integer") from None
    return weights


def _build_warmers(args, registry: ClusterRegistry
                   ) -> "dict[str, TemplateWarmer]":
    """Per-cluster template warmers; store-backed under ``--store-dir``.

    With a store directory each cluster gets a durable
    ``<name>.templates.json`` library that is rehydrated here, so a
    restarted server recovers failures warm before any warm-up runs.

    Template libraries are *not* sharded: every fleet worker answers
    every cluster, so all shards share one library file read-only and
    only shard 0 (or a standalone server) writes it — concurrent
    workers saving the same path would race.
    """
    read_only = getattr(args, "shard_index", None) not in (None, 0)
    warmers = {}
    for name in registry.names:
        store = None
        if args.store_dir is not None:
            store = TemplateStore(os.path.join(args.store_dir,
                                               f"{name}.templates.json"))
        warmer = TemplateWarmer(registry.service(name),
                                store=None if read_only else store)
        if read_only and store is not None:
            library = store.load()
            if library is not None:
                registry.service(name).set_template_library(library)
        else:
            library = warmer.rehydrate()
        if library is not None:
            print(f"templates: {name} rehydrated "
                  f"({library.size} templates)",
                  file=sys.stderr, flush=True)
        warmers[name] = warmer
    return warmers


async def _drain_servers(servers, front, line_tasks) -> None:
    """Graceful shutdown of the socket transports, in order.

    Listeners are already closed (no new connections).  The HTTP
    front finishes every in-flight request and closes idle
    keep-alives; JSON-lines connection tasks are then cancelled —
    ``_serve_stream``'s ``finally`` gathers their started handlers,
    so every accepted request line still gets its answer before the
    connection dies.
    """
    if front is not None:
        await front.drain()
    for task in list(line_tasks):
        task.cancel()
    if line_tasks:
        await asyncio.gather(*line_tasks, return_exceptions=True)


async def _serve_async(args, registry: ClusterRegistry,
                       options: PipetteOptions) -> int:
    metrics = MetricsRegistry()
    registry.attach_metrics(metrics)
    # Span-derived histograms (per-phase latency, anneal iteration and
    # evaluation counts).  The series exist even while tracing is off —
    # they just stay at zero observations until it is enabled.
    TRACER.attach_metrics(metrics)
    warmers = _build_warmers(args, registry)
    async with PlanGateway(registry, max_queue_depth=args.max_queue_depth,
                           overflow=args.overflow, fairness=args.fairness,
                           max_batch=args.max_batch,
                           client_weights=_parse_client_weights(
                               args.client_weight),
                           metrics=metrics) as gateway:
        servers = []
        front = None
        line_tasks: "set[asyncio.Task]" = set()

        async def serve_lines(reader, writer) -> None:
            task = asyncio.current_task()
            if task is not None:
                line_tasks.add(task)
            try:
                await _serve_connection(gateway, options, reader, writer)
            finally:
                if task is not None:
                    line_tasks.discard(task)

        if args.http is not None:
            front = HttpPlanServer(gateway, options, metrics=metrics,
                                   warmers=warmers)
            server = await asyncio.start_server(
                front.handle, host=args.host, port=args.http,
                limit=1 << 16)  # 64 KiB header lines
            names = ", ".join(str(sock.getsockname())
                              for sock in server.sockets)
            print(f"http on {names}", file=sys.stderr, flush=True)
            servers.append(server)
        if args.port is not None:
            server = await asyncio.start_server(
                serve_lines, host=args.host, port=args.port,
                limit=1 << 20)  # 1 MiB request lines
            names = ", ".join(str(sock.getsockname())
                              for sock in server.sockets)
            print(f"serving on {names}", file=sys.stderr, flush=True)
            servers.append(server)
        if servers:
            # SIGTERM/SIGINT drain instead of dying mid-request: stop
            # accepting, answer everything in flight, then fall out of
            # the gateway context (which awaits its own in-flight
            # futures) and compact the durable stores below.  Stdin
            # mode keeps the default signal behavior — there is no
            # clean way to abandon a blocked stdin read at shutdown.
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            handled = []
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError,
                                         RuntimeError):
                    loop.add_signal_handler(signum, stop.set)
                    handled.append(signum)
            try:
                async with contextlib.AsyncExitStack() as stack:
                    for server in servers:
                        await stack.enter_async_context(server)
                    serve_tasks = [asyncio.ensure_future(
                        server.serve_forever()) for server in servers]
                    stop_task = asyncio.ensure_future(stop.wait())
                    await asyncio.wait([*serve_tasks, stop_task],
                                       return_when=asyncio.FIRST_COMPLETED)
                    for server in servers:
                        server.close()
                    for task in serve_tasks:
                        task.cancel()
                    await asyncio.gather(*serve_tasks,
                                         return_exceptions=True)
                    stop_task.cancel()
                    await asyncio.gather(stop_task, return_exceptions=True)
                    if stop.is_set():
                        print("draining: listeners closed, finishing "
                              "in-flight requests",
                              file=sys.stderr, flush=True)
                    await _drain_servers(servers, front, line_tasks)
            finally:
                for signum in handled:
                    with contextlib.suppress(NotImplementedError,
                                             RuntimeError):
                        loop.remove_signal_handler(signum)
        else:
            loop = asyncio.get_running_loop()

            async def read_line():
                return await loop.run_in_executor(None, sys.stdin.readline)

            async def write_line(text: str) -> None:
                print(text, flush=True)

            await _serve_stream(gateway, options, read_line, write_line)
        stats = gateway.stats
        print(f"gateway: {stats.submitted} submitted, "
              f"{stats.coalesced} coalesced, {stats.rejected} rejected, "
              f"{stats.batches} drain batches "
              f"(largest {stats.max_batch})", file=sys.stderr, flush=True)
    # The gateway context has answered every in-flight future, so the
    # durable logs are final: leave each store compacted (live entries
    # only, fsynced) for the next process over this shard.
    compacted = registry.compact_stores()
    if compacted:
        print(f"stores: {compacted} durable caches compacted",
              file=sys.stderr, flush=True)
    return 0


def cmd_serve(args) -> int:
    # Structured JSON logs go to stderr: in stdin/stdout mode every
    # stdout line is a protocol answer, nothing else.
    configure_logging(args.log_level)
    log = get_logger("service.cli")
    trace_file = None
    if args.trace_dir is not None:
        os.makedirs(args.trace_dir, exist_ok=True)
        trace_file = os.path.join(args.trace_dir,
                                  f"trace-{os.getpid()}.jsonl")
    tracing = args.trace or trace_file is not None
    if tracing:
        TRACER.enable(trace_file=trace_file)
        log.info("tracing enabled", extra={"trace_file": trace_file})
    # Registration chatter also goes to stderr.
    with contextlib.redirect_stdout(sys.stderr):
        registry = _build_registry(args)
    try:
        return asyncio.run(_serve_async(args, registry, _options(args)))
    finally:
        if tracing:
            TRACER.disable()  # flushes and closes the span dump file


def _fleet_worker_args(args) -> "list[str]":
    """The ``serve`` arguments every fleet worker is spawned with.

    The supervisor appends ``--http <port> --shard-index <k>`` per
    worker; everything plan-determining (clusters, seed, search knobs)
    must be identical across the fleet so any worker would answer any
    question byte-identically — routing only decides *where* the
    answer is cached.
    """
    worker_args = ["--clusters", *args.clusters,
                   "--seed", str(args.seed),
                   "--sa-iterations", str(args.sa_iterations),
                   "--portfolio-k", str(args.portfolio_k),
                   "--workers", str(args.executor_workers),
                   "--log-level", args.log_level]
    if args.no_dedication:
        worker_args.append("--no-dedication")
    if args.store_dir is not None:
        worker_args += ["--store-dir", args.store_dir]
    return worker_args


async def _fleet_async(args) -> int:
    base_port = args.base_port if args.base_port is not None \
        else args.http + 1
    supervisor = FleetSupervisor(
        args.workers, base_port, host=args.host,
        worker_args=_fleet_worker_args(args), log_dir=args.log_dir)
    quota = None
    if args.quota_rate is not None:
        quota = AdmissionController(args.quota_rate, args.quota_burst)
    print(f"fleet: starting {args.workers} workers on "
          f"{args.host}:{base_port}..{base_port + args.workers - 1}",
          file=sys.stderr, flush=True)
    try:
        await supervisor.start()
    except BaseException:
        await supervisor.stop(graceful=False)
        raise
    clients = [WorkerClient(args.host, supervisor.worker_port(k), k)
               for k in range(args.workers)]
    router = FleetRouter(clients, supervisor=supervisor, quota=quota)
    server = await asyncio.start_server(router.handle, host=args.host,
                                        port=args.http,
                                        limit=1 << 16)  # 64 KiB headers
    names = ", ".join(str(sock.getsockname()) for sock in server.sockets)
    print(f"fleet router on {names}", file=sys.stderr, flush=True)
    watch_task = asyncio.ensure_future(supervisor.watch())
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    handled = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
            handled.append(signum)
    codes = None
    try:
        async with server:
            await stop.wait()
            print("fleet draining: router closed, finishing in-flight "
                  "requests", file=sys.stderr, flush=True)
            server.close()
            await router.drain()
    finally:
        for signum in handled:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.remove_signal_handler(signum)
        watch_task.cancel()
        await asyncio.gather(watch_task, return_exceptions=True)
        # Workers drain themselves on SIGTERM (finish in-flight plans,
        # compact shard stores, exit 0).
        codes = await supervisor.stop(graceful=True)
        for client in clients:
            client.close()
    print(f"fleet stopped: worker exit codes {codes}, "
          f"restarts {dict(supervisor.restarts)}",
          file=sys.stderr, flush=True)
    return 0


def cmd_fleet(args) -> int:
    """Run N serve workers behind the consistent-hash fleet router."""
    configure_logging(args.log_level)
    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    if args.quota_rate is not None and not args.quota_rate > 0:
        raise ValueError(f"--quota-rate must be positive, "
                         f"got {args.quota_rate}")
    return asyncio.run(_fleet_async(args))


def _load_span_dump(path: str) -> "list[dict]":
    """Every span payload of one dump file (or directory of them)."""
    if os.path.isdir(path):
        paths = sorted(os.path.join(path, name)
                       for name in os.listdir(path)
                       if name.endswith(".jsonl"))
        if not paths:
            raise ValueError(f"no .jsonl span dumps in {path!r}")
    else:
        paths = [path]
    spans = []
    for file_path in paths:
        with open(file_path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    span = json.loads(line)
                except json.JSONDecodeError:
                    print(f"skipping unparseable line "
                          f"{file_path}:{lineno}", file=sys.stderr)
                    continue
                if isinstance(span, dict) and "span_id" in span:
                    spans.append(span)
    return spans


#: Span attributes surfaced inline by ``trace`` (everything else stays
#: in the JSON dump; these are the ones that answer "why was it slow").
_TRACE_ATTRS = ("outcome", "cluster", "coalesced", "config",
                "exit_reason", "event_kind", "warm_source", "status",
                "n_nodes", "schedule", "templates")


def _print_span(span: dict, depth: int) -> None:
    duration = span.get("duration_ms")
    timing = f"{duration:9.3f} ms" if duration is not None else "      ?   "
    attrs = span.get("attributes") or {}
    notes = [f"{key}={attrs[key]}" for key in _TRACE_ATTRS if key in attrs]
    flight = attrs.get("flight")
    if isinstance(flight, dict):
        notes.append(f"anneal={flight.get('iterations')} iters "
                     f"[{flight.get('provenance')}, "
                     f"{flight.get('exit_reason')}]")
    suffix = f"  ({', '.join(notes)})" if notes else ""
    print(f"  {'  ' * depth}{span.get('name', '?'):<24} {timing}{suffix}")
    for child in span.get("children", ()):
        _print_span(child, depth + 1)


def cmd_trace(args) -> int:
    """Pretty-print a span dump as indented per-trace timing trees."""
    spans = _load_span_dump(args.path)
    if not spans:
        print(f"no spans in {args.path}", file=sys.stderr)
        return 1
    by_trace: "dict[str, list[dict]]" = {}
    for span in spans:
        by_trace.setdefault(str(span.get("trace_id")), []).append(span)
    if args.trace_id is not None:
        if args.trace_id not in by_trace:
            raise ValueError(f"no trace {args.trace_id!r} in {args.path}; "
                             f"{len(by_trace)} traces in the dump")
        selected = [args.trace_id]
    else:
        selected = list(by_trace)[-args.limit:]
        if len(by_trace) > len(selected):
            print(f"showing the last {len(selected)} of {len(by_trace)} "
                  "traces (--limit, or --trace-id for one)",
                  file=sys.stderr)
    for trace_id in selected:
        rows = by_trace[trace_id]
        nodes = {row["span_id"]: {**row, "children": []} for row in rows}
        roots = []
        for node in nodes.values():
            parent = nodes.get(node.get("parent_id"))
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        for node in nodes.values():
            node["children"].sort(key=lambda c: c.get("start_ts") or 0.0)
        roots.sort(key=lambda r: r.get("start_ts") or 0.0)
        print(f"trace {trace_id}  ({len(rows)} spans)")
        for root in roots:
            _print_span(root, 0)
        print()
    return 0


def _print_library(library) -> None:
    """One template library as a per-node-count table."""
    print(f"library: {library.model_name} on {library.cluster_name} "
          f"(x{library.gpus_per_node} GPUs/node), "
          f"global batch {library.global_batch}, "
          f"nodes {library.min_nodes}..{library.max_nodes}, "
          f"{library.size} templates")
    for n_nodes in range(library.min_nodes, library.max_nodes + 1):
        entries = library.templates_for(n_nodes)
        if not entries:
            reason = library.infeasible_reason(n_nodes) \
                or "no feasible configuration"
            print(f"  {n_nodes:>3} nodes: infeasible — {reason}")
            continue
        best = entries[0]
        print(f"  {n_nodes:>3} nodes: {len(entries)} templates, best "
              f"{best.config.describe():<24} "
              f"{best.estimated_latency_s:7.3f} s/iter")


def cmd_templates(args) -> int:
    """Generate, inspect, or background-warm a template library."""
    if args.action == "inspect":
        if args.library is None:
            raise ValueError("templates inspect needs --library FILE")
        library = TemplateStore(args.library).load()
        if library is None:
            print(f"no template library at {args.library}",
                  file=sys.stderr)
            return 2
        _print_library(library)
        return 0
    service = _build_service(args)
    model = get_model(args.model)
    print(f"model:   {model.name}, global batch {args.global_batch}\n")
    kwargs: dict = {"min_nodes": args.min_nodes,
                    "max_nodes": args.max_nodes,
                    "options": _options(args)}
    if args.per_count is not None:
        kwargs["templates_per_count"] = args.per_count
    store = TemplateStore(args.library) if args.library is not None else None
    if args.action == "warm":
        # The off-request-path story: generation runs on the warmer's
        # daemon thread (the CLI just has nothing else to do but wait).
        warmer = TemplateWarmer(service, store=store)
        warmer.start(model, args.global_batch, **kwargs)
        print("warming in the background...")
        library = warmer.wait()
    else:  # generate
        library = service.warm_templates(model, args.global_batch,
                                         **kwargs)
        if store is not None:
            store.save(library)
    _print_library(library)
    if store is not None:
        print(f"\nsaved to {store.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``pipette-plan`` argument parser (shared with tests)."""
    parser = argparse.ArgumentParser(
        prog="pipette-plan",
        description="Pipette planning service: cached, parallel, elastic "
                    "LLM-training configuration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def search_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--global-batch", type=int, default=64,
                       help="bs_global (default 64)")
        p.add_argument("--seed", type=int, default=0,
                       help="fabric/profiling/search seed")
        p.add_argument("--sa-iterations", type=int, default=1500,
                       help="annealing budget per refined candidate")
        p.add_argument("--portfolio-k", type=int, default=4,
                       help="runner-up mappings kept per refined "
                            "candidate for elastic warm starts "
                            "(default 4; 1 keeps only the best)")
        p.add_argument("--no-dedication", action="store_true",
                       help="skip SA worker dedication (PPT-L mode)")
        p.add_argument("--workers", type=int, default=0,
                       help="candidate-executor width; 0 = serial "
                            "(default), -1 = all usable CPUs "
                            f"(this host: {available_workers()})")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cluster", choices=("mid-range", "high-end"),
                       default="mid-range", help="hardware preset (Table I)")
        p.add_argument("--nodes", type=int, default=4,
                       help="node count (default 4)")
        search_opts(p)
        p.add_argument("--store-path", default=None, metavar="FILE",
                       help="durable plan store (JSON lines); plans "
                            "survive restarts and repeats answer as "
                            "cache hits")

    plan = sub.add_parser("plan", help="answer one planning request")
    common(plan)
    plan.add_argument("--model", default="gpt-1.1b",
                      choices=sorted(MODEL_CATALOG),
                      help="architecture to plan for")
    plan.add_argument("--schedule", action="append", default=None,
                      choices=registered_schedules(), metavar="NAME",
                      help="pipeline schedule(s) to sweep as a search "
                           "dimension (repeatable); default sweeps only "
                           f"1f1b. Registered: {', '.join(registered_schedules())}")
    plan.set_defaults(fn=cmd_plan)

    demo = sub.add_parser("demo", help="serve a queued workload "
                                       "(cache + dedup showcase)")
    common(demo)
    demo.add_argument("--models", nargs="+", default=["gpt-1.1b", "gpt-2.2b"],
                      help="architectures in the workload mix")
    demo.add_argument("--repeats", type=int, default=2,
                      help="how many times the workload re-asks")
    demo.set_defaults(fn=cmd_demo)

    rep = sub.add_parser("replan", help="fail a node, compare warm vs cold")
    common(rep)
    rep.add_argument("--model", default="gpt-1.1b",
                     choices=sorted(MODEL_CATALOG),
                     help="architecture to plan for")
    rep.add_argument("--fail-node", type=int, default=1,
                     help="node index that fails")
    rep.set_defaults(fn=cmd_replan)

    reg = sub.add_parser("registry", help="serve several named clusters "
                                          "behind one router")
    search_opts(reg)
    reg.add_argument("--clusters", nargs="+",
                     default=["mid-range:2", "high-end:2"],
                     metavar="PRESET[:NODES]",
                     help="clusters to register (default: one mid-range "
                          "and one high-end cluster of 2 nodes each)")
    reg.add_argument("--model", default="gpt-1.1b",
                     choices=sorted(MODEL_CATALOG),
                     help="architecture to plan for")
    reg.add_argument("--fail-node", type=int, default=None, metavar="NODE",
                     help="also demo failure isolation: fail this node "
                          "on the first cluster (clears its cache and "
                          "durable store; off by default)")
    reg.add_argument("--store-dir", default=None, metavar="DIR",
                     help="directory of per-cluster durable stores "
                          "(one <name>.jsonl each)")
    reg.set_defaults(fn=cmd_registry)

    srv = sub.add_parser("serve", help="run the async gateway as a "
                                       "JSON-lines server")
    search_opts(srv)
    srv.add_argument("--clusters", nargs="+",
                     default=["mid-range:2", "high-end:2"],
                     metavar="PRESET[:NODES]",
                     help="clusters to serve (default: one mid-range "
                          "and one high-end cluster of 2 nodes each)")
    srv.add_argument("--store-dir", default=None, metavar="DIR",
                     help="directory of per-cluster durable stores "
                          "(one <name>.jsonl each)")
    srv.add_argument("--shard-index", type=int, default=None, metavar="K",
                     help="serve as fleet shard K: durable stores use "
                          "per-shard segments (<name>.shard-K.jsonl) "
                          "and shards > 0 share template libraries "
                          "read-only (normally set by the fleet "
                          "supervisor, not by hand)")
    srv.add_argument("--port", type=int, default=None, metavar="PORT",
                     help="listen for JSON lines on TCP PORT instead "
                          "of stdin/stdout")
    srv.add_argument("--http", type=int, default=None, metavar="PORT",
                     help="also (or only) serve HTTP/1.1 on PORT: "
                          "POST /v1/plan, POST /v1/events/*, "
                          "GET /healthz, GET /metrics (Prometheus)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="TCP bind address (with --port/--http; "
                          "default 127.0.0.1)")
    srv.add_argument("--max-queue-depth", type=int, default=64,
                     help="distinct in-flight requests per cluster "
                          "before the overflow policy applies")
    srv.add_argument("--overflow", choices=("wait", "reject"),
                     default="wait",
                     help="over-limit callers wait for a slot or get "
                          "an immediate error")
    srv.add_argument("--fairness", choices=("fair", "fifo"),
                     default="fair",
                     help="drain lanes by weighted round-robin over "
                          "client_id (default) or strict arrival order")
    srv.add_argument("--max-batch", type=int, default=16,
                     help="most requests per drain batch; smaller "
                          "bounds a quiet client's wait behind a "
                          "chatty one (default 16)")
    srv.add_argument("--client-weight", action="append", default=None,
                     metavar="NAME=WEIGHT",
                     help="round-robin weight for a client_id "
                          "(repeatable; default 1 each)")
    srv.add_argument("--log-level", default="info",
                     choices=("debug", "info", "warning", "error"),
                     help="stderr JSON log threshold (default info)")
    srv.add_argument("--trace", action="store_true",
                     help="trace every plan end to end: span trees on "
                          "GET /v1/debug/traces and 'timing' blocks in "
                          "detail responses")
    srv.add_argument("--trace-dir", default=None, metavar="DIR",
                     help="also append every finished span to "
                          "DIR/trace-<pid>.jsonl (implies --trace; "
                          "pretty-print with the 'trace' subcommand)")
    srv.set_defaults(fn=cmd_serve)

    flt = sub.add_parser("fleet", help="run N serve workers behind one "
                                       "consistent-hash HTTP router")
    flt.add_argument("--workers", type=int, default=2, metavar="N",
                     help="worker processes in the fleet (default 2)")
    flt.add_argument("--http", type=int, default=8080, metavar="PORT",
                     help="router listen port (default 8080)")
    flt.add_argument("--base-port", type=int, default=None, metavar="PORT",
                     help="worker K serves on PORT+K "
                          "(default: router port + 1)")
    flt.add_argument("--host", default="127.0.0.1",
                     help="bind address for router and workers "
                          "(default 127.0.0.1)")
    flt.add_argument("--clusters", nargs="+",
                     default=["mid-range:2", "high-end:2"],
                     metavar="PRESET[:NODES]",
                     help="clusters every worker serves (default: one "
                          "mid-range and one high-end cluster of 2 "
                          "nodes each)")
    flt.add_argument("--store-dir", default=None, metavar="DIR",
                     help="shared durable-store directory; worker K "
                          "owns <name>.shard-K.jsonl segments and "
                          "template libraries are shared read-only")
    flt.add_argument("--quota-rate", type=float, default=None,
                     metavar="R",
                     help="admission quota: sustained plan requests "
                          "per second per client_id; over-budget "
                          "requests answer 429 (default: no quota)")
    flt.add_argument("--quota-burst", type=float, default=None,
                     metavar="B",
                     help="admission burst per client_id "
                          "(default: max(1, 2 * rate))")
    flt.add_argument("--seed", type=int, default=0,
                     help="fabric/profiling/search seed (forwarded to "
                          "every worker)")
    flt.add_argument("--sa-iterations", type=int, default=1500,
                     help="annealing budget per refined candidate "
                          "(forwarded)")
    flt.add_argument("--portfolio-k", type=int, default=4,
                     help="runner-up mappings kept per refined "
                          "candidate (forwarded)")
    flt.add_argument("--no-dedication", action="store_true",
                     help="skip SA worker dedication (forwarded)")
    flt.add_argument("--executor-workers", type=int, default=0,
                     metavar="W",
                     help="candidate-executor width inside each "
                          "worker (serve's --workers; default 0 = "
                          "serial)")
    flt.add_argument("--log-dir", default=None, metavar="DIR",
                     help="append worker K's output to "
                          "DIR/worker-K.log (default: inherit stderr)")
    flt.add_argument("--log-level", default="info",
                     choices=("debug", "info", "warning", "error"),
                     help="stderr JSON log threshold, router and "
                          "workers (default info)")
    flt.set_defaults(fn=cmd_fleet)

    tpl = sub.add_parser("templates",
                         help="generate, inspect, or background-warm an "
                              "elastic pipeline-template library")
    tpl.add_argument("action", choices=("generate", "inspect", "warm"),
                     help="generate synchronously, inspect a persisted "
                          "library, or warm through the background "
                          "TemplateWarmer")
    common(tpl)
    tpl.add_argument("--model", default="gpt-1.1b",
                     choices=sorted(MODEL_CATALOG),
                     help="architecture to build templates for")
    tpl.add_argument("--min-nodes", type=int, default=1,
                     help="smallest node count to cover (default 1)")
    tpl.add_argument("--max-nodes", type=int, default=None,
                     help="largest node count to cover (default: the "
                          "cluster's full size)")
    tpl.add_argument("--per-count", type=int, default=None,
                     metavar="K",
                     help="templates kept per node count (default 4)")
    tpl.add_argument("--library", default=None, metavar="FILE",
                     help="template store: generate/warm save here, "
                          "inspect reads from here")
    tpl.set_defaults(fn=cmd_templates)

    trc = sub.add_parser("trace", help="pretty-print a span dump written "
                                       "by serve --trace-dir")
    trc.add_argument("path", metavar="FILE_OR_DIR",
                     help="a trace-<pid>.jsonl dump, or the --trace-dir "
                          "holding several")
    trc.add_argument("--trace-id", default=None, metavar="ID",
                     help="print only this trace")
    trc.add_argument("--limit", type=int, default=10,
                     help="most recent traces to print (default 10)")
    trc.set_defaults(fn=cmd_trace)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: dispatch a subcommand, keep errors friendly."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except PlanStoreError as exc:
        # A corrupt, foreign, or locked plan store is an operator
        # problem with a one-line explanation, not a traceback.
        print(f"store error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, RuntimeError, KeyError) as exc:
        # Bad operands (unknown model, out-of-range node, infeasible
        # batch) are user errors, not crashes.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/grep that quit early — routine,
        # not an error.  Detach stdout so the interpreter does not
        # complain again while flushing at exit.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())

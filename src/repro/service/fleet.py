"""Horizontally sharded planning fleet: supervisor + front-end router.

One ``serve`` process tops out at one interpreter's worth of
cache-miss searches.  The fleet layer scales the serving stack across
*processes* while keeping every single-process guarantee intact:

* :class:`FleetSupervisor` spawns N worker processes, each the
  ordinary ``python -m repro.service serve --http <port>
  --shard-index <k>`` stack (registry → gateway → HTTP) over its own
  durable shard segments (``<cluster>.shard-<k>.jsonl``).  It
  health-checks workers over ``/healthz``, restarts crashed ones onto
  the same shard store (so the revived worker rehydrates and keeps
  answering byte-identically), and performs rolling restarts through
  each worker's graceful SIGTERM drain.
* :class:`FleetRouter` is the thin front door.  ``POST /v1/plan``
  consistent-hashes the request's plan-determining content
  (:func:`~repro.service.shard.routing_key`) onto one worker, so the
  same question always lands on the same shard — per-shard LRU caches
  and in-flight coalescing stay exactly as effective as in one
  process, and a question is searched once per fleet, not once per
  worker.  Elastic events and template warm-ups fan to *all* workers
  (every worker models every cluster; the deterministic epoch math
  keeps their fingerprints in lockstep).  ``GET /metrics`` merges the
  workers' expositions into one page with a ``worker`` label
  (:func:`~repro.service.metrics.merge_expositions`) plus the
  router's own fleet series; ``GET /healthz`` aggregates worker
  health.
* :class:`AdmissionController` backs lane fairness *inside* a worker
  with admission fairness *across* the fleet: a token bucket per
  ``client_id`` at the front door answers ``429`` once a client
  exceeds its refill rate, before the request can queue anywhere.

Operator documentation (topology diagram, knobs, the fleet metrics
catalog) lives in ``docs/SERVING.md``; the scale-out proof —
≥2.5x aggregate cache-miss throughput at 4 workers with byte-identical
plans — in ``benchmarks/bench_fleet.py``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys
import time
from collections import OrderedDict
from pathlib import Path

from repro.obs.logs import get_logger
from repro.service.http import (
    MAX_BODY_BYTES,
    HttpError,
    _json_body,
    _keep_alive,
    _read_request,
    _write_response,
)
from repro.service.metrics import MetricsRegistry, merge_expositions
from repro.service.shard import DEFAULT_REPLICAS, HashRing, routing_key

__all__ = ["AdmissionController", "FleetRouter", "FleetSupervisor",
           "TokenBucket", "WorkerClient"]

_JSON = "application/json; charset=utf-8"

_log = get_logger("service.fleet")


# ------------------------------------------------------------- admission


class TokenBucket:
    """One client's admission budget: ``rate`` tokens/s up to ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst  # a new client starts with a full burst
        self.stamp = now

    def admit(self, now: float) -> bool:
        """Take one token if available (refilling for elapsed time)."""
        self.tokens = min(self.burst,
                          self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-``client_id`` token buckets at the fleet's front door.

    Args:
        rate: sustained plan requests per second granted to each
            client (> 0).
        burst: bucket capacity — how far a quiet client can briefly
            exceed ``rate``; defaults to ``max(1, 2 * rate)``.
        max_clients: bound on tracked clients; the least recently
            *seen* bucket is evicted beyond it (an evicted client that
            returns simply starts a fresh, full bucket).
        clock: injectable monotonic time source, for tests.

    The fleet-level twin of the per-worker fair lanes: lanes stop one
    admitted client from starving another, the admission controller
    stops a flood from being admitted in the first place.  Requests
    without a ``client_id`` share the ``""`` bucket, mirroring the
    gateway's default fair-queue lane.
    """

    def __init__(self, rate: float, burst: "float | None" = None,
                 max_clients: int = 4096, clock=time.monotonic) -> None:
        if not rate > 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst is None:
            burst = max(1.0, 2.0 * rate)
        if not burst >= 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def admit(self, client_id: str) -> bool:
        """Whether one request from ``client_id`` may enter the fleet."""
        now = self._clock()
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client_id] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client_id)
        return bucket.admit(now)

    @property
    def retry_after_s(self) -> float:
        """Seconds until a drained bucket holds one token again."""
        return 1.0 / self.rate


# ------------------------------------------------------ worker transport


async def _read_http_response(reader: asyncio.StreamReader
                              ) -> "tuple[int, dict, bytes]":
    """One worker HTTP/1.1 response -> (status, headers, body)."""
    status_line = await reader.readline()
    if not status_line:
        raise asyncio.IncompleteReadError(b"", None)
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ConnectionError(f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: "dict[str, str]" = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


class WorkerClient:
    """Keep-alive HTTP client to one worker, with a connection pool.

    The router opens at most ``max_pool`` idle connections per worker;
    a request over a pooled connection that turns out stale (the
    worker restarted since it was pooled) is retried once on a fresh
    connection before the failure propagates.
    """

    def __init__(self, host: str, port: int, index: "int | None" = None,
                 max_pool: int = 8) -> None:
        self.host = host
        self.port = int(port)
        self.index = index
        self.max_pool = int(max_pool)
        self._pool: "list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]" = []

    async def request(self, method: str, path: str, body: bytes = b"",
                      timeout_s: "float | None" = None
                      ) -> "tuple[int, bytes]":
        """One proxied request -> (status, response body).

        Raises ``ConnectionError`` / ``OSError`` when the worker is
        unreachable even over a fresh connection — the router's cue to
        involve the supervisor.
        """
        for attempt in (0, 1):
            pooled = bool(self._pool)
            if pooled:
                reader, writer = self._pool.pop()
            else:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port)
            try:
                head = (f"{method} {path} HTTP/1.1\r\n"
                        f"Host: {self.host}:{self.port}\r\n"
                        f"Content-Type: {_JSON}\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n")
                writer.write(head.encode("latin-1") + body)
                await writer.drain()
                waiter = _read_http_response(reader)
                if timeout_s is not None:
                    waiter = asyncio.wait_for(waiter, timeout_s)
                status, headers, payload = await waiter
            except (ConnectionError, OSError, EOFError,
                    asyncio.IncompleteReadError):
                writer.close()
                if pooled:
                    continue  # stale pooled connection; retry fresh
                raise
            except BaseException:
                writer.close()
                raise
            if headers.get("connection", "").lower() == "close" \
                    or len(self._pool) >= self.max_pool:
                writer.close()
            else:
                self._pool.append((reader, writer))
            return status, payload
        raise ConnectionError(f"worker {self.index} closed both attempts")

    def close(self) -> None:
        """Close every pooled connection."""
        while self._pool:
            _, writer = self._pool.pop()
            writer.close()


# ------------------------------------------------------------ supervisor


class FleetSupervisor:
    """Spawns, health-checks, restarts, and drains the worker fleet.

    Args:
        n_workers: fleet size.
        base_port: worker ``k`` serves HTTP on ``base_port + k``.
        host: bind/connect address for every worker.
        worker_args: extra CLI arguments appended to every worker's
            ``serve`` command line (clusters, store dir, search knobs).
        python: interpreter to spawn workers with.
        log_dir: when given, worker ``k``'s stderr/stdout append to
            ``<log_dir>/worker-<k>.log`` (surviving restarts);
            otherwise output inherits the supervisor's stderr.
        health_timeout_s: how long :meth:`wait_healthy` polls before
            declaring a worker failed.
        poll_interval_s: crash-detection cadence of :meth:`watch`.

    Worker ``k`` always gets ``--shard-index k``, so its durable layer
    lives in per-shard segments and a restart rehydrates exactly the
    plans this shard answered before.
    """

    def __init__(self, n_workers: int, base_port: int, *,
                 host: str = "127.0.0.1",
                 worker_args: "tuple[str, ...] | list[str]" = (),
                 python: str = sys.executable,
                 log_dir: "str | None" = None,
                 health_timeout_s: float = 60.0,
                 poll_interval_s: float = 0.25) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.base_port = int(base_port)
        self.host = host
        self.worker_args = list(worker_args)
        self.python = python
        self.log_dir = log_dir
        self.health_timeout_s = float(health_timeout_s)
        self.poll_interval_s = float(poll_interval_s)
        self.procs: "list[subprocess.Popen | None]" = [None] * n_workers
        self.restarts = {k: 0 for k in range(n_workers)}
        self._locks = [asyncio.Lock() for _ in range(n_workers)]

    # ------------------------------------------------------------ spawning

    def worker_port(self, index: int) -> int:
        """The HTTP port worker ``index`` serves on."""
        return self.base_port + index

    def _worker_env(self) -> "dict[str, str]":
        # Workers must import the same repro tree as the supervisor,
        # however it was put on *our* path (PYTHONPATH=src, an
        # installed package, a checkout).
        env = dict(os.environ)
        import repro
        src = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src + (os.pathsep + existing
                                       if existing else "")
        return env

    def spawn(self, index: int) -> subprocess.Popen:
        """Start worker ``index`` (over its existing shard store)."""
        cmd = [self.python, "-m", "repro.service", "serve",
               "--http", str(self.worker_port(index)),
               "--host", self.host,
               "--shard-index", str(index), *self.worker_args]
        if self.log_dir is not None:
            os.makedirs(self.log_dir, exist_ok=True)
            log_path = os.path.join(self.log_dir, f"worker-{index}.log")
            with open(log_path, "ab") as log_fh:
                proc = subprocess.Popen(cmd, env=self._worker_env(),
                                        stdout=log_fh, stderr=log_fh)
        else:
            proc = subprocess.Popen(cmd, env=self._worker_env(),
                                    stdout=subprocess.DEVNULL)
        self.procs[index] = proc
        _log.info("worker spawned", extra={
            "worker": index, "pid": proc.pid,
            "port": self.worker_port(index)})
        return proc

    # -------------------------------------------------------------- health

    async def check_health(self, index: int) -> bool:
        """One ``GET /healthz`` probe of worker ``index``."""
        client = WorkerClient(self.host, self.worker_port(index), index)
        try:
            status, _ = await client.request("GET", "/healthz",
                                             timeout_s=5.0)
        except (ConnectionError, OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            return False
        finally:
            client.close()
        return status == 200

    async def wait_healthy(self, index: int,
                           timeout_s: "float | None" = None) -> None:
        """Poll worker ``index`` until ``/healthz`` answers 200.

        Raises ``RuntimeError`` if the worker process exits or the
        timeout expires first — a worker that cannot come up is an
        operator problem, not something to poll forever.
        """
        deadline = time.monotonic() + (timeout_s if timeout_s is not None
                                       else self.health_timeout_s)
        while True:
            proc = self.procs[index]
            if proc is None or proc.poll() is not None:
                code = None if proc is None else proc.returncode
                raise RuntimeError(
                    f"worker {index} exited with code {code} before "
                    f"becoming healthy")
            if await self.check_health(index):
                return
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"worker {index} did not answer /healthz on "
                    f"{self.host}:{self.worker_port(index)} within "
                    f"{timeout_s if timeout_s is not None else self.health_timeout_s:.1f}s")
            await asyncio.sleep(0.1)

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Spawn every worker and wait until all are healthy."""
        for index in range(self.n_workers):
            self.spawn(index)
        await asyncio.gather(*(self.wait_healthy(k)
                               for k in range(self.n_workers)))

    async def ensure_alive(self, index: int,
                           timeout_s: "float | None" = None) -> None:
        """Restart worker ``index`` if its process died; wait healthy.

        Serialized per worker, so the watch loop and a router retry
        discovering the same corpse spawn one replacement, not two.
        """
        async with self._locks[index]:
            proc = self.procs[index]
            if proc is None or proc.poll() is not None:
                if proc is not None:
                    self.restarts[index] += 1
                    _log.warning("worker died; restarting", extra={
                        "worker": index, "returncode": proc.returncode,
                        "restarts": self.restarts[index]})
                self.spawn(index)
            await self.wait_healthy(index, timeout_s)

    async def watch(self) -> None:
        """Restart crashed workers until cancelled (the monitor loop)."""
        while True:
            await asyncio.sleep(self.poll_interval_s)
            for index in range(self.n_workers):
                proc = self.procs[index]
                if proc is not None and proc.poll() is not None:
                    with contextlib.suppress(Exception):
                        await self.ensure_alive(index)

    async def _wait_exit(self, proc: subprocess.Popen,
                         timeout_s: float) -> bool:
        deadline = time.monotonic() + timeout_s
        while proc.poll() is None:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.05)
        return True

    async def rolling_restart(self,
                              drain_timeout_s: float = 30.0) -> None:
        """Restart workers one at a time through their graceful drain.

        Each worker gets SIGTERM (finish in-flight plans, compact and
        fsync stores, exit 0), is respawned over its shard store, and
        must pass ``/healthz`` before the next worker is touched — at
        most one shard is dark at any moment.
        """
        for index in range(self.n_workers):
            async with self._locks[index]:
                proc = self.procs[index]
                if proc is not None and proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
                    if not await self._wait_exit(proc, drain_timeout_s):
                        proc.kill()
                        await self._wait_exit(proc, 5.0)
                    self.restarts[index] += 1
                self.spawn(index)
                await self.wait_healthy(index)

    async def stop(self, graceful: bool = True,
                   timeout_s: float = 15.0) -> "list[int | None]":
        """Stop the fleet; returns each worker's exit code.

        ``graceful`` sends SIGTERM (workers drain and exit 0) and
        escalates to SIGKILL only past ``timeout_s``.
        """
        live = [(k, p) for k, p in enumerate(self.procs)
                if p is not None and p.poll() is None]
        for _, proc in live:
            proc.send_signal(signal.SIGTERM if graceful else signal.SIGKILL)
        deadline = time.monotonic() + timeout_s
        for index, proc in live:
            if not await self._wait_exit(
                    proc, max(0.0, deadline - time.monotonic())):
                _log.warning("worker ignored SIGTERM; killing",
                             extra={"worker": index})
                proc.kill()
                await self._wait_exit(proc, 5.0)
        return [None if p is None else p.returncode for p in self.procs]


# ---------------------------------------------------------------- router


class FleetRouter:
    """The fleet's front door: shard routing, fan-out, aggregation.

    Args:
        workers: one :class:`WorkerClient` per worker, index-aligned
            with the supervisor's shards.
        supervisor: when given, a worker found unreachable is revived
            (:meth:`FleetSupervisor.ensure_alive`) and the request
            retried once before a ``502`` escapes.
        quota: optional :class:`AdmissionController`; ``None`` admits
            everything (the per-worker lanes still enforce fairness
            among admitted requests).
        metrics: registry for the router's own series; created fresh
            when ``None``.
        max_body_bytes: request-body cap, as on the workers.
        replicas: virtual nodes per worker on the hash ring.

    The router is deliberately *thin*: it never parses plan results,
    never caches, never coalesces — those stay in the workers, where
    the consistent hash concentrates each key.  It owns exactly the
    concerns that must be fleet-global: placement, admission, fan-out,
    and the aggregated observability pages.
    """

    def __init__(self, workers: "list[WorkerClient]", *,
                 supervisor: "FleetSupervisor | None" = None,
                 quota: "AdmissionController | None" = None,
                 metrics: "MetricsRegistry | None" = None,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        self.workers = list(workers)
        self.supervisor = supervisor
        self.quota = quota
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_body_bytes = int(max_body_bytes)
        self.ring = HashRing(range(len(self.workers)), replicas=replicas)
        self._connections: "dict[asyncio.Task, asyncio.StreamWriter]" = {}
        self._busy: "set[asyncio.Task]" = set()
        self._draining = False
        self._requests = self.metrics.counter(
            "pipette_fleet_requests_total",
            "Requests served by the fleet router, by method, route, "
            "and status code.",
            ("method", "route", "code"))
        self._admission_rejects = self.metrics.counter(
            "pipette_admission_rejects_total",
            "Plan requests refused at the fleet front door because the "
            "client's token bucket was empty (HTTP 429).",
            ("client_id",))
        self.metrics.gauge(
            "pipette_fleet_workers",
            "Worker processes behind the fleet router."
        ).set_function(lambda: len(self.workers))
        restarts = self.metrics.counter(
            "pipette_fleet_worker_restarts_total",
            "Crashed-worker restarts performed by the supervisor.",
            ("worker",))
        if supervisor is not None:
            for index in range(len(self.workers)):
                restarts.labels(worker=str(index)).bind(
                    lambda k=index: supervisor.restarts[k])
        self._routes = {
            ("POST", "/v1/plan"): self._plan,
            ("POST", "/v1/events/bandwidth"):
                lambda body: self._fan("/v1/events/bandwidth", body),
            ("POST", "/v1/events/failure"):
                lambda body: self._fan("/v1/events/failure", body),
            ("POST", "/v1/templates/warm"):
                lambda body: self._fan("/v1/templates/warm", body),
            ("GET", "/healthz"): self._healthz,
            ("GET", "/metrics"): self._metrics_page,
        }

    # ------------------------------------------------------- connection

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """Serve one client connection (the start_server callback)."""
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = writer
        try:
            while True:
                try:
                    parsed = await _read_request(reader, self.max_body_bytes)
                except HttpError as exc:
                    self._count("-", "unmatched", exc.status)
                    _write_response(
                        writer, exc.status,
                        _json_body({"status": "error",
                                    "error": exc.message}),
                        _JSON, keep_alive=False)
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if parsed is None:
                    break
                if task is not None:
                    self._busy.add(task)
                method, path, version, headers, body = parsed
                keep_alive = _keep_alive(version, headers)
                status, content_type, out, route = \
                    await self._dispatch(method, path, body)
                self._count(method, route, status)
                keep_alive = keep_alive and not self._draining
                _write_response(writer, status, out, content_type,
                                keep_alive)
                await writer.drain()
                if task is not None:
                    self._busy.discard(task)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # client went away; nothing left to answer
        finally:
            if task is not None:
                self._busy.discard(task)
                self._connections.pop(task, None)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def drain(self, poll_s: float = 0.05) -> None:
        """Finish in-flight requests, then close every connection.

        Same contract as
        :meth:`~repro.service.http.HttpPlanServer.drain`: the caller
        closes the listener, busy connections complete their current
        request, idle keep-alives are closed outright.
        """
        self._draining = True
        while self._connections:
            for conn_task, conn_writer in list(self._connections.items()):
                if conn_task not in self._busy:
                    conn_writer.close()
            await asyncio.wait(set(self._connections), timeout=poll_s)

    def _count(self, method: str, route: str, status: int) -> None:
        self._requests.labels(method=method, route=route,
                              code=str(status)).inc()

    # --------------------------------------------------------- dispatch

    async def _dispatch(self, method: str, path: str, body: bytes):
        handler = self._routes.get((method, path))
        if handler is None:
            allowed = sorted(m for m, p in self._routes if p == path)
            if allowed:
                return (405, _JSON,
                        _json_body({"status": "error",
                                    "error": f"{method} is not allowed "
                                             f"on {path}"}),
                        path)
            return (404, _JSON,
                    _json_body({"status": "error",
                                "error": f"unknown route {path}; the fleet "
                                         "router serves /v1/plan, "
                                         "/v1/events/bandwidth, "
                                         "/v1/events/failure, "
                                         "/v1/templates/warm, /healthz, "
                                         "/metrics"}),
                    "unmatched")
        try:
            status, content_type, out = await handler(body)
        except HttpError as exc:
            status, content_type, out = exc.status, _JSON, _json_body(
                {"status": "error", "error": exc.message})
        except (ValueError, TypeError, KeyError,
                json.JSONDecodeError) as exc:
            status, content_type, out = 400, _JSON, _json_body(
                {"status": "error", "error": str(exc)})
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — the 500 boundary
            status, content_type, out = 500, _JSON, _json_body(
                {"status": "error", "error": f"internal error: {exc}"})
        return status, content_type, out, path

    def _json_payload(self, body: bytes) -> dict:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"request body is not JSON: {exc}") \
                from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    # ------------------------------------------------------------ routes

    async def _plan(self, body: bytes):
        payload = self._json_payload(body)
        client_id = payload.get("client_id")
        client_id = "" if client_id is None else str(client_id)
        if self.quota is not None and not self.quota.admit(client_id):
            self._admission_rejects.labels(client_id=client_id).inc()
            raise HttpError(
                429, f"admission quota exhausted for client "
                     f"{client_id or '(default)'}; retry in "
                     f"~{self.quota.retry_after_s:.2f}s")
        index = self.ring.lookup(routing_key(payload))
        status, out = await self._proxy(index, "POST", "/v1/plan", body)
        return status, _JSON, out

    async def _proxy(self, index: int, method: str, path: str,
                     body: bytes, timeout_s: "float | None" = None
                     ) -> "tuple[int, bytes]":
        """One request to worker ``index``, reviving it if dead."""
        worker = self.workers[index]
        try:
            return await worker.request(method, path, body,
                                        timeout_s=timeout_s)
        except (ConnectionError, OSError,
                asyncio.IncompleteReadError) as exc:
            reason = exc
            if self.supervisor is not None:
                try:
                    await self.supervisor.ensure_alive(index)
                    return await worker.request(method, path, body,
                                                timeout_s=timeout_s)
                except (ConnectionError, OSError, RuntimeError,
                        asyncio.IncompleteReadError) as retry_exc:
                    reason = retry_exc
            raise HttpError(
                502, f"worker {index} is unreachable ({reason})") from None

    async def _fan(self, path: str, body: bytes):
        """Fan one POST to every worker; merge the answers.

        Elastic events must reach *all* workers — each models every
        cluster, and a worker that missed a failure event would keep
        serving plans for dead nodes.  The per-worker epoch fencing is
        untouched (each gateway rolls its epoch between its own drain
        batches), and because the epoch fingerprint is deterministic
        in the event's content, all workers land on the same epoch —
        checked here, reported as per-worker ``epochs`` if they ever
        diverge.  ``retired`` sums across shards: each worker retires
        the cached plans *its* shard held, so the sum is the fleet
        total, directly comparable to the single-process number.
        """
        self._json_payload(body)  # reject malformed bodies before the fan
        results = await asyncio.gather(
            *(self._proxy(k, "POST", path, body)
              for k in range(len(self.workers))),
            return_exceptions=True)
        answers: "dict[int, tuple[int, dict]]" = {}
        for index, result in enumerate(results):
            if isinstance(result, BaseException):
                raise result if isinstance(result, HttpError) else \
                    HttpError(502, f"worker {index} failed: {result}")
            status, raw = result
            try:
                parsed = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                parsed = {"raw": raw.decode("utf-8", "replace")}
            answers[index] = (status, parsed)
        worst = max(status for status, _ in answers.values())
        if worst >= 400:
            # Workers are deterministic replicas, so they fail alike;
            # surface the first failing answer verbatim.
            for index in sorted(answers):
                status, parsed = answers[index]
                if status >= 400:
                    return status, _JSON, _json_body(parsed)
        out = dict(answers[0][1])
        out["workers"] = len(self.workers)
        if any("retired" in parsed for _, parsed in answers.values()):
            out["retired"] = sum(int(parsed.get("retired", 0))
                                 for _, parsed in answers.values())
        epochs = {str(k): parsed.get("epoch")
                  for k, (_, parsed) in answers.items()
                  if "epoch" in parsed}
        if epochs and len(set(epochs.values())) > 1:
            _log.warning("fleet epochs diverged", extra={
                "path": path, "epochs": epochs})
            out["epochs"] = epochs
        return 200, _JSON, _json_body(out)

    async def _healthz(self, body: bytes):
        """Aggregate worker health: ``ok`` only when every shard is."""
        async def probe(index: int):
            try:
                status, raw = await self.workers[index].request(
                    "GET", "/healthz", timeout_s=5.0)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                return None
            if status != 200:
                return None
            try:
                return json.loads(raw)
            except json.JSONDecodeError:
                return None

        reports = await asyncio.gather(
            *(probe(k) for k in range(len(self.workers))))
        workers = {str(k): report for k, report in enumerate(reports)}
        healthy = [r for r in reports if r is not None]
        out = {
            "status": "ok" if len(healthy) == len(reports) else "degraded",
            "fleet_workers": len(self.workers),
            "healthy_workers": len(healthy),
            "workers": workers,
        }
        if healthy:
            out["clusters"] = healthy[0].get("clusters", [])
        if self.supervisor is not None:
            out["restarts"] = {str(k): v for k, v
                               in self.supervisor.restarts.items()}
        return 200, _JSON, _json_body(out)

    async def _metrics_page(self, body: bytes):
        """One Prometheus page: router series + worker-labeled series."""
        async def scrape(index: int):
            try:
                status, raw = await self.workers[index].request(
                    "GET", "/metrics", timeout_s=5.0)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                return None
            return raw.decode("utf-8") if status == 200 else None

        pages = await asyncio.gather(
            *(scrape(k) for k in range(len(self.workers))))
        # A dead worker's series simply drop off the page (healthz
        # reports it); merging must not fail a whole scrape for one
        # crashed shard.
        merged = merge_expositions(
            [(str(k), page) for k, page in enumerate(pages)
             if page is not None])
        text = self.metrics.render() + merged
        return 200, MetricsRegistry.CONTENT_TYPE, text.encode("utf-8")

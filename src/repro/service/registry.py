"""Multi-cluster planning: one front door over many named services.

A real fleet is several clusters — different hardware generations,
different fabrics — each with its own profiled bandwidth matrix,
memory estimator, and plan cache.  :class:`ClusterRegistry` owns one
:class:`~repro.service.planner.PlanningService` per named cluster and
routes work to them:

* a request *pinned* to a cluster name goes straight to that service;
* an unpinned request is routed by spec match — the registered
  cluster equal to the request's ``cluster`` answers it;
* a caller with no cluster preference at all asks
  :meth:`ClusterRegistry.plan_cheapest`, which fans the same planning
  question over every registered cluster (each search reusing the
  shared :class:`~repro.service.executor.CandidateExecutor`) and
  returns the feasible plan with the lowest estimated latency;
* work can be *queued* instead of answered inline —
  :meth:`ClusterRegistry.submit` routes a ticket onto its cluster's
  queue and :meth:`ClusterRegistry.drain_all` answers every cluster's
  backlog — so elastic events land between batches, fenced against
  in-flight searches, and the async gateway
  (:mod:`repro.service.gateway`) can drain clusters concurrently;
* elastic events — a re-profiled matrix, a node failure — are
  propagated to exactly one named cluster, leaving every sibling's
  cache and epoch untouched.

Services keep their identity inside the registry: per-cluster durable
caches (:mod:`repro.service.store`) rehydrate independently, so a
restarted registry remembers every cluster's plans.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.topology import ClusterSpec
from repro.core.configurator import PipetteResult, RankedConfig
from repro.core.memory_estimator import MemoryEstimator
from repro.model.transformer import TransformerConfig
from repro.obs.trace import TRACER
from repro.service.cache import PlanCache, PlanRequest
from repro.service.executor import CandidateExecutor
from repro.service.planner import PlanningService, PlanResponse, PlanTicket
from repro.service.replan import DEFAULT_DRIFT_THRESHOLD


@dataclass
class RoutedResponse:
    """A plan answer plus the name of the cluster that produced it."""

    cluster_name: str
    response: PlanResponse

    @property
    def best(self) -> RankedConfig | None:
        """Shortcut to the recommended configuration."""
        return self.response.best

    @property
    def result(self) -> PipetteResult | None:
        """Shortcut to the full search result."""
        return self.response.result

    @property
    def status(self) -> str:
        """Shortcut to the cache status (``"hit"``/``"miss"``/...)."""
        return self.response.status


def cheapest_rank_key(best: RankedConfig, name: str) -> tuple:
    """Fleet-wide ranking key for cheapest-feasible routing.

    Memory-fitting plans first, then estimated latency, then the
    *cluster name* — one definition shared by every cheapest-feasible
    path (:meth:`ClusterRegistry.plan_cheapest`, the ``serve``
    front end's broadcast), so they can never rank ties differently.
    """
    return (not best.memory_ok, best.estimated_latency_s, name)


class ClusterRegistry:
    """Front door owning one planning service per named cluster.

    Args:
        executor: candidate executor shared by every registered
            service built through :meth:`add_cluster` (one pool serves
            the whole fleet; per-cluster searches fan their candidate
            chunks over it independently).  ``None`` searches serially.
    """

    def __init__(self, executor: CandidateExecutor | None = None) -> None:
        self.executor = executor
        self._services: "OrderedDict[str, PlanningService]" = OrderedDict()
        self._metrics = None
        # Guards membership only.  Routing and draining take a snapshot
        # of the table and then rely on each service's own lock, so a
        # long drain on one cluster never blocks registering another.
        self._lock = threading.RLock()

    # ---------------------------------------------------------- membership

    def __len__(self) -> int:
        with self._lock:
            return len(self._services)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._services

    @property
    def names(self) -> list[str]:
        """Registered cluster names, in registration order."""
        with self._lock:
            return list(self._services)

    def _snapshot(self) -> "list[tuple[str, PlanningService]]":
        with self._lock:
            return list(self._services.items())

    def register(self, name: str, service: PlanningService) -> PlanningService:
        """Adopt an existing service under ``name``.

        If metrics were attached (:meth:`attach_metrics`), the new
        service is exported immediately under its cluster name — and
        *before* the membership mutation, so a failed attach (e.g.
        re-registering a name whose series are still bound to an
        unregistered predecessor) leaves the registry unchanged
        instead of half-registered.
        """
        with self._lock:
            if name in self._services:
                raise ValueError(f"cluster {name!r} is already registered")
            if self._metrics is not None:
                service.attach_metrics(self._metrics, name)
            self._services[name] = service
            return service

    def add_cluster(self, name: str, cluster: ClusterSpec,
                    bandwidth: BandwidthMatrix,
                    memory_estimator: MemoryEstimator | None = None,
                    cache: PlanCache | None = None,
                    profile_seed: int = 0) -> PlanningService:
        """Build and register a service for ``cluster`` under ``name``.

        The service shares the registry's executor; pass a
        :class:`~repro.service.store.DurablePlanCache` as ``cache`` to
        give the cluster restart-surviving plans.
        """
        return self.register(name, PlanningService(
            cluster, bandwidth, memory_estimator=memory_estimator,
            executor=self.executor, cache=cache, profile_seed=profile_seed))

    def unregister(self, name: str) -> PlanningService:
        """Remove and return the named service (its cache is untouched)."""
        with self._lock:
            if name not in self._services:
                self._raise_unknown(name)
            return self._services.pop(name)

    def service(self, name: str) -> PlanningService:
        """The service planning for the named cluster."""
        with self._lock:
            service = self._services.get(name)
            if service is None:
                self._raise_unknown(name)
            return service

    def _raise_unknown(self, name: str):
        raise ValueError(
            f"unknown cluster {name!r}; registered: {self.names or 'none'}"
        )

    # ------------------------------------------------------------- routing

    def route(self, request: PlanRequest) -> str:
        """Name of the registered cluster matching ``request.cluster``.

        Spec equality is the router (the request embeds the cluster it
        was built for); with duplicate specs the earliest registration
        wins, matching LRU-style stability.
        """
        with TRACER.span("registry.route") as span:
            for name, service in self._snapshot():
                if service.cluster == request.cluster:
                    span.set_attribute("cluster", name)
                    return name
            raise ValueError(
                f"no registered cluster matches the request's "
                f"{request.cluster.name!r} ({request.cluster.n_nodes} "
                f"nodes); registered: {self.names or 'none'}"
            )

    def plan(self, request: PlanRequest,
             cluster: str | None = None) -> RoutedResponse:
        """Answer one request, pinned to ``cluster`` or routed by spec."""
        name = cluster if cluster is not None else self.route(request)
        return RoutedResponse(cluster_name=name,
                              response=self.service(name).plan(request))

    # ------------------------------------------------------------- queueing

    def submit(self, request: PlanRequest,
               cluster: str | None = None) -> "tuple[str, PlanTicket]":
        """Queue one request on its cluster's service; drain later.

        Routing matches :meth:`plan` — pinned by name or matched by
        spec — but the ticket waits for :meth:`drain` /
        :meth:`drain_all` instead of being answered now.  Queueing at
        the registry level is what lets an elastic event *fence*
        pending work: :meth:`fail_nodes` between submit and drain
        makes the stale tickets drain as ``"error"`` responses instead
        of answering them with plans that map onto dead GPUs.
        """
        name = cluster if cluster is not None else self.route(request)
        return name, self.service(name).submit(request)

    def drain(self, name: str) -> "list[PlanResponse]":
        """Answer every ticket queued on the named cluster."""
        return self.service(name).drain()

    def drain_all(self) -> "dict[str, list[PlanResponse]]":
        """Drain every registered cluster, in registration order.

        Each cluster's drain runs under its own service lock; the
        registry stays open for membership changes and sibling drains
        while one cluster searches.  Returns per-cluster responses
        keyed by cluster name (clusters with empty queues included,
        with empty lists, so callers can account for every cluster).
        """
        return {name: service.drain() for name, service in self._snapshot()}

    def plan_on(self, name: str, model: TransformerConfig,
                global_batch: int, **kwargs) -> RoutedResponse:
        """Build a request bound to the named cluster and answer it."""
        service = self.service(name)
        return RoutedResponse(
            cluster_name=name,
            response=service.plan(service.request(model, global_batch,
                                                  **kwargs)))

    def plan_cheapest(self, model: TransformerConfig, global_batch: int,
                      **kwargs) -> RoutedResponse:
        """The lowest-latency feasible plan across every cluster.

        Each registered cluster answers its own cluster-bound copy of
        the question — independent searches over the shared executor,
        each hitting its own cache on repeats.  Plans that fit memory
        outrank best-effort (``memory_ok=False``) ones; latency ties
        break by *cluster name*, not registration order, so the winner
        is a property of the fleet rather than of the order an
        operator happened to register it in (a restarted registry that
        rebuilds its table in a different order keeps routing the same
        requests to the same cluster).  Clusters with no feasible
        configuration are skipped; if none can serve, the collected
        errors raise.
        """
        services = self._snapshot()
        if not services:
            raise ValueError("no clusters registered")
        candidates: "list[tuple[tuple, RoutedResponse]]" = []
        errors: "list[str]" = []
        for name, service in services:
            try:
                response = service.plan(service.request(model, global_batch,
                                                        **kwargs))
            except (ValueError, RuntimeError) as exc:
                errors.append(f"{name}: {exc}")
                continue
            best = response.best
            if best is None:
                errors.append(f"{name}: no feasible configuration")
                continue
            candidates.append((
                cheapest_rank_key(best, name),
                RoutedResponse(cluster_name=name, response=response)))
        if not candidates:
            raise RuntimeError(
                "no cluster can serve the request: " + "; ".join(errors))
        return min(candidates, key=lambda pair: pair[0])[1]

    # ----------------------------------------------------------- templates

    def template_library(self, name: str):
        """The named cluster's installed template library (or ``None``)."""
        return self.service(name).template_library

    def set_template_library(self, name: str, library) -> None:
        """Install a :class:`~repro.core.templates.TemplateLibrary`."""
        self.service(name).set_template_library(library)

    def warm_templates(self, name: str, model: TransformerConfig,
                       global_batch: int, **kwargs):
        """Warm the named cluster's template library synchronously.

        Passes through to
        :meth:`PlanningService.warm_templates`; background warming
        goes through :class:`repro.service.warmer.TemplateWarmer`
        instead.
        """
        return self.service(name).warm_templates(model, global_batch,
                                                 **kwargs)

    # ------------------------------------------------------------- elastic

    def update_bandwidth(self, name: str, new_bandwidth: BandwidthMatrix,
                         drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
                         ) -> int:
        """Adopt a re-profiled matrix on one cluster only.

        Siblings keep their matrices, epochs, and caches; returns the
        number of plans the named cluster retired.
        """
        return self.service(name).update_bandwidth(
            new_bandwidth, drift_threshold=drift_threshold)

    def fail_nodes(self, name: str, *failed_nodes: int) -> int:
        """Apply a node failure to one cluster only.

        The named service shrinks (:meth:`PlanningService.apply_failure`)
        and retires its plans; every sibling's cache stays intact.
        Returns the number of retired plans.
        """
        return self.service(name).apply_failure(*failed_nodes)

    def compact_stores(self) -> int:
        """Compact every cluster's durable store to its live entries.

        The graceful-drain path calls this after the last request is
        answered: each :class:`~repro.service.store.DurablePlanCache`
        rewrites its log (fsynced, atomically replaced) so a restarted
        worker rehydrates live plans instead of replaying the
        session's churn.  In-memory caches are skipped.  Returns the
        number of stores compacted.
        """
        compacted = 0
        for _, service in self._snapshot():
            compact = getattr(service.cache, "compact_now", None)
            if compact is not None:
                compact()
                compacted += 1
        return compacted

    # ------------------------------------------------------------- metrics

    def attach_metrics(self, metrics) -> None:
        """Export every registered service on a metrics registry.

        Each service attaches under its registered name as the
        ``cluster`` label (:meth:`PlanningService.attach_metrics`);
        services registered *after* this call attach automatically.
        Unregistering a cluster does not retract its series — they
        keep reporting the detached service's last state, matching
        Prometheus' convention that series disappear on restart, not
        mid-flight.

        Args:
            metrics: a :class:`repro.service.metrics.MetricsRegistry`.
        """
        with self._lock:
            self._metrics = metrics
            items = list(self._services.items())
        for name, service in items:
            service.attach_metrics(metrics, name)

    # --------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Per-cluster operational counters, keyed by cluster name."""
        return {name: service.stats
                for name, service in self._snapshot()}

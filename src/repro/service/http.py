"""HTTP/1.1 front end over the planning gateway, stdlib only.

The JSON-lines ``serve`` transport is fine for piping requests from a
script, but production callers — schedulers, dashboards, a Prometheus
scraper — speak HTTP.  :class:`HttpPlanServer` exposes the
:class:`~repro.service.gateway.PlanGateway` over a small, hand-rolled
HTTP/1.1 server (asyncio streams, no web framework, mirroring the
hand-rolled JSON-lines protocol next door in ``__main__``):

====================  =====================================================
Route                 Meaning
====================  =====================================================
``POST /v1/plan``     answer one planning request (same JSON schema as
                      the line protocol, plus ``"detail": true`` for the
                      full result payload)
``POST /v1/events/bandwidth``  adopt a re-profiled matrix on one cluster
``POST /v1/events/failure``    apply a node failure to one cluster
``POST /v1/templates/warm``    fill a cluster's elastic template library
                      (synchronously, or in the background with
                      ``"wait": false``)
``GET /healthz``      liveness, uptime, version, clusters, store paths
``GET /metrics``      Prometheus text exposition of the serving metrics
``GET /v1/debug/traces``        recent trace summaries (ring buffer)
``GET /v1/debug/traces/<id>``   one trace's full span tree
====================  =====================================================

Request/response schemas, curl examples, and the full metrics catalog
live in ``docs/SERVING.md``; the layer diagram in
``docs/ARCHITECTURE.md``.

Design constraints, in order:

* **same answers as the gateway** — ``POST /v1/plan`` goes through
  :func:`answer_payload`, the exact routine the JSON-lines server
  uses, so a plan fetched over HTTP is byte-identical (net of
  stopwatch fields) to a direct :meth:`PlanGateway.plan` call
  (``benchmarks/bench_http.py`` holds the proof);
* **bounded inputs** — request bodies are capped (``413`` beyond
  ``max_body_bytes``), header counts are capped, and chunked bodies
  are refused (``501``) rather than buffered unbounded;
* **errors are answers** — malformed JSON, unknown models, and
  unknown clusters come back as JSON error bodies with proper status
  codes (400/404/405/413/503), never a dropped connection;
* **keep-alive** — HTTP/1.1 connections serve many requests; each
  connection handles its requests sequentially while separate
  connections proceed concurrently through the gateway's lanes.

``client_id`` in a plan payload feeds the gateway's weighted-fair
lanes.  It is transport identity, not plan identity: it never enters
the request fingerprint, so two clients asking the same question
still share one cache entry and one search.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from dataclasses import replace as _replace
from functools import partial

import numpy as np

import repro
from repro.cluster.fabric import BandwidthMatrix
from repro.core import PipetteOptions
from repro.model import get_model
from repro.obs.logs import get_logger
from repro.obs.trace import (
    NULL_SPAN,
    TRACER,
    format_traceparent,
    parse_traceparent,
)
from repro.service.gateway import GatewayOverloadedError, PlanGateway
from repro.service.metrics import MetricsRegistry
from repro.service.registry import cheapest_rank_key
from repro.service.warmer import TemplateWarmer
from repro.units import GIB

__all__ = ["HttpError", "HttpPlanServer", "answer_payload",
           "plan_response_payload", "MAX_BODY_BYTES"]

#: Default request-body cap; a plan request is a few hundred bytes,
#: and even a full bandwidth matrix for a large fleet fits well under
#: this.  Raise per-server via ``max_body_bytes`` if yours does not.
MAX_BODY_BYTES = 1 << 20

_JSON = "application/json; charset=utf-8"

_log = get_logger("service.http")

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


class HttpError(Exception):
    """An HTTP-level failure with a status code and a safe message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


# --------------------------------------------------------------- protocol


async def answer_payload(gateway: PlanGateway, options: PipetteOptions,
                         payload: dict):
    """One decoded request object -> one GatewayResponse (may raise).

    The single request-answering routine shared by every transport
    (JSON lines over stdin/TCP, HTTP): a request pinned to a
    ``"cluster"`` goes to that lane; an unpinned request is fanned
    concurrently over every cluster and answered with the cheapest
    feasible plan (the async twin of
    :meth:`~repro.service.registry.ClusterRegistry.plan_cheapest`,
    same name tie-break).  ``"client_id"`` selects the caller's
    fair-queue lane on every path.
    """
    if "model" not in payload:
        raise ValueError("request needs a 'model' (e.g. \"gpt-1.1b\")")
    model = get_model(str(payload["model"]))
    global_batch = int(payload.get("global_batch", 64))
    client_id = payload.get("client_id")
    if client_id is not None:
        client_id = str(client_id)
    if payload.get("portfolio_k") is not None:
        # Per-request portfolio depth: how many runner-up mappings the
        # plan carries for elastic warm starts.  SAOptions validates
        # the value (>= 1) and raises the 400-mapped ValueError.
        options = _replace(
            options, sa=_replace(options.sa,
                                 portfolio_k=int(payload["portfolio_k"])))
    kwargs: dict = {"options": options}
    if payload.get("micro_batches") is not None:
        kwargs["micro_batches"] = tuple(
            int(m) for m in payload["micro_batches"])
    if payload.get("memory_limit_gib") is not None:
        kwargs["memory_limit_bytes"] = \
            float(payload["memory_limit_gib"]) * GIB
    if payload.get("schedule") is not None:
        # ``"schedule"`` accepts one name or a list of names to sweep;
        # unknown names fail request validation with the registered
        # list in the message.
        raw = payload["schedule"]
        if isinstance(raw, str):
            raw = [raw]
        kwargs["schedules"] = tuple(str(s) for s in raw)
    registry = gateway.registry
    name = payload.get("cluster")
    if name is not None:
        name = str(name)
        request = registry.service(name).request(model, global_batch,
                                                 **kwargs)
        return await gateway.plan(request, cluster=name,
                                  client_id=client_id)
    names = registry.names
    if not names:
        raise ValueError("no clusters registered")
    answers = await asyncio.gather(
        *(gateway.plan(registry.service(n).request(model, global_batch,
                                                   **kwargs),
                       cluster=n, client_id=client_id)
          for n in names),
        return_exceptions=True)
    ranked, errors = [], []
    for n, answer in zip(names, answers):
        if isinstance(answer, BaseException):
            errors.append(f"{n}: {answer}")
        elif answer.best is None:
            errors.append(
                f"{n}: {answer.response.error or 'no feasible configuration'}")
        else:
            ranked.append((cheapest_rank_key(answer.best, n), answer))
    if not ranked:
        raise RuntimeError(
            "no cluster can serve the request: " + "; ".join(errors))
    return min(ranked, key=lambda pair: pair[0])[1]


def plan_response_payload(answer, payload: dict, registry=None) -> dict:
    """The JSON answer body for one GatewayResponse.

    ``elapsed_ms`` is this caller's own submit-to-answer time — a
    coalesced follower must not report its leader's full search time.
    With ``"detail": true`` in the request, the full
    :meth:`~repro.core.configurator.PipetteResult.to_payload` rides
    along under ``"result"``, which is what makes byte-identity
    through the transport testable.  When tracing is on, the answer
    additionally carries its ``trace_id``, and detail responses embed
    the request's own span tree under ``"timing"`` — the per-request
    twin of ``GET /v1/debug/traces/<id>``, rendered while the trace
    may still be open.  With a ``registry``, detail responses also
    report the answering cluster's elastic template library under
    ``"templates"`` (size, covered node counts, and whether the
    current node count is covered), so a scheduler can see at plan
    time whether a failure on this cluster would recover warm.
    """
    out = {"cluster": answer.cluster_name,
           "status": answer.status,
           "elapsed_ms": round(answer.elapsed_s * 1e3, 3)}
    trace_id = getattr(answer, "trace_id", None)
    if trace_id is not None:
        out["trace_id"] = trace_id
    best = answer.best
    if best is None:
        out["status"] = "error"
        out["error"] = answer.response.error or "no feasible configuration"
    else:
        out["config"] = best.config.describe()
        out["schedule"] = best.config.schedule
        out["latency_s"] = best.estimated_latency_s
        if best.estimated_memory_bytes is not None:
            out["memory_gib"] = round(best.estimated_memory_bytes / GIB, 3)
        if payload.get("detail") and answer.result is not None:
            out["result"] = answer.result.to_payload()
            if registry is not None:
                try:
                    service = registry.service(answer.cluster_name)
                except ValueError:
                    service = None
                if service is not None:
                    library = service.template_library
                    covered = [] if library is None else \
                        sorted(library.covered_counts)
                    out["templates"] = {
                        "library_size":
                            0 if library is None else library.size,
                        "covered_counts": covered,
                        "covers_cluster":
                            service.cluster.n_nodes in covered,
                    }
            if trace_id is not None:
                timing = TRACER.trace(trace_id)
                if timing is not None:
                    out["timing"] = timing
    return out


# ----------------------------------------------------------- HTTP parsing


async def _read_request(reader: asyncio.StreamReader, max_body: int):
    """Parse one request off the stream.

    Returns ``(method, path, version, headers, body)`` or ``None`` on
    a clean EOF between requests; raises :class:`HttpError` for
    malformed or over-limit input and lets connection-level failures
    (``IncompleteReadError``, resets) propagate to the caller.
    """
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise HttpError(400, f"unreadable request line ({exc})") from None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(505, f"unsupported protocol {version}")
    headers: "dict[str, str]" = {}
    header_lines = 0
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise HttpError(431, f"unreadable header line ({exc})") from None
        if line in (b"\r\n", b"\n", b""):
            break
        # Count header *lines*, not dict entries: duplicate names
        # overwrite one key, and the cap must bound what a client can
        # make us read, not what we happen to keep.
        header_lines += 1
        if header_lines > 100:
            raise HttpError(431, "too many header fields")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked request bodies are not supported; "
                             "send Content-Length")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "malformed Content-Length") from None
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > max_body:
        raise HttpError(413, f"request body of {length} bytes exceeds "
                             f"the {max_body}-byte limit")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target.split("?", 1)[0], version, headers, body


def _keep_alive(version: str, headers: "dict[str, str]") -> bool:
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        return connection == "keep-alive"
    return connection != "close"


def _write_response(writer: asyncio.StreamWriter, status: int, body: bytes,
                    content_type: str, keep_alive: bool,
                    allow: str | None = None,
                    extra_headers: "dict[str, str] | None" = None) -> None:
    head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    if allow is not None:
        head.append(f"Allow: {allow}")
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)


def _json_body(out: dict) -> bytes:
    return json.dumps(out, sort_keys=True).encode("utf-8")


# ------------------------------------------------------------- the server


class HttpPlanServer:
    """The HTTP front end: routes, dispatch, and HTTP metrics.

    Args:
        gateway: the (already entered) gateway to answer through.
        options: search options applied to every request, like the
            JSON-lines server.
        metrics: registry rendered by ``GET /metrics``; created fresh
            (and then reachable via :attr:`metrics`) when ``None``.
            Pass the registry the gateway and cluster registry are
            attached to, or the page will only show HTTP series.
        max_body_bytes: request-body cap (``413`` beyond it).
        warmers: per-cluster
            :class:`~repro.service.warmer.TemplateWarmer`\\ s backing
            ``POST /v1/templates/warm`` — pass store-backed warmers to
            persist warmed libraries; clusters without one get an
            ephemeral in-memory warmer on first use.

    Instances are handed to :func:`asyncio.start_server` via
    :meth:`handle`; see ``cmd_serve`` in ``repro.service.__main__``
    for the wiring, or ``tests/test_service_http.py`` for a minimal
    in-process setup.
    """

    def __init__(self, gateway: PlanGateway, options: PipetteOptions,
                 metrics: MetricsRegistry | None = None,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 warmers: "dict[str, TemplateWarmer] | None" = None) -> None:
        if max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {max_body_bytes}")
        self.gateway = gateway
        self.options = options
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_body_bytes = int(max_body_bytes)
        self._warmers: "dict[str, TemplateWarmer]" = dict(warmers or {})
        self._started_monotonic = time.monotonic()
        # Live connections (handler task -> writer) and the subset
        # currently serving a request, for graceful drain: idle
        # keep-alive connections can be closed outright, busy ones get
        # to finish their in-flight request first.
        self._connections: "dict[asyncio.Task, asyncio.StreamWriter]" = {}
        self._busy: "set[asyncio.Task]" = set()
        self._draining = False
        self._http_requests = self.metrics.counter(
            "pipette_http_requests_total",
            "HTTP requests served, by method, route, and status code.",
            ("method", "route", "code"))
        self._plans_by_schedule = self.metrics.counter(
            "pipette_plans_by_schedule_total",
            "Plans answered over HTTP, by cluster and the chosen "
            "pipeline schedule.",
            ("cluster", "schedule"))
        self._routes = {
            ("POST", "/v1/plan"): self._plan,
            ("POST", "/v1/events/bandwidth"): self._event_bandwidth,
            ("POST", "/v1/events/failure"): self._event_failure,
            ("POST", "/v1/templates/warm"): self._templates_warm,
            ("GET", "/healthz"): self._healthz,
            ("GET", "/metrics"): self._metrics_page,
            ("GET", "/v1/debug/traces"): self._traces_index,
        }

    # ------------------------------------------------------- connection

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """Serve one client connection (the start_server callback)."""
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = writer
        try:
            while True:
                try:
                    parsed = await _read_request(reader, self.max_body_bytes)
                except HttpError as exc:
                    # The offending request (and any half-read body)
                    # cannot be trusted as a frame boundary: answer
                    # and close instead of resynchronizing.
                    self._count("-", "unmatched", exc.status)
                    _write_response(
                        writer, exc.status,
                        _json_body({"status": "error",
                                    "error": exc.message}),
                        _JSON, keep_alive=False)
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if parsed is None:
                    break
                if task is not None:
                    self._busy.add(task)
                method, path, version, headers, body = parsed
                keep_alive = _keep_alive(version, headers)
                span = self._request_span(method, path, headers)
                token = TRACER.activate(span) if span.recording else None
                t0 = time.monotonic()
                try:
                    status, content_type, out, route, allow = \
                        await self._dispatch(method, path, body)
                    # Logged while the span is still active so the
                    # record carries this request's trace/span ids.
                    _log.debug("request", extra={
                        "method": method, "route": route, "code": status,
                        "duration_ms":
                            round((time.monotonic() - t0) * 1000, 3)})
                finally:
                    if token is not None:
                        TRACER.deactivate(token)
                extra = None
                if span.recording:
                    # The response names *this server's* root span, so
                    # an upstream caller's trace links to our spans.
                    extra = {"traceparent": format_traceparent(span)}
                    span.set_attribute("status", status)
                span.end()
                self._count(method, route, status)
                # A draining server answers what it already accepted
                # but refuses to keep the connection for more.
                keep_alive = keep_alive and not self._draining
                _write_response(writer, status, out, content_type,
                                keep_alive, allow=allow,
                                extra_headers=extra)
                await writer.drain()
                if task is not None:
                    self._busy.discard(task)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # client went away; nothing left to answer
        finally:
            if task is not None:
                self._busy.discard(task)
                self._connections.pop(task, None)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def drain(self, poll_s: float = 0.05) -> None:
        """Finish in-flight requests, then close every connection.

        The graceful-shutdown half of the server (the caller closes
        the listener first, so no *new* connections arrive): in-flight
        requests run to completion and get complete responses (with
        ``Connection: close``), while idle keep-alive connections are
        closed outright — a client parked between requests must not
        hold the shutdown hostage.  Returns once no connection is
        left; bound it with :func:`asyncio.wait_for` to force exit.
        """
        self._draining = True
        while self._connections:
            for conn_task, conn_writer in list(self._connections.items()):
                if conn_task not in self._busy:
                    conn_writer.close()
            await asyncio.wait(set(self._connections), timeout=poll_s)

    def _count(self, method: str, route: str, status: int) -> None:
        self._http_requests.labels(method=method, route=route,
                                   code=str(status)).inc()

    #: Paths whose requests are never traced: scrapes and debug reads
    #: would bury the plan traces they exist to observe.
    _UNTRACED = ("/metrics", "/healthz", "/v1/debug")

    def _request_span(self, method: str, path: str,
                      headers: "dict[str, str]"):
        """The root span of one request (or the null span).

        Honors an incoming W3C ``traceparent`` header, so this
        request's spans join the remote caller's trace instead of
        starting a fresh one.
        """
        if not TRACER.enabled \
                or any(path.startswith(p) for p in self._UNTRACED):
            return NULL_SPAN
        remote = None
        header = headers.get("traceparent")
        if header is not None:
            remote = parse_traceparent(header)
        return TRACER.start_span("http.request", remote=remote,
                                 method=method, path=path)

    async def _dispatch(self, method: str, path: str, body: bytes):
        """Route one request -> (status, content type, body, route, allow).

        The ``route`` element is the matched route template (or
        ``"unmatched"``) so the HTTP counter's label cardinality stays
        bounded no matter what paths clients probe — the per-trace
        debug route counts under one ``/v1/debug/traces/{id}``
        template, never per trace id.
        """
        if path.startswith("/v1/debug/traces/"):
            trace_id = path[len("/v1/debug/traces/"):]
            route = "/v1/debug/traces/{id}"
            if method != "GET":
                return (405, _JSON,
                        _json_body({"status": "error",
                                    "error": f"{method} is not allowed on "
                                             f"{path}"}),
                        route, "GET")
            status, content_type, out = self._trace_detail(trace_id)
            return status, content_type, out, route, None
        handler = self._routes.get((method, path))
        if handler is None:
            allowed = sorted(m for m, p in self._routes if p == path)
            if allowed:
                return (405, _JSON,
                        _json_body({"status": "error",
                                    "error": f"{method} is not allowed on "
                                             f"{path}"}),
                        path, ", ".join(allowed))
            return (404, _JSON,
                    _json_body({"status": "error",
                                "error": f"unknown route {path}; serving "
                                         "/v1/plan, /v1/events/bandwidth, "
                                         "/v1/events/failure, "
                                         "/v1/templates/warm, /healthz, "
                                         "/metrics, /v1/debug/traces"}),
                    "unmatched", None)
        try:
            status, content_type, out = await handler(body)
        except HttpError as exc:
            status, content_type, out = exc.status, _JSON, _json_body(
                {"status": "error", "error": exc.message})
        except GatewayOverloadedError as exc:
            status, content_type, out = 503, _JSON, _json_body(
                {"status": "error", "error": str(exc)})
        except (ValueError, TypeError, KeyError, RuntimeError,
                json.JSONDecodeError) as exc:
            # Bad operands (unknown model/cluster, wrongly-typed
            # fields, no feasible cluster) are the caller's problem.
            status, content_type, out = 400, _JSON, _json_body(
                {"status": "error", "error": str(exc)})
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — the 500 boundary
            status, content_type, out = 500, _JSON, _json_body(
                {"status": "error",
                 "error": f"internal error: {exc}"})
        return status, content_type, out, path, None

    def _json_payload(self, body: bytes) -> dict:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"request body is not JSON: {exc}") \
                from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    # ----------------------------------------------------------- routes

    async def _plan(self, body: bytes):
        payload = self._json_payload(body)
        answer = await answer_payload(self.gateway, self.options, payload)
        out = plan_response_payload(answer, payload,
                                    registry=self.gateway.registry)
        if answer.best is not None:
            self._plans_by_schedule.labels(
                cluster=answer.cluster_name,
                schedule=answer.best.config.schedule).inc()
        if "id" in payload:
            out["id"] = payload["id"]
        return 200, _JSON, _json_body(out)

    async def _event_bandwidth(self, body: bytes):
        payload = self._json_payload(body)
        name = self._cluster_name(payload)
        service = self.gateway.registry.service(name)
        if "matrix" in payload:
            matrix = np.asarray(payload["matrix"], dtype=float)
            alpha = np.asarray(payload["alpha"], dtype=float) \
                if "alpha" in payload else service.bandwidth.alpha.copy()
            new = BandwidthMatrix(matrix=matrix, alpha=alpha)
        elif "scale" in payload:
            factor = float(payload["scale"])
            if not factor > 0:
                raise HttpError(400, f"scale must be positive, got {factor}")
            matrix = service.bandwidth.matrix.copy()
            finite = np.isfinite(matrix)
            matrix[finite] *= factor
            new = BandwidthMatrix(matrix=matrix,
                                  alpha=service.bandwidth.alpha.copy())
        else:
            raise HttpError(400, "bandwidth event needs a full 'matrix' "
                                 "(GB/s, Inf diagonal) or a 'scale' factor")
        kwargs = {}
        if payload.get("drift_threshold") is not None:
            kwargs["drift_threshold"] = float(payload["drift_threshold"])
        epoch_before = service.bandwidth_fp
        retired = await self.gateway.update_bandwidth(name, new, **kwargs)
        # Adoption is an epoch roll, nothing else: a sub-threshold
        # re-profile is discarded as measurement wiggle (retired == 0
        # AND the fingerprint stayed put), while an adopted matrix
        # over an empty cache also retires nothing but *does* roll.
        return 200, _JSON, _json_body(
            {"cluster": name, "retired": retired,
             "adopted": service.bandwidth_fp != epoch_before,
             "epoch": service.bandwidth_fp})

    async def _event_failure(self, body: bytes):
        payload = self._json_payload(body)
        name = self._cluster_name(payload)
        nodes = payload.get("nodes")
        if nodes is None:
            raise HttpError(400, "failure event needs 'nodes' "
                                 "(a node index or list of them)")
        if isinstance(nodes, (int, float)):
            nodes = [nodes]
        failed = [int(n) for n in nodes]
        retired = await self.gateway.fail_nodes(name, *failed)
        service = self.gateway.registry.service(name)
        return 200, _JSON, _json_body(
            {"cluster": name, "failed_nodes": failed, "retired": retired,
             "surviving_nodes": service.cluster.n_nodes,
             "epoch": service.bandwidth_fp})

    async def _templates_warm(self, body: bytes):
        """Fill one cluster's elastic template library.

        Synchronous by default: the request returns once the library
        is generated, installed, and (with a store-backed warmer)
        persisted — generation runs on an executor thread, so the
        event loop keeps serving plans meanwhile.  ``"wait": false``
        instead kicks the cluster's background
        :class:`~repro.service.warmer.TemplateWarmer` and answers
        ``202`` immediately; a second warm-up while one is in flight
        answers ``400`` (the warmer refuses to race two generations).
        """
        payload = self._json_payload(body)
        name = self._cluster_name(payload)
        service = self.gateway.registry.service(name)
        if "model" not in payload:
            raise HttpError(400, "template warm-up needs a 'model' "
                                 "(e.g. \"gpt-1.1b\")")
        model = get_model(str(payload["model"]))
        global_batch = int(payload.get("global_batch", 64))
        kwargs: dict = {"options": self.options}
        if payload.get("min_nodes") is not None:
            kwargs["min_nodes"] = int(payload["min_nodes"])
        if payload.get("max_nodes") is not None:
            kwargs["max_nodes"] = int(payload["max_nodes"])
        if payload.get("memory_limit_gib") is not None:
            kwargs["memory_limit_bytes"] = \
                float(payload["memory_limit_gib"]) * GIB
        if payload.get("micro_batches") is not None:
            kwargs["micro_batches"] = tuple(
                int(m) for m in payload["micro_batches"])
        if payload.get("schedule") is not None:
            raw = payload["schedule"]
            if isinstance(raw, str):
                raw = [raw]
            kwargs["schedules"] = tuple(str(s) for s in raw)
        if payload.get("templates_per_count") is not None:
            kwargs["templates_per_count"] = \
                int(payload["templates_per_count"])
        warmer = self._warmers.get(name)
        if warmer is None:
            warmer = TemplateWarmer(service)
            self._warmers[name] = warmer
        if not payload.get("wait", True):
            warmer.start(model, global_batch, **kwargs)
            return 202, _JSON, _json_body(
                {"cluster": name, "status": "warming",
                 "model": model.name, "global_batch": global_batch})
        t0 = time.monotonic()
        library = await asyncio.get_running_loop().run_in_executor(
            None, partial(warmer.warm, model, global_batch, **kwargs))
        return 200, _JSON, _json_body(
            {"cluster": name, "status": "ok",
             "model": library.model_name,
             "global_batch": library.global_batch,
             "templates": library.size,
             "covered_counts": sorted(library.covered_counts),
             "infeasible": {str(n): reason for n, reason
                            in sorted(library.infeasible.items())},
             "elapsed_ms": round((time.monotonic() - t0) * 1000, 3)})

    def _cluster_name(self, payload: dict) -> str:
        name = payload.get("cluster")
        if name is None:
            raise HttpError(400, "event needs a 'cluster' name")
        return str(name)

    async def _healthz(self, body: bytes):
        # A liveness probe must answer while every executor thread is
        # deep in a cache-miss search: nothing here may take a lock a
        # drain holds across searches (the template-library read is
        # lock-free for exactly this reason; the stats snapshot and
        # store-path reads hold only briefly-held locks).
        counters = self.gateway.stats.snapshot()
        stores = {}
        templates = {}
        for name in self.gateway.registry.names:
            service = self.gateway.registry.service(name)
            store = getattr(service.cache, "store", None)
            stores[name] = str(store.path) if store is not None else None
            library = service.template_library
            templates[name] = 0 if library is None else library.size
        return 200, _JSON, _json_body(
            {"status": "draining" if self._draining else "ok",
             "version": repro.__version__,
             "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
             "clusters": self.gateway.registry.names,
             "stores": stores,
             "templates": templates,
             "tracing": TRACER.enabled,
             "submitted": counters["submitted"],
             "coalesced": counters["coalesced"],
             "rejected": counters["rejected"]})

    async def _metrics_page(self, body: bytes):
        return (200, MetricsRegistry.CONTENT_TYPE,
                self.metrics.render().encode("utf-8"))

    async def _traces_index(self, body: bytes):
        return 200, _JSON, _json_body(
            {"enabled": TRACER.enabled, "traces": TRACER.traces()})

    def _trace_detail(self, trace_id: str):
        tree = TRACER.trace(trace_id)
        if tree is None:
            return (404, _JSON,
                    _json_body({"status": "error",
                                "error": f"no trace {trace_id!r}; see "
                                         "GET /v1/debug/traces for the "
                                         "retained ids"}))
        return 200, _JSON, _json_body(tree)

"""Durable plan persistence: the plan cache, surviving restarts.

Pipette's value is amortizing expensive Algorithm-1 searches across a
long training campaign, but an in-memory :class:`~repro.service.cache.PlanCache`
forgets everything the moment the planner process dies.  This module
keeps the cache mirrored on disk:

* :class:`PlanStore` — an append-only JSON-lines log of cache
  mutations (``put`` / ``drop`` / ``clear`` records under a versioned
  header), using the ``to_payload``/``from_payload`` serialization of
  :class:`~repro.core.configurator.PipetteResult`.  Appends are
  flushed and fsynced, so a killed process loses at most the record
  being written; a torn final line is tolerated at load.
* :class:`DurablePlanCache` — a :class:`~repro.service.cache.PlanCache`
  that rehydrates from a store at construction (bandwidth-epoch
  fingerprints intact, so stale-epoch invalidation keeps working
  across restarts) and mirrors every later mutation back through the
  cache's ``_record_*`` hooks.  Rehydration compacts the log down to
  the live entries, and sustained churn compacts it *online* once the
  appended records outnumber the live set by ``compact_factor``.
* :class:`TemplateStore` — the elastic template library
  (:class:`~repro.core.templates.TemplateLibrary`) as one atomically
  replaced canonical-JSON document next to the plan log.

The store is single-writer: one planning service owns one path,
enforced by an advisory ``fcntl`` lock held across every append and
compaction (:class:`PlanStoreLockedError` when contended).  A
restarted service built over the same path answers every request it
had already planned as a cache ``"hit"`` with the identical plan —
see ``benchmarks/bench_store_restart.py`` for the proof.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

try:
    import fcntl
except ImportError:  # non-POSIX host: no advisory locking available
    fcntl = None

from repro.core.configurator import PipetteResult
from repro.service.cache import CacheStats, PlanCache

#: On-disk schema version.  Bump on any record-shape change; readers
#: refuse logs written by a schema they do not understand.
SCHEMA_VERSION = 1


class PlanStoreError(RuntimeError):
    """The on-disk plan log is unreadable or from another schema."""


class PlanStoreLockedError(PlanStoreError):
    """Another process holds the store's advisory write lock."""


class PlanStore:
    """Append-only JSON-lines log mirroring one plan cache.

    Args:
        path: log file location; parent directories are created.  A
            missing file is an empty store.
        lock_timeout_s: how long a writer waits for the advisory
            cross-process lock before giving up with
            :class:`PlanStoreLockedError`.

    Records are one JSON object per line.  The first line is a header
    stamping :data:`SCHEMA_VERSION`; after it come ``put`` records
    (key, bandwidth fingerprint, and the full
    :meth:`~repro.core.configurator.PipetteResult.to_payload` payload),
    ``drop`` records (eviction/staleness/invalidation tombstones), and
    ``clear`` records (the cache was emptied, e.g. by a node failure).

    The log is **single-writer**, and that is now enforced rather than
    assumed: every append and compaction holds an advisory ``fcntl``
    lock on a ``<path>.lock`` sidecar, so two planner processes
    pointed at the same path fail fast with a clear
    :class:`PlanStoreLockedError` instead of interleaving half-written
    JSON lines into each other's log.  (On hosts without ``fcntl`` the
    guard degrades to the old honor system.)
    """

    def __init__(self, path: "str | os.PathLike[str]",
                 lock_timeout_s: float = 5.0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.lock_timeout_s = float(lock_timeout_s)
        self._lock_path = self.path.with_name(self.path.name + ".lock")
        self._lock_depth = 0

    # ------------------------------------------------------------- locking

    @contextmanager
    def lock(self):
        """Hold the store's cross-process advisory lock.

        Reentrant within one store instance, so a caller can pin the
        lock across a compound ``load`` + ``compact`` sequence (as
        :class:`DurablePlanCache` does at rehydration) without
        deadlocking the individual operations' own acquisitions.
        Raises :class:`PlanStoreLockedError` — a message, not a
        traceback's worth of mystery — when another process still
        holds the lock after ``lock_timeout_s``.
        """
        if fcntl is None or self._lock_depth > 0:
            self._lock_depth += 1
            try:
                yield
            finally:
                self._lock_depth -= 1
            return
        fh = open(self._lock_path, "a+b")
        deadline = time.monotonic() + self.lock_timeout_s
        while True:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    fh.close()
                    raise PlanStoreLockedError(
                        f"{self.path}: another process holds the plan-store "
                        f"lock ({self._lock_path}); plan stores are "
                        "single-writer — give each planner its own "
                        "--store-path, or retry once the other writer exits"
                    ) from None
                time.sleep(0.02)
        self._lock_depth = 1
        try:
            yield
        finally:
            self._lock_depth = 0
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            fh.close()

    # ------------------------------------------------------------- writing

    @staticmethod
    def _header_bytes() -> bytes:
        return (json.dumps({"kind": "header",
                            "schema": SCHEMA_VERSION}) + "\n").encode("utf-8")

    def _repair_torn_tail(self, fh) -> None:
        """Truncate a torn (newline-less) final line before appending.

        A writer that died mid-record leaves a partial last line; that
        record was never acknowledged (the fsync happens after the full
        line), so discarding it is safe — and appending *onto* it would
        merge an acknowledged record into the fragment, losing it.
        """
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size == 0:
            fh.write(self._header_bytes())
            return
        fh.seek(size - 1)
        if fh.read(1) == b"\n":
            return
        fh.seek(0)
        keep = fh.read().rfind(b"\n") + 1
        fh.truncate(keep)
        fh.seek(0, os.SEEK_END)
        if keep == 0:  # even the header was torn; this is a fresh log
            fh.write(self._header_bytes())

    def _append(self, records: "list[dict]") -> None:
        """Durably append ``records`` in one open + one fsync."""
        if not records:
            return
        with self.lock():
            try:
                fh = open(self.path, "r+b")
            except FileNotFoundError:
                fh = open(self.path, "x+b")
            with fh:
                self._repair_torn_tail(fh)
                fh.write(b"".join(
                    (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
                    for record in records))
                fh.flush()
                os.fsync(fh.fileno())

    def record_put(self, key: str, bandwidth_fp: str,
                   result: PipetteResult) -> None:
        """Log that ``key`` now holds ``result`` for one epoch."""
        self._append([{"kind": "put", "key": key,
                       "bandwidth_fp": bandwidth_fp,
                       "result": result.to_payload()}])

    def record_drop(self, key: str) -> None:
        """Log that ``key`` was retired (eviction, staleness, ...)."""
        self._append([{"kind": "drop", "key": key}])

    def record_drops(self, keys) -> None:
        """Log a batch of retirements under a single fsync.

        Epoch invalidation can retire a full cache at once; paying one
        sync for the batch instead of one per key keeps
        ``update_bandwidth`` from stalling on the log.
        """
        self._append([{"kind": "drop", "key": key} for key in keys])

    def record_clear(self) -> None:
        """Log that the cache was emptied."""
        self._append([{"kind": "clear"}])

    # ------------------------------------------------------------- reading

    def load(self) -> "OrderedDict[str, tuple[str, PipetteResult]]":
        """Replay the log into ``key -> (bandwidth_fp, result)`` rows.

        Rows come back in last-written order (a re-``put`` key moves to
        the end), which seeds the rehydrated cache's LRU order.  A torn
        final line — the record a killed process was writing — is
        ignored; corruption anywhere else raises :class:`PlanStoreError`.
        """
        if not self.path.exists():
            return OrderedDict()
        lines = self.path.read_text(encoding="utf-8").splitlines()
        rows: "OrderedDict[str, tuple[str, PipetteResult]]" = OrderedDict()
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines) - 1:
                    break  # torn final write; everything before it holds
                raise PlanStoreError(
                    f"{self.path}:{lineno + 1}: corrupt record ({exc})"
                ) from exc
            if not isinstance(record, dict):
                # Valid JSON but not a record object (a stray number,
                # string, or list — e.g. the wrong file entirely):
                # ``record.get`` below would crash with AttributeError
                # instead of the schema error callers catch.
                raise PlanStoreError(
                    f"{self.path}:{lineno + 1}: not a plan-store record "
                    f"({type(record).__name__} instead of an object)"
                )
            kind = record.get("kind")
            if lineno == 0:
                if kind != "header":
                    raise PlanStoreError(
                        f"{self.path}: not a plan store (missing header)"
                    )
                if record.get("schema") != SCHEMA_VERSION:
                    raise PlanStoreError(
                        f"{self.path}: schema {record.get('schema')!r} is "
                        f"not the supported {SCHEMA_VERSION}"
                    )
                continue
            if kind == "put":
                try:
                    result = PipetteResult.from_payload(record["result"])
                except (KeyError, ValueError, TypeError) as exc:
                    raise PlanStoreError(
                        f"{self.path}:{lineno + 1}: bad plan payload ({exc})"
                    ) from exc
                rows.pop(record["key"], None)
                rows[record["key"]] = (record["bandwidth_fp"], result)
            elif kind == "drop":
                rows.pop(record["key"], None)
            elif kind == "clear":
                rows.clear()
            else:
                raise PlanStoreError(
                    f"{self.path}:{lineno + 1}: unknown record kind {kind!r}"
                )
        return rows

    def compact(self, entries) -> None:
        """Atomically rewrite the log to exactly ``entries``.

        ``entries`` is ``(key, bandwidth_fp, result)`` rows, typically
        :meth:`~repro.service.cache.PlanCache.entries` — the tombstones
        and overwrites of the append log collapse into one ``put`` per
        live plan.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        with self.lock():
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps({"kind": "header",
                                     "schema": SCHEMA_VERSION}) + "\n")
                for key, bandwidth_fp, result in entries:
                    fh.write(json.dumps(
                        {"kind": "put", "key": key,
                         "bandwidth_fp": bandwidth_fp,
                         "result": result.to_payload()},
                        sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)


class DurablePlanCache(PlanCache):
    """A plan cache mirrored onto a :class:`PlanStore`.

    Args:
        store: the backing log (or a path, for convenience).
        max_entries: LRU capacity bound, as in :class:`PlanCache`;
            also applied while rehydrating, so an over-full log is
            trimmed to the newest entries.
        compact_min: fewest appended records before an online
            compaction is considered (keeps short-lived processes from
            rewriting the log over and over).
        compact_factor: online compaction triggers once the records
            appended since the last rewrite exceed
            ``max(compact_min, compact_factor * live entries)`` — the
            log then holds mostly tombstones and overwrites, and one
            rewrite is cheaper than replaying the churn at the next
            restart.

    Construction replays the log (``rehydrated`` reports how many
    plans came back), compacts it, and from then on every ``put``,
    eviction, stale drop, epoch invalidation, and ``clear`` is
    persisted before the mutating call returns.  A long-running
    process no longer grows the log without bound: churn past the
    compaction threshold rewrites it online (``compactions`` counts
    the rewrites), under the same cross-process lock as every append.
    Cache *stats* restart at zero — they describe this process's
    lifetime, not the store's.
    """

    def __init__(self, store: "PlanStore | str | os.PathLike[str]",
                 max_entries: int = 128, compact_min: int = 64,
                 compact_factor: int = 4) -> None:
        super().__init__(max_entries=max_entries)
        if compact_min < 1:
            raise ValueError(f"compact_min must be >= 1, got {compact_min}")
        if compact_factor < 1:
            raise ValueError(
                f"compact_factor must be >= 1, got {compact_factor}")
        if not isinstance(store, PlanStore):
            store = PlanStore(store)
        self._backend: PlanStore | None = None  # silence hooks on replay
        self._compact_min = int(compact_min)
        self._compact_factor = int(compact_factor)
        self._appends_since_compact = 0
        self.compactions = 0
        # One lock hold across replay + compaction: a second writer
        # squeezing an append between our load and our rewrite would
        # have its acknowledged record silently erased by the compact.
        with store.lock():
            for key, (bandwidth_fp, result) in store.load().items():
                self.put(key, bandwidth_fp, result)
            self.rehydrated = len(self)
            self.stats = CacheStats()
            store.compact(self.entries())
        self._backend = store

    @property
    def store(self) -> PlanStore:
        """The backing log."""
        assert self._backend is not None
        return self._backend

    def compact_now(self) -> None:
        """Rewrite the log to the live entries immediately.

        The graceful-drain path calls this at shutdown so a restarted
        worker replays live plans, not the session's churn.
        """
        if self._backend is not None:
            self._backend.compact(self.entries())
            self._appends_since_compact = 0
            self.compactions += 1

    def _bump_appends(self, n: int) -> None:
        # Hooks fire under the cache lock, so the counter and the
        # compaction decision cannot race other mutators.
        self._appends_since_compact += n
        threshold = max(self._compact_min,
                        self._compact_factor * max(1, len(self)))
        if self._appends_since_compact > threshold:
            self.compact_now()

    # ------------------------------------------------- persistence hooks

    def _record_put(self, key: str, bandwidth_fp: str,
                    result: PipetteResult) -> None:
        if self._backend is not None:
            self._backend.record_put(key, bandwidth_fp, result)
            self._bump_appends(1)

    def _record_drop(self, key: str) -> None:
        if self._backend is not None:
            self._backend.record_drop(key)
            self._bump_appends(1)

    def _record_drops(self, keys: "list[str]") -> None:
        if self._backend is not None:
            self._backend.record_drops(keys)
            self._bump_appends(len(keys))

    def _record_clear(self) -> None:
        if self._backend is not None:
            self._backend.record_clear()
            self._bump_appends(1)


class TemplateStore:
    """Durable home of one cluster's elastic template library.

    The library is a single versioned document, not a mutation log, so
    it persists as one canonical-JSON file written atomically (tmp +
    ``os.replace``, same idiom as :meth:`PlanStore.compact`) alongside
    the plan store — conventionally ``<plans>.templates.json`` next to
    ``<plans>.jsonl``.  :meth:`save` round-trips byte-identically with
    :meth:`load` via :meth:`~repro.core.templates.TemplateLibrary.to_json`.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        """Whether a persisted library is present."""
        return self.path.exists()

    def save(self, library) -> None:
        """Atomically persist ``library`` (a ``TemplateLibrary``)."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(library.to_json())
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def load(self):
        """Rehydrate the persisted library, or ``None`` when absent.

        Raises :class:`PlanStoreError` on unreadable content or an
        unknown payload version, mirroring the plan log's
        refuse-don't-guess contract.
        """
        from repro.core.templates import TemplateLibrary
        if not self.path.exists():
            return None
        text = self.path.read_text(encoding="utf-8")
        try:
            return TemplateLibrary.from_json(text)
        except (ValueError, KeyError, TypeError) as exc:
            raise PlanStoreError(
                f"unreadable template library at {self.path}: {exc}"
            ) from exc

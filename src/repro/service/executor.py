"""Parallel candidate evaluation over ``concurrent.futures`` pools.

Algorithm 1's cost is dominated by embarrassingly parallel
per-candidate work: one memory-estimator forward pass per enumerated
configuration, one latency evaluation per survivor, and one simulated
annealing run per leader.  The configurator factors that work into
pure, picklable units (:mod:`repro.core.configurator`); this module
supplies the pool that fans the units out.  Inside each refinement
unit the annealer runs against a compiled
:class:`~repro.core.latency_kernel.LatencyKernel`, so the pool
multiplies an already-vectorized per-candidate hot loop.

Determinism is preserved by construction — every unit's outcome is a
pure function of ``(context, chunk)`` with per-candidate seeds baked
into the chunk — so a search run through a
:class:`CandidateExecutor` returns *identical* results to the serial
search, just faster on a multi-core planner host.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace


def available_workers() -> int:
    """Usable CPU count of this host (affinity-aware when possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@dataclass
class ExecutorStats:
    """Work accounting of one :class:`CandidateExecutor`.

    Attributes:
        batches: ``map`` calls served.
        tasks: work-unit payloads dispatched across all batches.
    """

    batches: int = 0
    tasks: int = 0


class CandidateExecutor:
    """A reusable pool that maps work units over candidate chunks.

    Args:
        max_workers: pool width; defaults to the usable CPU count.
        kind: ``"process"`` (true parallelism; work units and contexts
            cross the process boundary pickled), ``"thread"`` (no
            pickling; parallel only insofar as numpy releases the GIL),
            or ``"serial"`` (inline execution — useful to A/B the pool
            itself).  ``"auto"`` picks processes when more than one CPU
            is usable, threads otherwise.

    The underlying pool is created lazily on first use and reused
    across searches — a planning service keeps one executor for its
    lifetime, so candidate evaluation pays pool start-up once, not per
    request.  Use as a context manager or call :meth:`close` to
    release the workers.
    """

    def __init__(self, max_workers: int | None = None,
                 kind: str = "auto") -> None:
        if kind not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown executor kind {kind!r}")
        if kind == "auto":
            kind = "process" if available_workers() > 1 else "thread"
        self.kind = kind
        self.n_workers = int(max_workers) if max_workers is not None \
            else available_workers()
        if self.n_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.stats = ExecutorStats()
        self._pool: Executor | None = None
        # One executor is shared by every cluster's searches; lazy pool
        # creation, stat bumps, and shutdown race when the gateway
        # drains clusters concurrently, so they synchronize here.  The
        # pool's own ``map`` is safe for concurrent callers.
        self._lock = threading.Lock()

    # ----------------------------------------------------------- pool plumbing

    def _ensure_pool(self) -> Executor | None:
        if self.kind == "serial":
            return None
        with self._lock:
            if self._pool is None:
                if self.kind == "process":
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.n_workers)
                else:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.n_workers)
            return self._pool

    def map(self, fn, payloads) -> list:
        """Run ``fn`` over ``payloads``, preserving order.

        The work-unit contract of :func:`repro.core.configurator.run_units`:
        ``fn`` is a module-level pure function and each payload is one
        picklable ``(context, chunk)`` tuple.
        """
        payloads = list(payloads)
        with self._lock:
            self.stats.batches += 1
            self.stats.tasks += len(payloads)
        pool = self._ensure_pool()
        if pool is None:
            return [fn(p) for p in payloads]
        return list(pool.map(fn, payloads))

    def stats_snapshot(self) -> ExecutorStats:
        """An atomically-consistent copy of :attr:`stats`.

        ``map`` bumps both counters under the executor lock from
        whichever drain thread is searching; readers that report the
        pair together (service stats, ``/metrics``) copy them under
        the same lock so the two can never be from different moments.
        """
        with self._lock:
            return replace(self.stats)

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "CandidateExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"CandidateExecutor(kind={self.kind!r}, "
                f"n_workers={self.n_workers})")

"""Canonical request fingerprinting and the LRU plan cache.

A production planner answers the same question many times: the same
model on the same cluster at the same batch size, asked by every job
of a training campaign.  Re-running Algorithm 1 for each request wastes
minutes of search; the service instead keys each request by a *stable
content hash* of everything that determines the answer and serves
repeats from an LRU store.

Cached plans are only as fresh as the bandwidth matrix they were
searched against, so every entry records the matrix fingerprint
(:meth:`repro.cluster.fabric.BandwidthMatrix.fingerprint`) of its
epoch.  A re-profiled fabric that drifted (Fig. 3) or lost a node gets
a new fingerprint, and lookups against the new epoch retire the stale
entries instead of returning them.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, fields, is_dataclass, replace

from repro.cluster.topology import ClusterSpec
from repro.core.configurator import PipetteOptions, PipetteResult
from repro.model.transformer import TransformerConfig


def canonical_value(obj):
    """Recursively reduce ``obj`` to JSON-serializable primitives.

    Dataclasses become ``{class name, field values}`` mappings (fields
    excluded from comparison, like :attr:`ClusterSpec.description`,
    are skipped — cosmetic text must not split cache keys); tuples and
    lists become lists.  The reduction is deliberately type-tagged so
    two different dataclasses with equal field values never collide.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        payload = {"__class__": type(obj).__name__}
        for f in fields(obj):
            if not f.compare:
                continue
            payload[f.name] = canonical_value(getattr(obj, f.name))
        return payload
    if isinstance(obj, (list, tuple)):
        return [canonical_value(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


@dataclass(frozen=True)
class PlanRequest:
    """One planning question, in canonical, hashable form.

    Attributes:
        cluster: the nominal cluster to plan for.
        model: architecture to train.
        global_batch: ``bs_global``.
        memory_limit_bytes: ``M_limit``; ``None`` uses the cluster
            GPU's physical memory.
        micro_batches: optional restriction of the swept microbatch
            sizes; normalized to a sorted, deduplicated tuple so
            ``[4, 2, 2]`` and ``(2, 4)`` produce one cache entry (and
            one enumeration of each configuration).
        options: search behaviour (annealing budget, top-k, seed, ...).
        schedules: optional pipeline-schedule names to sweep as an
            extra search dimension; normalized like ``micro_batches``
            (sorted, deduplicated) and validated against the schedule
            registry.  ``None`` sweeps 1F1B only — the paper's
            assumption and the pre-schedule behaviour.
    """

    cluster: ClusterSpec
    model: TransformerConfig
    global_batch: int
    memory_limit_bytes: float | None = None
    micro_batches: "tuple[int, ...] | None" = None
    options: PipetteOptions = field(default_factory=PipetteOptions)
    schedules: "tuple[str, ...] | None" = None

    def __post_init__(self) -> None:
        if self.global_batch < 1:
            raise ValueError(f"global_batch must be >= 1, got {self.global_batch}")
        if self.memory_limit_bytes is not None \
                and not self.memory_limit_bytes > 0:  # NaN fails this too
            raise ValueError(
                f"memory_limit_bytes must be positive, got "
                f"{self.memory_limit_bytes}"
            )
        if self.micro_batches is not None:
            normalized = tuple(sorted({int(m) for m in self.micro_batches}))
            if not normalized:
                raise ValueError(
                    "micro_batches must not be empty; pass None to sweep "
                    "the default sizes"
                )
            if normalized[0] < 1:
                raise ValueError(
                    f"micro_batches entries must be >= 1, got "
                    f"{normalized[0]}"
                )
            object.__setattr__(self, "micro_batches", normalized)
        if self.schedules is not None:
            schedules = tuple(sorted({str(s) for s in self.schedules}))
            if not schedules:
                raise ValueError(
                    "schedules must not be empty; pass None to sweep the "
                    "default 1F1B schedule"
                )
            # Reject unknown names at request time — a typo must fail
            # the request, not a worker deep inside the search.
            from repro.sim.schedule import schedule_type

            for name in schedules:
                schedule_type(name)
            object.__setattr__(self, "schedules", schedules)

    def fingerprint(self) -> str:
        """Stable content hash identifying this request.

        Two requests with equal search-relevant content hash equally on
        every platform and process (the JSON rendering is key-sorted);
        the bandwidth epoch is deliberately *not* part of the hash —
        the cache tracks it per entry so a drifted fabric invalidates
        rather than silently forks the key space.
        """
        payload = json.dumps(canonical_value(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`PlanCache`.

    Attributes:
        hits: lookups served from the store.
        misses: lookups that found nothing (including never-seen keys).
        stale_drops: entries retired because their bandwidth epoch no
            longer matched the lookup's.
        evictions: entries displaced by the LRU capacity bound.
    """

    hits: int = 0
    misses: int = 0
    stale_drops: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups answered."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    """One cached plan and the bandwidth epoch it was searched under."""

    bandwidth_fp: str
    result: PipetteResult


class PlanCache:
    """LRU store of finished plans, keyed by request fingerprint.

    Args:
        max_entries: capacity bound; least-recently-used plans are
            evicted beyond it.

    Every mutation flows through the ``_record_*`` hooks, which are
    no-ops here; :class:`repro.service.store.DurablePlanCache`
    overrides them to mirror the cache onto disk.

    The cache is safe for concurrent callers: every public method
    holds one reentrant lock, so the gateway's per-cluster drain
    threads (and an elastic event racing them) see the store, the LRU
    order, and the stats move atomically.  Hooks fire while the lock
    is held, which also serializes a durable cache's log appends.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._store: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._store

    def entries(self) -> "list[tuple[str, str, PipetteResult]]":
        """All live ``(key, bandwidth_fp, result)`` rows, LRU first."""
        with self._lock:
            return [(key, entry.bandwidth_fp, entry.result)
                    for key, entry in self._store.items()]

    def stats_snapshot(self) -> CacheStats:
        """An atomically-consistent copy of :attr:`stats`.

        The live :class:`CacheStats` moves under the cache lock (drain
        threads bump it mid-lookup) while ``/metrics`` scrapes and
        service stats reports read it from other threads; copying the
        fields *under the lock* is what keeps a multi-field read —
        hits plus misses, a hit rate — from tearing across a
        concurrent mutation.
        """
        with self._lock:
            return replace(self.stats)

    def get(self, key: str, bandwidth_fp: str) -> PipetteResult | None:
        """The cached plan for ``key`` in the current bandwidth epoch.

        A key whose entry was searched against a *different* bandwidth
        fingerprint is stale: the entry is dropped, the miss recorded,
        and the caller re-plans against the fresh matrix.  A stale
        lookup must never count as "recent use" — the entry leaves the
        LRU order outright, untouched siblings keep their positions,
        and only a same-epoch hit refreshes recency.
        """
        with self._lock:
            entry = self._store.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.bandwidth_fp != bandwidth_fp:
                # The stale entry leaves the LRU order outright — it
                # must not be refreshed on its way out.
                del self._store[key]
                self._record_drop(key)
                self.stats.stale_drops += 1
                self.stats.misses += 1
                return None
            self._store.move_to_end(key)
            self.stats.hits += 1
            return entry.result

    def put(self, key: str, bandwidth_fp: str, result: PipetteResult) -> None:
        """Store a finished plan under ``key`` for one bandwidth epoch."""
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
            self._store[key] = _Entry(bandwidth_fp=bandwidth_fp, result=result)
            self._record_put(key, bandwidth_fp, result)
            evicted = []
            while len(self._store) > self.max_entries:
                evicted.append(self._store.popitem(last=False)[0])
                self.stats.evictions += 1
            if evicted:
                self._record_drops(evicted)

    def invalidate_epoch(self, bandwidth_fp: str) -> int:
        """Drop every entry not belonging to ``bandwidth_fp``.

        Called when the service adopts a re-profiled matrix whose drift
        exceeded the re-plan threshold; returns the number of retired
        plans.
        """
        with self._lock:
            stale = [k for k, e in self._store.items()
                     if e.bandwidth_fp != bandwidth_fp]
            for key in stale:
                del self._store[key]
            if stale:
                self._record_drops(stale)
            self.stats.stale_drops += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop everything (stats are kept)."""
        with self._lock:
            self._store.clear()
            self._record_clear()

    # ------------------------------------------------------------- metrics

    def attach_metrics(self, metrics, cluster: str) -> None:
        """Export this cache's counters on a metrics registry.

        Every series is *pull-bound* to the live :class:`CacheStats`
        fields (and entry count), so a scrape of ``/metrics`` and a
        read of :attr:`stats` always report the same numbers — there
        is no second set of counters to fall out of step.  All caches
        of a fleet share the same families, distinguished by the
        ``cluster`` label; attaching the same cluster twice raises
        (two owners must not claim one series).

        Args:
            metrics: a :class:`repro.service.metrics.MetricsRegistry`.
            cluster: label value identifying this cache's cluster.
        """
        bound = (
            ("pipette_cache_hits_total",
             "Plan-cache lookups served from the store.",
             lambda: self.stats_snapshot().hits),
            ("pipette_cache_misses_total",
             "Plan-cache lookups that found no live entry.",
             lambda: self.stats_snapshot().misses),
            ("pipette_cache_stale_drops_total",
             "Cached plans retired because their bandwidth epoch "
             "no longer matched.",
             lambda: self.stats_snapshot().stale_drops),
            ("pipette_cache_evictions_total",
             "Cached plans displaced by the LRU capacity bound.",
             lambda: self.stats_snapshot().evictions),
        )
        for name, documentation, fn in bound:
            metrics.counter(name, documentation,
                            ("cluster",)).labels(cluster=cluster).bind(fn)
        metrics.gauge(
            "pipette_cache_entries", "Live plans in the cache.",
            ("cluster",)).labels(cluster=cluster).set_function(
                lambda: len(self))

    # ------------------------------------------------- persistence hooks

    def _record_put(self, key: str, bandwidth_fp: str,
                    result: PipetteResult) -> None:
        """Mutation hook: ``key`` was stored or overwritten."""

    def _record_drop(self, key: str) -> None:
        """Mutation hook: ``key`` was evicted, staled, or invalidated."""

    def _record_drops(self, keys: "list[str]") -> None:
        """Mutation hook: many keys retired at once (epoch roll)."""
        for key in keys:
            self._record_drop(key)

    def _record_clear(self) -> None:
        """Mutation hook: the cache was emptied."""

"""Async planning gateway: many concurrent clients, one fleet.

:class:`~repro.service.planner.PlanningService` and
:class:`~repro.service.registry.ClusterRegistry` answer one caller at
a time; a live planning *service* has many — every job of a training
campaign asking "what config do I train with right now", often the
same question at the same moment.  :class:`PlanGateway` is the asyncio
front door over a registry that absorbs that concurrency without
serializing the fleet:

* **coalescing** — concurrent requests with the same fingerprint (and
  the same bandwidth epoch) share one search: the first caller leads,
  the rest await the leader's future and receive the *same*
  :class:`~repro.core.configurator.PipetteResult` object.  The
  coalescing key includes the cluster's bandwidth fingerprint, so a
  request submitted after an elastic event can never be answered by a
  search that started against the pre-event fabric;
* **per-cluster lanes** — each cluster has its own queue and drain
  loop, so a slow search on one cluster never delays answers from its
  siblings, and one cluster's backlog drains as batches through the
  service's existing in-flight dedup;
* **bounded backpressure** — each lane admits at most
  ``max_queue_depth`` distinct in-flight requests; beyond that the
  gateway either makes callers *wait* for a slot (default) or
  *rejects* them immediately with :class:`GatewayOverloadedError`;
* **non-blocking drains** — the synchronous
  :meth:`~repro.service.planner.PlanningService.drain` runs in a
  thread pool via ``run_in_executor``, so the event loop keeps
  accepting clients (and coalescing their requests) while searches
  run.  Inside each drain the shared
  :class:`~repro.service.executor.CandidateExecutor` still fans
  candidate work over its own pool;
* **fenced elastic events** — :meth:`PlanGateway.update_bandwidth` and
  :meth:`PlanGateway.fail_nodes` acquire the lane's fence, so an
  epoch roll lands *between* drain batches, never under one, and the
  service's own lock makes the adoption atomic;
* **per-client fairness** — each lane's queue is a weighted
  round-robin over per-client sub-queues (:class:`_FairQueue`), and
  drain batches are bounded by ``max_batch``: a chatty client that
  floods a lane with distinct requests fills *its own* sub-queue, and
  every batch still interleaves the other clients' work at their
  weights, so a quiet client's tail latency is bounded by a couple of
  batch times instead of the chatty client's whole backlog (see
  ``benchmarks/bench_http.py`` for the measured bound);
* **metrics** — constructed with a
  :class:`~repro.service.metrics.MetricsRegistry`, the gateway exports
  per-cluster request outcomes, plan-latency histograms, lane queue
  depths, and elastic-event counts; the ``GatewayStats`` counters are
  pull-bound, so ``/metrics`` and :attr:`PlanGateway.stats` always
  agree (the catalog lives in ``docs/SERVING.md``).

Use as an async context manager::

    async with PlanGateway(registry) as gateway:
        responses = await asyncio.gather(
            *(gateway.plan(request) for request in requests))
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial

from repro.cluster.fabric import BandwidthMatrix
from repro.core.configurator import PipetteResult, RankedConfig
from repro.obs.logs import get_logger
from repro.obs.trace import TRACER
from repro.service.cache import PlanRequest
from repro.service.metrics import MetricsRegistry
from repro.service.planner import PlanningService, PlanResponse
from repro.service.registry import ClusterRegistry
from repro.service.replan import DEFAULT_DRIFT_THRESHOLD

_log = get_logger("service.gateway")


class GatewayOverloadedError(RuntimeError):
    """A cluster's lane is full and the gateway's policy is ``reject``."""


@dataclass
class GatewayStats:
    """Operational counters of one :class:`PlanGateway`.

    Attributes:
        submitted: requests enqueued onto a lane (coalesced followers
            are not enqueued and do not count here).
        coalesced: requests answered by joining an identical in-flight
            request instead of enqueueing their own.
        rejected: requests refused by the ``reject`` overflow policy.
        batches: drain batches run on the executor threads.
        answered: tickets answered by those batches.
        max_batch: largest single drain batch.

    Mutations go through :meth:`bump`/:meth:`record_batch` and reads
    through :meth:`read`/:meth:`snapshot`, all under one lock: the
    counters move on the event loop while ``/metrics`` scrapes and
    ``/healthz`` render them from other contexts, and a multi-field
    report must never interleave with a mutation (snapshot tearing).
    """

    submitted: int = 0
    coalesced: int = 0
    rejected: int = 0
    batches: int = 0
    answered: int = 0
    max_batch: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    #: Fields carried by :meth:`snapshot`, in declaration order.
    FIELDS = ("submitted", "coalesced", "rejected", "batches", "answered",
              "max_batch")

    def bump(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` atomically."""
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def record_batch(self, size: int) -> None:
        """Count one drain batch of ``size`` tickets."""
        with self._lock:
            self.batches += 1
            self.max_batch = max(self.max_batch, size)

    def read(self, name: str) -> int:
        """One counter, read under the lock (metrics pull bindings)."""
        with self._lock:
            return getattr(self, name)

    def snapshot(self) -> dict:
        """All counters as one atomically-consistent mapping."""
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}


@dataclass
class GatewayResponse:
    """A plan answer delivered through the gateway.

    Attributes:
        cluster_name: the cluster that produced the plan.
        response: the underlying service answer.  Note that its
            ``elapsed_s`` times the *search's* answer inside the
            drain, which a coalesced follower shares with its leader.
        coalesced: ``True`` when this caller shared an identical
            in-flight request's search instead of submitting its own.
        elapsed_s: this caller's own submit-to-answer wall time (queue
            wait included).  Per-caller accounting must not copy the
            leader's search time onto every follower: a follower that
            joined late reports only the wait it actually experienced.
        trace_id: id of this request's trace when tracing was on
            (``None`` otherwise); a coalesced follower reports its own
            trace, which links to the leader's via the
            ``leader_trace_id`` span attribute.
    """

    cluster_name: str
    response: PlanResponse
    coalesced: bool = False
    elapsed_s: float = 0.0
    trace_id: "str | None" = None

    @property
    def status(self) -> str:
        """``"coalesced"`` for followers, else the service status."""
        return "coalesced" if self.coalesced else self.response.status

    @property
    def best(self) -> RankedConfig | None:
        """Shortcut to the recommended configuration."""
        return self.response.best

    @property
    def result(self) -> PipetteResult | None:
        """Shortcut to the full search result."""
        return self.response.result


class _FairQueue:
    """Weighted round-robin queue over per-client FIFO sub-queues.

    Items enqueue under a client id; :meth:`get_nowait` serves clients
    in rotation, each getting up to its weight of consecutive items
    per visit before the rotation moves on.  Within one client, order
    stays FIFO.  With ``fairness="fifo"`` every item lands in a single
    sub-queue and the structure degenerates to a plain FIFO — the
    pre-fairness gateway behaviour, kept selectable so the two
    policies can be A/B'd under the same load.

    Single-event-loop use only (the gateway's); no internal locking.
    """

    def __init__(self, weights: "dict[str, int] | None" = None,
                 fairness: str = "fair") -> None:
        self._weights = {str(k): int(v) for k, v in (weights or {}).items()}
        self._fair = fairness == "fair"
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._rotation: "deque[str]" = deque()
        self._credit = 0
        self._size = 0
        self._getters: "deque[asyncio.Future]" = deque()

    def qsize(self) -> int:
        """Items currently queued across all clients."""
        return self._size

    def _weight(self, client: str) -> int:
        return max(1, self._weights.get(client, 1))

    def put_nowait(self, item, client: str = "") -> None:
        """Enqueue ``item`` under ``client``'s sub-queue."""
        if not self._fair:
            client = ""
        queue = self._queues.get(client)
        if queue is None:
            queue = deque()
            self._queues[client] = queue
            self._rotation.append(client)
            if len(self._rotation) == 1:
                self._credit = self._weight(client)
        queue.append(item)
        self._size += 1
        self._wake_next()

    def get_nowait(self):
        """The next item by weighted round-robin (or ``QueueEmpty``)."""
        if self._size == 0:
            raise asyncio.QueueEmpty
        client = self._rotation[0]
        queue = self._queues[client]
        item = queue.popleft()
        self._size -= 1
        self._credit -= 1
        if not queue:
            # An idle client leaves the rotation entirely — it must
            # not be visited (or keep credit) while it has nothing
            # queued, and it re-enters at the back when it returns.
            del self._queues[client]
            self._rotation.popleft()
            if self._rotation:
                self._credit = self._weight(self._rotation[0])
        elif self._credit <= 0:
            self._rotation.rotate(-1)
            self._credit = self._weight(self._rotation[0])
        return item

    async def get(self):
        """Wait for and return the next item (round-robin order)."""
        while self._size == 0:
            getter = asyncio.get_running_loop().create_future()
            self._getters.append(getter)
            try:
                await getter
            except BaseException:
                getter.cancel()
                try:
                    self._getters.remove(getter)
                except ValueError:
                    pass
                if self._size and not getter.cancelled():
                    # This getter was woken and then cancelled: pass
                    # the wakeup on so the put is not lost.
                    self._wake_next()
                raise
        return self.get_nowait()

    def _wake_next(self) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_result(None)
                break


@dataclass
class _Inflight:
    """One in-flight leader: its shared future plus trace identity.

    The trace id travels with the future so a coalescing follower can
    link its own trace to the leader's without awaiting it first.
    """

    future: asyncio.Future
    trace_id: "str | None" = None


class _Lane:
    """Per-cluster queue, admission bound, fence, and drain task."""

    def __init__(self, name: str, max_depth: int,
                 weights: "dict[str, int] | None" = None,
                 fairness: str = "fair") -> None:
        self.name = name
        self.queue = _FairQueue(weights, fairness)
        self.slots = asyncio.Semaphore(max_depth)
        self.fence = asyncio.Lock()
        self.task: "asyncio.Task | None" = None


class _GatewayInstruments:
    """The gateway's exported series on one metrics registry.

    ``GatewayStats`` counters are pull-bound (``/metrics`` reads the
    same integers :attr:`PlanGateway.stats` holds); per-request
    outcomes and latency are event-driven because no stats object
    records them.
    """

    def __init__(self, metrics: MetricsRegistry,
                 stats: GatewayStats) -> None:
        self.requests = metrics.counter(
            "pipette_requests_total",
            "Plan requests answered through the gateway, by cluster "
            "and outcome (hit/miss/deduped/coalesced/error/rejected/"
            "failed).",
            ("cluster", "outcome"))
        self.latency = metrics.histogram(
            "pipette_plan_latency_seconds",
            "Per-caller submit-to-answer wall time through the "
            "gateway, queue wait included.",
            ("cluster",))
        self.queue_depth = metrics.gauge(
            "pipette_lane_queue_depth",
            "Requests queued on the cluster's lane, not yet in a "
            "drain batch.",
            ("cluster",))
        self.events = metrics.counter(
            "pipette_events_total",
            "Elastic events applied through the gateway, by kind "
            "(bandwidth/failure).",
            ("cluster", "kind"))
        self.retired = metrics.counter(
            "pipette_plans_retired_total",
            "Cached plans retired by elastic events.",
            ("cluster",))
        for name in ("submitted", "coalesced", "rejected", "batches",
                     "answered"):
            metrics.counter(
                f"pipette_gateway_{name}_total",
                f"GatewayStats.{name}, exported live.",
            ).bind(partial(stats.read, name))


class PlanGateway:
    """Asyncio front door over a :class:`ClusterRegistry`.

    Args:
        registry: the fleet to serve; a single
            :class:`~repro.service.planner.PlanningService` can be
            wrapped via :meth:`for_service`.
        max_queue_depth: distinct in-flight requests admitted per
            cluster lane before the overflow policy applies.
        overflow: ``"wait"`` parks over-limit callers until a slot
            frees (backpressure), ``"reject"`` fails them fast with
            :class:`GatewayOverloadedError` (load shedding).
        drain_workers: threads for running synchronous drains; at
            least one per concurrently-busy cluster to keep lanes
            independent.  Defaults to 8.
        fairness: ``"fair"`` (default) drains each lane by weighted
            round-robin over ``client_id``\\ s, so one chatty client
            cannot starve a lane; ``"fifo"`` restores strict arrival
            order.
        max_batch: most requests a single drain batch may carry.
            Smaller batches answer sooner and interleave clients more
            finely (fairness bites *between* batches — every future in
            a batch resolves when the whole batch's drain returns);
            larger batches amortize drain overhead.
        client_weights: round-robin weight per ``client_id`` (default
            1 each); a weight-3 client gets up to three consecutive
            items per rotation visit.
        metrics: a :class:`~repro.service.metrics.MetricsRegistry` to
            export gateway series on; ``None`` disables metrics.
    """

    def __init__(self, registry: ClusterRegistry, *,
                 max_queue_depth: int = 64, overflow: str = "wait",
                 drain_workers: int | None = None, fairness: str = "fair",
                 max_batch: int = 16,
                 client_weights: "dict[str, int] | None" = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if overflow not in ("wait", "reject"):
            raise ValueError(f"unknown overflow policy {overflow!r}; "
                             "choose 'wait' or 'reject'")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if fairness not in ("fair", "fifo"):
            raise ValueError(f"unknown fairness policy {fairness!r}; "
                             "choose 'fair' or 'fifo'")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        for client, weight in (client_weights or {}).items():
            if int(weight) < 1:
                raise ValueError(
                    f"client weight must be >= 1, got {weight} "
                    f"for {client!r}")
        self.registry = registry
        self.max_queue_depth = int(max_queue_depth)
        self.overflow = overflow
        self.fairness = fairness
        self.max_batch = int(max_batch)
        self.client_weights = dict(client_weights or {})
        self.stats = GatewayStats()
        self.metrics = metrics
        self._instruments = None if metrics is None else \
            _GatewayInstruments(metrics, self.stats)
        self._drain_workers = drain_workers
        self._lanes: "dict[str, _Lane]" = {}
        self._inflight: "dict[tuple[str, str, str], _Inflight]" = {}
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    @classmethod
    def for_service(cls, service: PlanningService, name: str = "default",
                    **kwargs) -> "PlanGateway":
        """A gateway over one service, registered under ``name``."""
        registry = ClusterRegistry(executor=service.executor)
        registry.register(name, service)
        return cls(registry, **kwargs)

    # ------------------------------------------------------------ planning

    async def plan(self, request: PlanRequest,
                   cluster: str | None = None,
                   client_id: str | None = None) -> GatewayResponse:
        """Answer one request; safe to call from many tasks at once.

        Routing matches :meth:`ClusterRegistry.plan` (pinned name or
        spec match).  An identical request already in flight on the
        same cluster *and the same bandwidth epoch* is coalesced —
        this caller awaits the in-flight search and shares its result.
        Otherwise the request is enqueued on its cluster's lane,
        subject to the overflow policy, and answered by the lane's
        next drain batch.  Submit-time failures (e.g. a request built
        for a cluster that has since shrunk) raise here, like
        :meth:`PlanningService.plan`; search failures inside a drain
        come back as ``"error"`` responses, like
        :meth:`PlanningService.drain`.

        ``client_id`` is *transport* identity, not plan identity: it
        selects the caller's fair-queue sub-queue (and round-robin
        weight) but is deliberately absent from the request
        fingerprint, so two clients asking the same question still
        share one cache entry and coalesce onto one search.
        """
        if self._closed:
            raise RuntimeError("gateway is closed")
        t0 = time.perf_counter()
        name = cluster if cluster is not None else self.registry.route(request)
        fingerprint = request.fingerprint()
        with TRACER.span("gateway.plan", cluster=name,
                         fingerprint=fingerprint) as gspan:
            while True:
                service = self.registry.service(name)
                # The epoch in the key is what fences coalescing across
                # elastic events: post-event submitters get a fresh key,
                # hence a fresh search against the post-event matrix —
                # never the pre-event leader's plan.
                key = (name, fingerprint, service.bandwidth_fp)
                existing = self._inflight.get(key)
                if existing is not None:
                    self.stats.bump("coalesced")
                    gspan.set_attribute("coalesced", True)
                    if existing.trace_id is not None:
                        gspan.set_attribute("leader_trace_id",
                                            existing.trace_id)
                    try:
                        response = await asyncio.shield(existing.future)
                    except asyncio.CancelledError:
                        if existing.future.cancelled():
                            # The leader was cancelled before its request
                            # was enqueued; this follower retries as the
                            # new leader instead of hanging on a future
                            # nobody will resolve.
                            self.stats.bump("coalesced", -1)
                            gspan.set_attribute("coalesced", False)
                            continue
                        raise  # this caller itself was cancelled
                    except BaseException:
                        self._record(name, "failed", None)
                        raise
                    self._record(name, "coalesced", t0)
                    elapsed = time.perf_counter() - t0
                    _log.debug("plan answered", extra={
                        "cluster": name, "outcome": "coalesced",
                        "elapsed_ms": round(elapsed * 1000, 3)})
                    return GatewayResponse(
                        cluster_name=name, response=response, coalesced=True,
                        elapsed_s=elapsed,
                        trace_id=gspan.trace_id if gspan.recording else None)
                lane = self._lane(name)
                future = asyncio.get_running_loop().create_future()
                self._inflight[key] = _Inflight(
                    future, gspan.trace_id if gspan.recording else None)
                try:
                    if self.overflow == "reject" and lane.slots.locked():
                        self.stats.bump("rejected")
                        self._record(name, "rejected", None)
                        raise GatewayOverloadedError(
                            f"cluster {name!r} already has "
                            f"{self.max_queue_depth} requests in flight and "
                            "the overflow policy is 'reject'; retry later or "
                            "raise max_queue_depth")
                    await lane.slots.acquire()
                except BaseException:
                    entry = self._inflight.get(key)
                    if entry is not None and entry.future is future:
                        del self._inflight[key]
                    # Wake any follower already coalesced onto this
                    # never-enqueued future so it can re-lead.
                    future.cancel()
                    raise
                # The wait span ends when the drain picks the item up;
                # it parents to this caller's gateway span explicitly
                # because the drain task has its own (unrelated)
                # context.
                qspan = TRACER.start_span("queue.wait", parent=gspan,
                                          cluster=name)
                lane.queue.put_nowait(
                    (request, key, future, qspan, gspan),
                    "" if client_id is None else str(client_id))
                self.stats.bump("submitted")
                try:
                    # Shielded so a cancelled leader does not cancel the
                    # shared future out from under coalesced followers.
                    response = await asyncio.shield(future)
                except asyncio.CancelledError:
                    raise
                except BaseException:
                    self._record(name, "failed", None)
                    raise
                self._record(name, response.status, t0)
                elapsed = time.perf_counter() - t0
                _log.debug("plan answered", extra={
                    "cluster": name, "outcome": response.status,
                    "elapsed_ms": round(elapsed * 1000, 3)})
                return GatewayResponse(
                    cluster_name=name, response=response,
                    elapsed_s=elapsed,
                    trace_id=gspan.trace_id if gspan.recording else None)

    def _record(self, cluster: str, outcome: str,
                t0: "float | None") -> None:
        """Count one answered (or refused) request on the metrics."""
        if self._instruments is None:
            return
        self._instruments.requests.labels(cluster=cluster,
                                          outcome=outcome).inc()
        if t0 is not None:
            self._instruments.latency.labels(cluster=cluster).observe(
                time.perf_counter() - t0)

    # ------------------------------------------------------------- elastic

    async def update_bandwidth(self, name: str,
                               new_bandwidth: BandwidthMatrix,
                               drift_threshold: float =
                               DEFAULT_DRIFT_THRESHOLD) -> int:
        """Adopt a re-profiled matrix on one cluster, fenced.

        Waits for the named lane's in-flight drain batch to finish,
        then rolls the epoch before the next batch starts — so every
        response handed out was searched against a matrix its epoch
        actually trusted.  Returns the number of retired plans.
        """
        with TRACER.span("event.bandwidth", cluster=name) as span:
            async with self._lane(name).fence:
                retired = await self._run(partial(
                    self.registry.update_bandwidth, name, new_bandwidth,
                    drift_threshold=drift_threshold))
            span.set_attribute("retired", retired)
        self._record_event(name, "bandwidth", retired)
        _log.info("bandwidth event", extra={"cluster": name,
                                            "retired": retired})
        return retired

    async def fail_nodes(self, name: str, *failed_nodes: int) -> int:
        """Apply a node failure to one cluster, fenced like above.

        Tickets already queued for the pre-failure cluster drain as
        ``"error"`` responses; post-event requests (built against the
        survivor cluster) plan fresh.  Returns the number of retired
        plans.
        """
        with TRACER.span("event.failure", cluster=name,
                         failed_nodes=list(failed_nodes)) as span:
            async with self._lane(name).fence:
                retired = await self._run(partial(
                    self.registry.fail_nodes, name, *failed_nodes))
            span.set_attribute("retired", retired)
        self._record_event(name, "failure", retired)
        _log.info("node failure", extra={"cluster": name,
                                         "failed_nodes": list(failed_nodes),
                                         "retired": retired})
        return retired

    def _record_event(self, cluster: str, kind: str, retired: int) -> None:
        if self._instruments is None:
            return
        self._instruments.events.labels(cluster=cluster, kind=kind).inc()
        self._instruments.retired.labels(cluster=cluster).inc(retired)

    # ------------------------------------------------------------ lifecycle

    @property
    def inflight(self) -> int:
        """Distinct (cluster, fingerprint, epoch) requests in flight.

        What a graceful drain waits on: :meth:`aclose` answers exactly
        these before stopping the lanes, so a supervisor can log how
        much work a terminating worker still owes.
        """
        return len(self._inflight)

    async def aclose(self) -> None:
        """Answer everything in flight, then stop the lanes and pool."""
        if self._closed:
            return
        self._closed = True
        pending = [entry.future for entry in self._inflight.values()]
        if pending:
            await asyncio.gather(*(asyncio.shield(f) for f in pending),
                                 return_exceptions=True)
        for lane in self._lanes.values():
            if lane.task is not None:
                lane.task.cancel()
        tasks = [lane.task for lane in self._lanes.values()
                 if lane.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def __aenter__(self) -> "PlanGateway":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------ plumbing

    def _lane(self, name: str) -> _Lane:
        self.registry.service(name)  # unknown names fail fast
        lane = self._lanes.get(name)
        if lane is None:
            lane = _Lane(name, self.max_queue_depth,
                         weights=self.client_weights,
                         fairness=self.fairness)
            lane.task = asyncio.get_running_loop().create_task(
                self._drain_lane(lane))
            self._lanes[name] = lane
            if self._instruments is not None:
                self._instruments.queue_depth.labels(
                    cluster=name).set_function(lane.queue.qsize)
        return lane

    def _drain_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self._drain_workers if self._drain_workers is not None \
                else 8
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="pipette-gateway")
        return self._pool

    async def _run(self, fn):
        """Run blocking registry/service work off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            self._drain_pool(), fn)

    async def _drain_lane(self, lane: _Lane) -> None:
        """One cluster's drain loop: batch, fence, drain, resolve.

        Batches are formed by the lane queue's weighted round-robin
        and bounded by ``max_batch`` — both matter for fairness: every
        future in a batch resolves only when the whole batch's drain
        returns, so a bounded batch is what keeps one client's backlog
        from riding along with (and delaying) everyone else's answers.

        The loop must outlive any single batch: whatever goes wrong
        mid-batch is delivered to that batch's futures, and the lane
        keeps draining — a dead lane would strand every later request
        on this cluster in an unanswerable queue.  Only cancellation
        (gateway shutdown) ends the loop.
        """
        while True:
            items = [await lane.queue.get()]
            while len(items) < self.max_batch:
                try:
                    items.append(lane.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                async with lane.fence:
                    await self._drain_batch(lane, items)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                for _, key, future, qspan, _parent in items:
                    qspan.end()
                    self._resolve(lane, key, future, exc=exc)

    async def _drain_batch(self, lane: _Lane, items: list) -> None:
        try:
            service = self.registry.service(lane.name)
        except ValueError as exc:  # unregistered while queued
            for _, key, future, qspan, _parent in items:
                qspan.end()
                self._resolve(lane, key, future, exc=exc)
            return
        tickets = []
        for request, key, future, qspan, parent in items:
            # Queue wait ends here: the drain has picked the item up
            # and the rest of its life is the service's spans, which
            # parent to the caller's gateway span via the ticket.
            qspan.end()
            try:
                ticket = service.submit(request, trace=parent
                                        if parent.recording else None)
            except (ValueError, RuntimeError) as exc:
                self._resolve(lane, key, future, exc=exc)
                continue
            tickets.append((ticket, key, future))
        if not tickets:
            return
        self.stats.record_batch(len(tickets))
        try:
            responses = await self._run(service.drain)
        except asyncio.CancelledError:
            raise  # gateway shutdown: aclose already waited for futures
        except BaseException as exc:
            # An unexpected failure (e.g. a durable cache whose disk
            # filled mid-drain) answers this batch with the error; the
            # lane itself must survive to serve the next batch.
            for _, key, future in tickets:
                self._resolve(lane, key, future, exc=exc)
            return
        by_index = {r.ticket.index: r for r in responses}
        for ticket, key, future in tickets:
            response = by_index.get(ticket.index)
            if response is None:
                # A racing direct drain() on the service stole the
                # ticket; the contract is that a service behind a
                # gateway is drained only by the gateway.
                self._resolve(lane, key, future, exc=RuntimeError(
                    f"ticket {ticket.index} was drained outside the "
                    f"gateway on cluster {lane.name!r}"))
            else:
                self._resolve(lane, key, future, response=response)
                self.stats.bump("answered")

    def _resolve(self, lane: _Lane, key, future,
                 response: PlanResponse | None = None,
                 exc: BaseException | None = None) -> None:
        """Answer one enqueued item (idempotent).

        The lane loop's defensive catch may re-deliver a batch that
        :meth:`_drain_batch` already resolved; the ``done()`` guard
        keeps the slot release exactly-once per enqueued item.
        """
        entry = self._inflight.get(key)
        if entry is not None and entry.future is future:
            del self._inflight[key]
        if future.done():
            return
        lane.slots.release()
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(response)

"""Profiled compute quantities, as the configurators consume them.

All automatic configurators in the paper (Pipette, AMP, Varuna)
profile the computation latency ``C`` of a microbatch on the target
hardware and plug the measured value into their latency models.  A
profile is a noisy observation of the true compute-time model —
exactly like timing a few hundred microbatches on a real GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import ClusterSpec
from repro.model.transformer import TransformerConfig
from repro.profiling.compute import ComputeTimeModel
from repro.utils.rng import spawn_rng


@dataclass
class ComputeProfile:
    """Measured per-microbatch compute times for one model on one GPU type.

    Attributes:
        model: the architecture that was profiled.
        compute: the underlying hardware behaviour (kept to derive
            unmeasured points; measurement noise is baked into
            :attr:`measurements`).
        measurements: ``(pp, stage, tp, micro) -> seconds`` cache.
        noise_sigma: relative std of one timing measurement.
        seed: profiling seed (fixes the noise draw).
    """

    model: TransformerConfig
    compute: ComputeTimeModel
    noise_sigma: float = 0.01
    seed: int = 0
    measurements: dict = field(default_factory=dict)

    def stage_compute_time(self, pp: int, stage: int, tp: int,
                           micro_batch: int) -> float:
        """Profiled ``C`` for one stage shape (cached after first use)."""
        key = (pp, stage, tp, micro_batch)
        if key not in self.measurements:
            true = self.compute.stage_compute_time(self.model, pp, stage, tp,
                                                   micro_batch)
            rng = spawn_rng(self.seed, f"profile-{self.model.name}-{key}")
            observed = true * float(rng.lognormal(0.0, self.noise_sigma)) \
                if self.noise_sigma > 0 else true
            self.measurements[key] = observed
        return self.measurements[key]

    def max_stage_compute_time(self, pp: int, tp: int, micro_batch: int) -> float:
        """Profiled ``C`` of the slowest stage."""
        return max(self.stage_compute_time(pp, s, tp, micro_batch)
                   for s in range(pp))


def profile_compute(model: TransformerConfig, cluster: ClusterSpec,
                    noise_sigma: float = 0.01, seed: int = 0) -> ComputeProfile:
    """Profile ``model``'s compute behaviour on ``cluster``'s GPU type."""
    return ComputeProfile(
        model=model,
        compute=ComputeTimeModel(gpu=cluster.node.gpu),
        noise_sigma=noise_sigma,
        seed=seed,
    )

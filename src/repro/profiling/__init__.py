"""Profiling substrate: compute-time model and profiled quantities.

Pipette and the baselines all *profile* the per-microbatch computation
latency ``C`` and tensor-parallel time ``T_TP`` rather than modeling
them from first principles (§V).  This package provides the underlying
"hardware" compute-time behaviour that both the ground-truth simulator
executes and the profilers observe.
"""

from repro.profiling.compute import ComputeTimeModel
from repro.profiling.profile_run import ComputeProfile, profile_compute

__all__ = ["ComputeTimeModel", "ComputeProfile", "profile_compute"]

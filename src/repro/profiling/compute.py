"""Compute-time behaviour of a GPU running transformer microbatches.

The model is a classic throughput curve: a stage's forward+backward
time is its FLOPs divided by the GPU's *attained* throughput, where
attained throughput is the achievable fraction of peak scaled by a
microbatch-utilization curve (small microbatches under-utilize the
SMs, which is why the paper sweeps ``bs_micro`` from 1 to 8 and why
Fig. 9a shows large gains from bigger microbatches), plus a small
per-kernel launch overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.topology import GpuSpec
from repro.model.memory import stage_layer_count
from repro.model.transformer import TransformerConfig
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class ComputeTimeModel:
    """Deterministic mean compute time of transformer work on a GPU.

    Attributes:
        gpu: the GPU whose peak and achievable fraction apply.
        utilization_half_point: microbatch size at which utilization
            reaches half of its asymptote (saturating curve
            ``b / (b + k)``).
        kernel_launch_s: fixed overhead per launched kernel.
        kernels_per_layer: kernels per transformer layer per pass.
        tp_overhead_per_log2: relative compute slowdown per doubling of
            the tensor-parallel degree.  Splitting every matmul ``tp``
            ways narrows the GEMMs, so attained FLOP/s drops even
            before communication is counted — the reason real systems
            do not always max out ``tp`` despite its memory savings.
    """

    gpu: GpuSpec
    utilization_half_point: float = 1.6
    kernel_launch_s: float = 6e-6
    kernels_per_layer: int = 25
    tp_overhead_per_log2: float = 0.08

    def __post_init__(self) -> None:
        check_positive(self.utilization_half_point, "utilization_half_point")
        if self.kernel_launch_s < 0:
            raise ValueError("kernel_launch_s must be non-negative")
        check_positive_int(self.kernels_per_layer, "kernels_per_layer")

    def utilization(self, micro_batch: int) -> float:
        """SM utilization fraction at a microbatch size, in (0, 1)."""
        check_positive_int(micro_batch, "micro_batch")
        k = self.utilization_half_point
        return micro_batch / (micro_batch + k)

    def attained_flops(self, micro_batch: int) -> float:
        """Attained FLOP/s at a microbatch size."""
        return (self.gpu.peak_flops * self.gpu.achievable_fraction
                * self.utilization(micro_batch))

    def stage_compute_time(self, model: TransformerConfig, pp: int, stage: int,
                           tp: int, micro_batch: int) -> float:
        """Forward+backward seconds of one microbatch on one stage GPU.

        This is the ``C`` of the latency models.  The FLOPs divide by
        ``tp`` (tensor parallelism splits every matmul); the last stage
        additionally computes the vocabulary head.
        """
        check_positive_int(tp, "tp")
        layers = stage_layer_count(model.n_layers, pp, stage)
        flops = model.microbatch_flops(micro_batch, n_layers=layers,
                                       include_head=(stage == pp - 1))
        tp_slowdown = 1.0 + self.tp_overhead_per_log2 * math.log2(tp)
        compute = flops / tp * tp_slowdown / self.attained_flops(micro_batch)
        # Forward + backward launch roughly 3x the forward kernel count.
        launches = 3 * layers * self.kernels_per_layer
        return compute + launches * self.kernel_launch_s

    def max_stage_compute_time(self, model: TransformerConfig, pp: int,
                               tp: int, micro_batch: int) -> float:
        """``C`` of the slowest stage (what a scalar latency model uses)."""
        return max(self.stage_compute_time(model, pp, s, tp, micro_batch)
                   for s in range(pp))

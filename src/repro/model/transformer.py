"""GPT-style transformer architecture description.

All resource formulas the configurator relies on are methods here:

* parameter counts (per layer, embeddings, total),
* FLOPs of a microbatch forward+backward pass,
* activation bytes stored per layer per microbatch (the dominant
  dynamic memory term under 1F1B scheduling),
* the activation message exchanged between pipeline stages.

Formulas follow Megatron-LM conventions: a layer holds
``12 h^2 + 13 h`` parameters, and activation memory per layer is
``s b h (34 + 5 a s / h)`` bytes in mixed precision (Korthikanti et
al., "Reducing Activation Recomputation", 2022).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture of a decoder-only GPT model.

    Attributes:
        name: catalog label (e.g. ``"gpt-3.1b"``).
        n_layers: number of transformer layers.
        hidden_size: model width ``h``.
        n_heads: attention heads ``a``; must divide ``hidden_size``.
        seq_length: training sequence length ``s``.
        vocab_size: vocabulary size ``V`` (Megatron pads to a multiple
            of 128 x tensor-parallel degree; we keep it fixed).
    """

    name: str
    n_layers: int
    hidden_size: int
    n_heads: int
    seq_length: int = 1024
    vocab_size: int = 51200

    def __post_init__(self) -> None:
        check_positive_int(self.n_layers, "n_layers")
        check_positive_int(self.hidden_size, "hidden_size")
        check_positive_int(self.n_heads, "n_heads")
        check_positive_int(self.seq_length, "seq_length")
        check_positive_int(self.vocab_size, "vocab_size")
        if self.hidden_size % self.n_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"n_heads {self.n_heads}"
            )

    # ----------------------------------------------------------------- params

    @property
    def layer_params(self) -> int:
        """Parameters of one transformer layer.

        QKV + attention output projections contribute ``4 h^2 + 4h``;
        the two MLP projections ``8 h^2 + 5h``; the two layernorms
        ``4 h``: about ``12 h^2 + 13 h`` in total.
        """
        h = self.hidden_size
        return 12 * h * h + 13 * h

    @property
    def embedding_params(self) -> int:
        """Token + position embedding parameters (tied output head)."""
        return (self.vocab_size + self.seq_length) * self.hidden_size

    @property
    def param_count(self) -> int:
        """Total trainable parameters of the full model."""
        return self.n_layers * self.layer_params + self.embedding_params

    @property
    def billions(self) -> float:
        """Parameter count in billions, for display."""
        return self.param_count / 1e9

    # ------------------------------------------------------------------ flops

    def layer_flops_forward(self, micro_batch: int) -> float:
        """Forward FLOPs of one layer for a ``micro_batch``-sized input.

        Matmul terms: ``24 b s h^2`` for the dense projections plus
        ``4 b s^2 h`` for attention score/value products.
        """
        check_positive_int(micro_batch, "micro_batch")
        b, s, h = micro_batch, self.seq_length, self.hidden_size
        return 24.0 * b * s * h * h + 4.0 * b * s * s * h

    def embedding_flops_forward(self, micro_batch: int) -> float:
        """Forward FLOPs of the output head (logit matmul)."""
        check_positive_int(micro_batch, "micro_batch")
        b, s, h, v = micro_batch, self.seq_length, self.hidden_size, self.vocab_size
        return 2.0 * b * s * h * v

    def microbatch_flops(self, micro_batch: int, n_layers: int | None = None,
                         include_head: bool = False) -> float:
        """Forward+backward FLOPs of a microbatch over ``n_layers`` layers.

        The backward pass costs twice the forward (weight and input
        gradients), giving the usual factor of 3.
        """
        layers = self.n_layers if n_layers is None else n_layers
        fwd = layers * self.layer_flops_forward(micro_batch)
        if include_head:
            fwd += self.embedding_flops_forward(micro_batch)
        return 3.0 * fwd

    # ------------------------------------------------------------ activations

    def activation_bytes_per_layer(self, micro_batch: int) -> float:
        """Bytes of stored activations per layer per in-flight microbatch.

        Mixed-precision formula ``s b h (34 + 5 a s / h)`` covering
        layer inputs, attention intermediates (the ``5 a s / h`` term
        is the attention-matrix part), and MLP intermediates.
        """
        check_positive_int(micro_batch, "micro_batch")
        b, s, h, a = micro_batch, self.seq_length, self.hidden_size, self.n_heads
        return s * b * h * (34.0 + 5.0 * a * s / h)

    def boundary_activation_bytes(self, micro_batch: int) -> float:
        """Bytes of the activation tensor crossing a pipeline-stage boundary.

        One fp16 tensor of shape ``(s, b, h)``: this is ``msg_PP`` of
        Eq. (5).
        """
        check_positive_int(micro_batch, "micro_batch")
        return 2.0 * self.seq_length * micro_batch * self.hidden_size

"""The GPT model ladder used in the paper's experiments.

The paper weak-scales the model with the cluster (Fig. 8, Table II):

* mid-range (V100): 774M @ 32 GPUs, 1.1B @ 64, 3.1B @ 128;
* high-end (A100): 2.2B @ 32 GPUs, 8.1B @ 64, 11.1B @ 128.

Architectures are chosen so the Megatron parameter-count formula lands
on the advertised sizes (within rounding; exact counts are exposed via
:attr:`TransformerConfig.param_count`).  High-end models use sequence
length 2048, mid-range 1024.
"""

from __future__ import annotations

from repro.model.transformer import TransformerConfig

#: All models from the paper plus small models for tests and examples.
MODEL_CATALOG: dict[str, TransformerConfig] = {
    cfg.name: cfg
    for cfg in (
        # --- mid-range ladder (V100, seq 1024) -------------------------
        TransformerConfig("gpt-774m", n_layers=36, hidden_size=1280,
                          n_heads=20, seq_length=1024),
        TransformerConfig("gpt-1.1b", n_layers=24, hidden_size=1920,
                          n_heads=24, seq_length=1024),
        TransformerConfig("gpt-3.1b", n_layers=34, hidden_size=2688,
                          n_heads=32, seq_length=1024),
        # --- high-end ladder (A100, seq 2048) --------------------------
        TransformerConfig("gpt-2.2b", n_layers=32, hidden_size=2304,
                          n_heads=24, seq_length=2048),
        TransformerConfig("gpt-8.1b", n_layers=70, hidden_size=3072,
                          n_heads=32, seq_length=2048),
        TransformerConfig("gpt-11.1b", n_layers=72, hidden_size=3584,
                          n_heads=32, seq_length=2048),
        # --- small models for tests, docs, and examples -----------------
        TransformerConfig("gpt-toy", n_layers=4, hidden_size=64,
                          n_heads=4, seq_length=32, vocab_size=512),
        TransformerConfig("gpt-small", n_layers=12, hidden_size=768,
                          n_heads=12, seq_length=1024),
    )
}


def get_model(name: str) -> TransformerConfig:
    """Look a model up by catalog name, with a helpful error."""
    try:
        return MODEL_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_CATALOG))
        raise KeyError(f"unknown model {name!r}; catalog has: {known}") from None


def mid_range_ladder() -> dict[int, TransformerConfig]:
    """GPU-count -> model map for the V100 cluster (weak scaling)."""
    return {
        32: get_model("gpt-774m"),
        64: get_model("gpt-1.1b"),
        128: get_model("gpt-3.1b"),
    }


def high_end_ladder() -> dict[int, TransformerConfig]:
    """GPU-count -> model map for the A100 cluster (weak scaling)."""
    return {
        32: get_model("gpt-2.2b"),
        64: get_model("gpt-8.1b"),
        128: get_model("gpt-11.1b"),
    }


def model_for_gpus(cluster_name: str, n_gpus: int) -> TransformerConfig:
    """The paper's weak-scaled model for a cluster size.

    Raises ``KeyError`` for GPU counts outside the published ladder.
    """
    ladder = mid_range_ladder() if cluster_name == "mid-range" else high_end_ladder()
    if n_gpus not in ladder:
        sizes = sorted(ladder)
        raise KeyError(
            f"no ladder entry for {n_gpus} GPUs on {cluster_name!r}; "
            f"published sizes: {sizes}"
        )
    return ladder[n_gpus]

"""Analytic per-GPU memory breakdown of a 3D-parallel training job.

This module computes the *first-principles* components of GPU memory:
weights, gradients, optimizer state, stored activations, and the
output-head logits.  Two consumers build on it:

* the ground-truth memory simulator (:mod:`repro.sim.memory_sim`),
  which **adds** the framework/library overheads real runs exhibit, and
* the analytic baseline estimator ([20] in the paper), which stops at
  the first-principles terms — precisely why it underestimates.

Mixed-precision (Megatron-style) byte costs per parameter:
fp16 weights (2) + fp16 gradient buffer with fp32 main-gradient
accumulation (2 + 4) + fp32 master weights + Adam moments (4 + 8)
= 20 bytes per parameter.  (Megatron-LM v2.5, the paper's framework,
predates the distributed optimizer, so every replica carries the full
optimizer state of its shard.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.transformer import TransformerConfig
from repro.utils.validation import check_positive_int

#: fp16 copy of the weights used by forward/backward compute.
BYTES_PER_PARAM_WEIGHTS: float = 2.0
#: fp16 gradient buffer plus fp32 main-gradient accumulation.
BYTES_PER_PARAM_GRADS: float = 6.0
#: fp32 master weights + Adam first/second moments.
BYTES_PER_PARAM_OPTIMIZER: float = 12.0


def stage_layer_count(n_layers: int, pp: int, stage: int) -> int:
    """Transformer layers hosted by pipeline ``stage`` (balanced split).

    When ``pp`` does not divide ``n_layers``, the first ``n_layers %
    pp`` stages take one extra layer, matching how practical frameworks
    split uneven layer counts.
    """
    check_positive_int(n_layers, "n_layers")
    check_positive_int(pp, "pp")
    if not 0 <= stage < pp:
        raise ValueError(f"stage {stage} out of range [0, {pp})")
    if pp > n_layers:
        raise ValueError(f"cannot split {n_layers} layers into {pp} stages")
    base, extra = divmod(n_layers, pp)
    return base + (1 if stage < extra else 0)


def max_stage_layer_count(n_layers: int, pp: int) -> int:
    """Layers of the most-loaded stage (stage 0 under the balanced split)."""
    return stage_layer_count(n_layers, pp, 0)


def stage_parameter_count(model: TransformerConfig, pp: int, stage: int) -> int:
    """Parameters hosted by one pipeline stage (before tensor splitting).

    The input embedding lives on the first stage and the tied output
    head on the last (Megatron keeps a full embedding copy on both ends
    when ``pp > 1``).
    """
    params = stage_layer_count(model.n_layers, pp, stage) * model.layer_params
    if stage == 0:
        params += model.embedding_params
    if stage == pp - 1 and pp > 1:
        params += model.vocab_size * model.hidden_size
    return params


@dataclass(frozen=True)
class ModelMemoryBreakdown:
    """First-principles memory components of one GPU, in bytes."""

    weights_bytes: float
    gradients_bytes: float
    optimizer_bytes: float
    activation_bytes: float
    logits_bytes: float

    @property
    def static_bytes(self) -> float:
        """Parameters-proportional memory (weights + grads + optimizer)."""
        return self.weights_bytes + self.gradients_bytes + self.optimizer_bytes

    @property
    def total_bytes(self) -> float:
        """Sum of all modeled components."""
        return self.static_bytes + self.activation_bytes + self.logits_bytes


def analytic_memory_breakdown(model: TransformerConfig, pp: int, tp: int,
                              stage: int, micro_batch: int,
                              in_flight: int,
                              recompute: bool = False) -> ModelMemoryBreakdown:
    """First-principles memory of one GPU of ``stage``.

    Args:
        model: architecture.
        pp: pipeline-parallel ways.
        tp: tensor-parallel ways (parameters and activations divide by it).
        stage: pipeline stage index of this GPU.
        micro_batch: microbatch size ``bs_micro``.
        in_flight: effective number of microbatches whose activations
            are simultaneously alive on this stage; ``min(pp - stage,
            n_mb)`` for the 1F1B schedule and ``n_mb`` for the
            memory-unaware schedule (Fig. 2).  May be fractional:
            interleaved schedules hold *chunks* of ``1 / degree`` of a
            stage's layers, so their device-stage equivalent is
            ``peak_chunks / degree``.
        recompute: with activation recomputation only the stage-input
            boundary tensor is retained per in-flight microbatch
            (duplicated across tensor ranks, as in Megatron), plus one
            microbatch's full activations as the recomputation working
            set.
    """
    check_positive_int(tp, "tp")
    check_positive_int(micro_batch, "micro_batch")
    if isinstance(in_flight, bool) or not isinstance(in_flight, (int, float)):
        raise TypeError(f"in_flight must be a number, got {in_flight!r}")
    if not in_flight > 0:
        raise ValueError(f"in_flight must be positive, got {in_flight!r}")

    params = stage_parameter_count(model, pp, stage) / tp
    layers = stage_layer_count(model.n_layers, pp, stage)
    full_act = layers * model.activation_bytes_per_layer(micro_batch) / tp
    if recompute:
        boundary = model.boundary_activation_bytes(micro_batch)
        act = boundary * in_flight + full_act
    else:
        act = full_act * in_flight

    logits = 0.0
    if stage == pp - 1:
        # fp16 logits + fp32 softmax statistics of one microbatch.
        logits = 4.0 * micro_batch * model.seq_length * model.vocab_size / tp

    return ModelMemoryBreakdown(
        weights_bytes=params * BYTES_PER_PARAM_WEIGHTS,
        gradients_bytes=params * BYTES_PER_PARAM_GRADS,
        optimizer_bytes=params * BYTES_PER_PARAM_OPTIMIZER,
        activation_bytes=act,
        logits_bytes=logits,
    )


def first_principles_max_bytes(model: TransformerConfig, pp: int, tp: int,
                               micro_batch: int, n_microbatches: int,
                               recompute: bool = False,
                               schedule: str = "1f1b") -> float:
    """Max-over-stages first-principles memory of a configuration.

    Sums the analytic components under the schedule's per-stage
    in-flight counts and returns the most-loaded stage.  This is the
    physics prior the MLP memory estimator refines — it captures
    everything derivable from the architecture while knowing nothing
    about framework overhead.

    Args:
        schedule: registered pipeline-schedule name.  The 1F1B default
            uses the closed-form :func:`one_f_one_b_in_flight` counts;
            other schedules derive peak activations from their own
            instruction streams.
    """
    if schedule == "1f1b":
        in_flights: "list[int | float]" = [
            one_f_one_b_in_flight(pp, stage, n_microbatches)
            for stage in range(pp)
        ]
    else:
        # Imported lazily: ``repro.sim`` depends on this module.
        from repro.sim.schedule import build_schedule

        sched = build_schedule(schedule, pp, n_microbatches)
        in_flights = [
            sched.peak_activation_chunks(stage) if sched.degree == 1
            else sched.peak_activation_chunks(stage) / sched.degree
            for stage in range(pp)
        ]
    worst = 0.0
    for stage in range(pp):
        parts = analytic_memory_breakdown(model, pp, tp, stage, micro_batch,
                                          in_flights[stage],
                                          recompute=recompute)
        worst = max(worst, parts.total_bytes)
    return worst


def one_f_one_b_in_flight(pp: int, stage: int, n_microbatches: int) -> int:
    """In-flight microbatches on ``stage`` under the 1F1B schedule.

    Stage ``s`` (0-indexed) holds at most ``pp - s`` forward activations
    before its steady 1F1B rhythm drains one per backward; capped by
    the total number of microbatches.
    """
    check_positive_int(n_microbatches, "n_microbatches")
    if not 0 <= stage < pp:
        raise ValueError(f"stage {stage} out of range [0, {pp})")
    return min(pp - stage, n_microbatches)

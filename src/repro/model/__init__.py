"""Model substrate: GPT transformer specs and their resource footprints.

The configurator never executes a model; it reasons about parameter
counts, FLOPs, activation sizes, and message sizes derived from the
architecture.  The formulas follow the Megatron-LM line of work
(Shoeybi et al. 2019 [14]; Narayanan et al. SC'21 [5]).
"""

from repro.model.transformer import TransformerConfig
from repro.model.catalog import (
    MODEL_CATALOG,
    get_model,
    mid_range_ladder,
    high_end_ladder,
    model_for_gpus,
)
from repro.model.memory import (
    BYTES_PER_PARAM_WEIGHTS,
    BYTES_PER_PARAM_GRADS,
    BYTES_PER_PARAM_OPTIMIZER,
    ModelMemoryBreakdown,
    stage_parameter_count,
    analytic_memory_breakdown,
)

__all__ = [
    "TransformerConfig",
    "MODEL_CATALOG",
    "get_model",
    "mid_range_ladder",
    "high_end_ladder",
    "model_for_gpus",
    "BYTES_PER_PARAM_WEIGHTS",
    "BYTES_PER_PARAM_GRADS",
    "BYTES_PER_PARAM_OPTIMIZER",
    "ModelMemoryBreakdown",
    "stage_parameter_count",
    "analytic_memory_breakdown",
]

"""The MLP-based memory estimator (§VI, Eq. 7).

``M_max = MLP(n_gpus, n_layers, n_hidden, n_heads, tp, pp, dp,
bs_micro, bs_mini, bs_global)``

All ten inputs are strictly positive and the target spans orders of
magnitude, so both are taken in log2 space (the MLP itself is exactly
the paper's: five layers, 200 hidden units).  A *soft margin* keeps
recommendations comfortably under the physical limit so estimation
error cannot produce OOM configurations.

One engineering choice beyond the paper's Eq. (7): the MLP regresses
the log-*ratio* of measured memory to a first-principles prior
(:func:`repro.model.memory.first_principles_max_bytes`) rather than
the raw log-memory.  The training data stops at 32 GPUs while
predictions are needed at 128 (§VI validates exactly this
extrapolation); a raw-feature MLP extrapolates arbitrarily outside the
``pp * tp * dp <= 32`` manifold, whereas the ratio — precisely the
framework/library overhead the paper says analytic models miss — is
bounded and smooth, so the physics prior carries the extrapolation.
The estimator still sees only profiled measurements, never the ground
truth's internals.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.memory_dataset import MemoryDataset
from repro.model.memory import first_principles_max_bytes
from repro.model.transformer import TransformerConfig
from repro.nn.mlp import MLP
from repro.nn.scaling import StandardScaler
from repro.nn.train import TrainResult, train_regressor
from repro.parallel.config import ParallelConfig
from repro.units import GIB

#: Feature order of Eq. (7).
FEATURE_NAMES: tuple[str, ...] = (
    "n_gpus", "n_layers", "n_hidden", "n_heads",
    "tp", "pp", "dp", "bs_micro", "bs_mini", "bs_global",
)


def memory_features(model: TransformerConfig, config: ParallelConfig,
                    n_gpus: int | None = None) -> np.ndarray:
    """The Eq. (7) feature vector of one configuration, in log2 space."""
    n = n_gpus if n_gpus is not None else config.n_gpus
    raw = (
        n, model.n_layers, model.hidden_size, model.n_heads,
        config.tp, config.pp, config.dp,
        config.micro_batch, config.mini_batch, config.global_batch,
    )
    return np.array([math.log2(v) for v in raw])


class MemoryEstimator:
    """Learns and predicts the max per-GPU memory of a configuration.

    Args:
        hidden_size: width of the hidden layers (200 in the paper).
        n_hidden_layers: hidden-layer count; 4 hidden + 1 output = the
            paper's five-layer MLP.
        soft_margin: a configuration is deemed runnable only if its
            predicted usage stays below ``soft_margin * limit``.
        ensemble_size: number of independently-initialized members;
            the prediction is their median.  A single MLP's
            extrapolation bias beyond the profiled cluster sizes
            varies with its initialization; the median of a few
            members is far more stable at modest extra training cost.
        seed: weight-init and training seed (members derive their own).
    """

    def __init__(self, hidden_size: int = 200, n_hidden_layers: int = 4,
                 soft_margin: float = 0.95, ensemble_size: int = 3,
                 seed: int = 0) -> None:
        if not 0.0 < soft_margin <= 1.0:
            raise ValueError(f"soft_margin must lie in (0, 1], got {soft_margin}")
        if ensemble_size < 1:
            raise ValueError(f"ensemble_size must be >= 1, got {ensemble_size}")
        sizes = [len(FEATURE_NAMES)] + [hidden_size] * n_hidden_layers + [1]
        self.networks = [MLP(sizes, seed=seed + 1013 * k)
                         for k in range(ensemble_size)]
        self.scaler = StandardScaler()
        self.soft_margin = float(soft_margin)
        self.seed = int(seed)
        self._fitted = False
        self._ratio_bounds: tuple[float, float] | None = None

    @property
    def network(self) -> MLP:
        """The first ensemble member (kept for introspection)."""
        return self.networks[0]

    def fit(self, dataset: MemoryDataset, iterations: int = 20_000,
            lr: float = 1e-3, batch_size: int = 64,
            weight_decay: float = 1e-3) -> TrainResult:
        """Train on a profiled dataset; returns the training summary.

        The paper trains for 50k iterations; the default here is lower
        because early stopping converges well before that on the
        profiled data — pass ``iterations=50_000`` for the faithful
        budget.  The mild decoupled weight decay is what makes
        extrapolation beyond the profiled cluster sizes (32 -> 128
        GPUs, §VI) behave: it suppresses spurious slopes in directions
        the profiled data constrains weakly.
        """
        if len(dataset) < 10:
            raise ValueError(
                f"dataset has only {len(dataset)} points; profile more "
                "configurations before fitting"
            )
        x = np.stack([
            memory_features(p.model, p.config, p.n_gpus) for p in dataset.points
        ])
        priors = np.array([self._prior_bytes(p.model, p.config)
                           for p in dataset.points])
        y = np.log2(dataset.measured_bytes() / priors)
        # The framework-overhead ratio is physically bounded; clamping
        # predictions to the observed band (with headroom) keeps
        # far-out-of-distribution queries sane.
        self._ratio_bounds = (float(y.min()) - 0.5, float(y.max()) + 0.5)
        x = self.scaler.fit_transform(x)
        result = None
        for k, member in enumerate(self.networks):
            result = train_regressor(member, x, y, iterations=iterations,
                                     lr=lr, batch_size=batch_size,
                                     weight_decay=weight_decay,
                                     seed=self.seed + 1013 * k)
        self._fitted = True
        return result

    def predict_bytes(self, model: TransformerConfig, config: ParallelConfig,
                      n_gpus: int | None = None) -> float:
        """Predicted max per-GPU memory of a configuration, in bytes."""
        if not self._fitted:
            raise RuntimeError("estimator is not fitted; call fit() first")
        feats = self.scaler.transform(memory_features(model, config,
                                                      n_gpus)[None, :])
        outputs = [member.forward(feats).item() for member in self.networks]
        pred_log_ratio = float(np.median(outputs))
        if self._ratio_bounds is not None:
            lo, hi = self._ratio_bounds
            pred_log_ratio = min(max(pred_log_ratio, lo), hi)
        return float(2.0 ** pred_log_ratio * self._prior_bytes(model, config))

    @staticmethod
    def _prior_bytes(model: TransformerConfig, config: ParallelConfig) -> float:
        # The physics prior follows the configuration's own schedule:
        # interleaved schedules keep more (fractional) activation
        # chunks in flight than 1F1B, GPipe keeps everything.  The
        # learned log-ratio on top captures framework overhead, which
        # is schedule-independent.
        return first_principles_max_bytes(
            model, config.pp, config.tp, config.micro_batch,
            config.n_microbatches, recompute=config.recompute,
            schedule=config.schedule)

    def is_runnable(self, model: TransformerConfig, config: ParallelConfig,
                    limit_bytes: float, n_gpus: int | None = None) -> bool:
        """The Algorithm 1 line-7 check, with the soft margin applied."""
        if limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive, got {limit_bytes}")
        predicted = self.predict_bytes(model, config, n_gpus)
        return predicted <= self.soft_margin * limit_bytes

"""Vectorized latency objective for the annealer hot path.

Simulated annealing (§IV, Algorithm 1 lines 9-15) spends its entire
budget calling the latency estimator: every proposed move pays a full
:func:`repro.core.latency_model.latency_with_options` evaluation, whose
reference implementation walks the ``(pp, tp, dp)`` communicator groups
in nested Python loops and constructs a fresh
:class:`~repro.parallel.mapping.Mapping` per move.

For a *fixed* ``(model, config, cluster, profile, options)`` tuple,
almost everything in Eqs. (3)-(6) is independent of the block
permutation:

* message sizes (``msg_PP``, per-stage ``msg_DP``, the tensor-parallel
  all-reduce payload) and their alpha-beta coefficients,
* the profiled compute scalar ``C`` (with its recompute factors),
* the per-slot TP-group bandwidth minima (a TP group always occupies
  one slot of ``tp`` consecutive GPUs, whichever block lands there),
* the slot-pair bandwidth tables ``matrix[s1*tp + y, s2*tp + y]`` that
  the pipeline-chain and data-parallel terms read through,
* the slot-GPU and node-of-slot tables and the stage-major block
  layout (:func:`repro.parallel.mapping.slot_gpu_index`,
  :func:`repro.parallel.mapping.slot_node_index`,
  :meth:`repro.parallel.mapping.WorkerGrid.stage_blocks`).

:class:`LatencyKernel` hoists all of that into ``__init__`` and reduces
one objective evaluation to a handful of NumPy gathers and reductions
over the raw permutation array — no Python-level group loops, no
``Mapping`` construction.

**Equivalence guarantee.** The kernel is not merely close to the
reference model: every floating-point expression mirrors the reference
implementation's operation order (same products, same quotients, same
reduction extrema), so ``kernel.evaluate_perm(m.block_to_slot)`` is
*bit-identical* to ``latency_with_options(..., m, ...)`` for every
mapping.  That is what lets :func:`repro.core.annealing.anneal_mapping`
replay the exact accept/reject trajectory of the pre-kernel annealer
for the same :class:`~repro.core.annealing.SAOptions` seed — cached
plans, store round-trips, and gateway coalescing see byte-identical
results, just computed an order of magnitude faster
(``benchmarks/bench_annealing_kernel.py``).

**The incremental contract.** :meth:`LatencyKernel.evaluate_perm`
remains the executable spec, but an annealing move touches at most a
handful of permutation positions, and Eqs. (3)-(6) decompose into
*per-component partial terms* that each depend only on a slice of the
permutation:

* the tensor-parallel straggler vector (stage 0 + last stage blocks),
* one pipeline-chain sum per ``(tensor rank, data rank)`` lane,
* one data-parallel ring term per exposure-aware stage.

:class:`IncrementalEvaluator` caches those partials for a bound
permutation and, per proposed move, recomputes only the touched
components — *with the exact operation order of the full evaluation*
(chain sums re-accumulate their whole lane sequentially; a stage's
ring term is recomputed whole), so the incremental value equals
``evaluate_perm`` to the last bit and the annealer's trajectory is
unchanged.  :meth:`LatencyKernel.delta_for_move` wraps this as the
one-shot ``latency(move(perm)) - latency(perm)`` form, and
:meth:`LatencyKernel.evaluate_batch` scores K permutations per NumPy
dispatch for the annealer's batched proposal mode.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.topology import ClusterSpec
from repro.core.latency_model import LatencyModelOptions
from repro.model.memory import stage_layer_count
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.mapping import (
    Mapping,
    WorkerGrid,
    check_slot_geometry,
    slot_gpu_index,
    slot_node_index,
)
from repro.parallel.messages import (
    TP_ALLREDUCES_PER_LAYER,
    dp_message_bytes,
    pp_message_bytes,
    tp_allreduce_bytes,
)
from repro.profiling.profile_run import ComputeProfile
from repro.units import GB


class LatencyKernel:
    """Compiled latency objective over block permutations.

    One kernel is specialized to a fixed ``(model, config, cluster,
    bandwidth, profile, options)`` tuple; :meth:`evaluate_perm` then
    scores any block permutation of that shape.  The instance is also
    callable on a :class:`~repro.parallel.mapping.Mapping`, making it a
    drop-in SA objective — :func:`repro.core.annealing.anneal_mapping`
    detects :meth:`evaluate_perm` and skips ``Mapping`` construction
    entirely.

    Args:
        model: architecture being trained.
        config: the parallelization whose mappings are scored.
        cluster: physical cluster (defines slot/node geometry).
        bandwidth: bandwidth matrix the communication terms read.
        profile: profiled compute times.
        options: ablation switches; defaults mirror
            :func:`repro.core.latency_model.latency_with_options`'s.
    """

    def __init__(self, model: TransformerConfig, config: ParallelConfig,
                 cluster: ClusterSpec, bandwidth: BandwidthMatrix,
                 profile: ComputeProfile,
                 options: LatencyModelOptions | None = None) -> None:
        options = options or LatencyModelOptions()
        grid = WorkerGrid(pp=config.pp, tp=config.tp, dp=config.dp)
        check_slot_geometry(grid, cluster)
        if bandwidth.n_gpus != cluster.n_gpus:
            raise ValueError(
                f"bandwidth matrix covers {bandwidth.n_gpus} GPUs but the "
                f"cluster has {cluster.n_gpus}"
            )
        self.model = model
        self.config = config
        self.cluster = cluster
        self.options = options
        self.grid = grid
        pp, tp, dp = config.pp, config.tp, config.dp
        n_slots = grid.n_blocks

        # ---- permutation-independent scalars -------------------------
        c = profile.max_stage_compute_time(pp, tp, config.micro_batch)
        self._tp_factor = 1.0
        if config.recompute:
            c *= 4.0 / 3.0
            self._tp_factor = 1.5
        self._c = c
        self._n_mb = config.n_microbatches
        self._eff = options.collective_efficiency
        # Resolve the schedule's analytic critical-time function once;
        # ``_finish`` calls it on every objective evaluation.
        from repro.sim.schedule import schedule_type

        self._critical_time = schedule_type(config.schedule).critical_time

        matrix = bandwidth.matrix
        # ``blocked[s1, y1, s2, y2] == matrix[s1*tp + y1, s2*tp + y2]``.
        blocked = matrix.reshape(n_slots, tp, n_slots, tp)

        self._n_slots = n_slots

        # ---- tensor-parallel term (part of C + T_TP_com) -------------
        if tp > 1:
            # Slowest link inside each slot's TP group (the matrix
            # diagonal is +inf and never wins, matching
            # ``min_over_group``), gathered through the slot-GPU table.
            gpus = slot_gpu_index(grid, cluster)       # (n_slots, tp)
            self._tp_min_bw = matrix[gpus[:, :, None],
                                     gpus[:, None, :]].min(axis=(1, 2))
            steps = tp - 1
            self._tp_coef = 2.0 * (steps / tp) * tp_allreduce_bytes(
                model, config.micro_batch)
            self._tp_layers4 = stage_layer_count(model.n_layers, pp, 0) \
                * TP_ALLREDUCES_PER_LAYER
            # The reference model inspects stage 0 and the last stage;
            # these are the positions of their blocks in the permutation.
            rows = grid.stage_blocks()
            self._tp_blocks = np.concatenate([rows[0], rows[-1]]) \
                if pp > 1 else rows[0]
            # Which permutation positions feed the TP straggler term —
            # the incremental path skips it entirely for moves that
            # touch neither the first nor the last stage.
            self._tp_touch = np.zeros(n_slots, dtype=bool)
            self._tp_touch[self._tp_blocks] = True

        # ``pair_bw[y, s1, s2]``: bandwidth between tensor rank ``y``'s
        # GPUs of slots ``s1`` and ``s2`` — the table both the pipeline
        # chains and the data-parallel rings gather through (flattened
        # to ``(tp, n_slots**2)`` so hot-loop gathers are single
        # ``np.take`` calls over ``s1 * n_slots + s2`` indices).
        if pp > 1 or dp > 1:
            pair_bw = blocked.diagonal(axis1=1, axis2=3).transpose(2, 0, 1)
            flat_pair = np.ascontiguousarray(pair_bw.reshape(tp, -1))

        # ---- pipeline-parallel term (Eq. 5) --------------------------
        if pp > 1:
            hop_num = 2.0 * pp_message_bytes(model, config.micro_batch)
            self._pp_hop_flat = hop_num / (flat_pair * GB)

        # ---- data-parallel term (Eq. 6) ------------------------------
        if dp > 1:
            self._pair_flat = flat_pair
            self._node_of_slot = slot_node_index(grid, cluster)
            self._msg_dp = np.array([dp_message_bytes(model, pp, tp, stage=s)
                                     for s in range(pp)])
            self._tril = np.tril(np.ones((dp, dp), dtype=bool), -1)
            ns = pp if options.dp_exposure_aware else 1
            self._n_dp_stages = ns
            self._msg_dp_col = self._msg_dp[:ns, None]
            self._drain_steps = np.arange(1, ns)
            # When a slot is a whole node (tp == gpus_per_node, the
            # Megatron default), every DP group has exactly one member
            # per node: the intra-node phase vanishes and the leaders
            # are all ``dp`` members — a much shorter evaluation.
            self._one_slot_per_node = cluster.gpus_per_node // tp == 1
            if self._one_slot_per_node:
                self._inter_num_all = (2.0 * (dp - 1)) * self._msg_dp[:ns]

    # ------------------------------------------------------------- evaluation

    def __call__(self, mapping: Mapping) -> float:
        """Score a mapping — the drop-in SA objective form."""
        if mapping.grid != self.grid:
            raise ValueError(
                f"kernel compiled for grid {self.grid} got {mapping.grid}"
            )
        return self.evaluate_perm(mapping.block_to_slot)

    def evaluate_perm(self, perm: np.ndarray) -> float:
        """Latency of the block permutation ``perm`` (no validation).

        ``perm`` must be a permutation of ``[0, n_blocks)``; callers in
        the annealing loop guarantee that by construction (the move set
        preserves permutations), so no per-call check is paid.
        """
        pp, tp, dp = self.grid.pp, self.grid.tp, self.grid.dp
        perm = np.asarray(perm)
        slots = perm.reshape(pp, dp)
        if pp > 1 or dp > 1:
            scaled = slots * self._n_slots        # s1 * n_slots, by stage

        # C + T_TP_com: the straggler TP group sets the pace.
        c_tp = self._c
        if tp > 1:
            sel = np.take(self._tp_min_bw, np.take(perm, self._tp_blocks))
            t = self._tp_layers4 * (self._tp_coef / (sel * GB))
            c_tp = self._c + self._tp_factor * float(t.max())

        # Eq. (5): slowest end-to-end pipeline communication path.  The
        # running ``add.accumulate`` visits hops in chain order, so the
        # floating-point sum matches the reference's sequential
        # accumulation exactly (unlike ``np.sum``'s pairwise blocking).
        t_pp = 0.0
        if pp > 1:
            hop = np.take(self._pp_hop_flat, scaled[:-1] + slots[1:], axis=1)
            t_pp = float(np.add.accumulate(hop, axis=1)[:, -1].max())

        backward_slack = 2.0 * c_tp / 3.0

        # Eq. (6): hierarchical-ring all-reduce per stage, worst tensor
        # rank; later stages net of their drain slack when
        # ``dp_exposure_aware``.
        t_dp = 0.0
        if dp > 1:
            ns = self._n_dp_stages
            pair = np.take(self._pair_flat,
                           scaled[:ns, :, None] + slots[:ns, None, :],
                           axis=1)                                # (tp,ns,dp,dp)
            if self._one_slot_per_node:
                # One member per node: no intra phase, every member is
                # its node's leader, and the group min needs no mask
                # (the diagonal is +inf and never wins).
                inter_bw = pair.reshape(tp, ns, -1).min(axis=2)   # (tp, ns)
                inter = self._inter_num_all[None] \
                    / ((dp * inter_bw) * GB)
                stage_t = inter.max(axis=0)                       # (ns,)
                exposed = float(stage_t[0])
                if ns > 1:
                    adj = stage_t[1:] - self._drain_steps * backward_slack
                    exposed = max(exposed, float(adj.max()))
                return self._finish(pp, c_tp, t_pp, exposed / self._eff)
            nodes = np.take(self._node_of_slot, slots[:ns])       # (ns, dp)
            same = nodes[:, :, None] == nodes[:, None, :]         # (ns, dp, dp)

            # Intra-node phase: per data rank, the slowest link to a
            # same-node peer; the member attaining the node minimum
            # reproduces the reference's per-node term, the rest are
            # dominated.  A data rank's node population is its row sum
            # of ``same``.  Excluded pairs are masked to +inf, so the
            # min ranges over exactly the reference's candidate set.
            rowmin = np.where(same[None], pair, np.inf).min(axis=3)
            k = same.sum(axis=2)                                  # (ns, dp)
            intra_num = (4.0 * (k - 1)) * self._msg_dp_col
            intra = (intra_num[None] / ((k[None] * rowmin) * GB)).max(axis=2)

            # Inter-node phase: leaders are each node's first member in
            # data-rank order (no earlier same-node occurrence).
            leader = ~((same & self._tril).any(axis=2))           # (ns, dp)
            kn = leader.sum(axis=1)                               # (ns,)
            pairmask = leader[:, :, None] & leader[:, None, :]
            masked = np.where(pairmask[None], pair, np.inf)
            inter_bw = masked.reshape(tp, ns, -1).min(axis=2)     # (tp, ns)
            inter_num = (2.0 * (kn - 1)) * self._msg_dp[:ns]
            inter = inter_num[None] / ((kn[None] * inter_bw) * GB)

            stage_t = (intra + inter).max(axis=0)                 # (ns,)
            exposed = float(stage_t[0])
            if ns > 1:
                adj = stage_t[1:] - self._drain_steps * backward_slack
                exposed = max(exposed, float(adj.max()))
            t_dp = exposed / self._eff

        return self._finish(pp, c_tp, t_pp, t_dp)

    def evaluate_batch(self, perms: np.ndarray) -> np.ndarray:
        """Latencies of K block permutations in one vectorized pass.

        ``perms`` is a ``(K, n_blocks)`` array whose rows are
        permutations of ``[0, n_blocks)``.  Every gather and reduction
        of :meth:`evaluate_perm` generalizes with a leading K axis, and
        the reductions stay per-row independent (the chain
        ``add.accumulate`` runs along the hop axis, so each lane's sum
        order is untouched) — row ``k`` of the result is therefore
        *bit-identical* to ``evaluate_perm(perms[k])``.  The point is
        dispatch amortization: the annealer's batched proposal mode
        pays one NumPy call chain for K candidate moves instead of K.
        """
        pp, tp, dp = self.grid.pp, self.grid.tp, self.grid.dp
        perms = np.asarray(perms)
        if perms.ndim != 2 or perms.shape[1] != self.grid.n_blocks:
            raise ValueError(
                f"expected a (K, {self.grid.n_blocks}) batch of "
                f"permutations, got shape {perms.shape}"
            )
        n = perms.shape[0]
        slots = perms.reshape(n, pp, dp)
        if pp > 1 or dp > 1:
            scaled = slots * self._n_slots

        if tp > 1:
            sel = np.take(self._tp_min_bw,
                          np.take(perms, self._tp_blocks, axis=1))
            t = self._tp_layers4 * (self._tp_coef / (sel * GB))
            c_tp = self._c + self._tp_factor * t.max(axis=1)
        else:
            c_tp = np.full(n, self._c)

        t_pp = np.zeros(n)
        if pp > 1:
            hop = np.take(self._pp_hop_flat,
                          scaled[:, :-1] + slots[:, 1:], axis=1)
            t_pp = np.add.accumulate(hop, axis=2)[:, :, -1].max(axis=(0, 2))

        stage_t = None
        if dp > 1:
            ns = self._n_dp_stages
            pair = np.take(self._pair_flat,
                           scaled[:, :ns, :, None] + slots[:, :ns, None, :],
                           axis=1)                         # (tp, K, ns, dp, dp)
            if self._one_slot_per_node:
                inter_bw = pair.reshape(tp, n, ns, -1).min(axis=3)
                inter = self._inter_num_all[None, None] \
                    / ((dp * inter_bw) * GB)
                stage_t = inter.max(axis=0)                # (K, ns)
            else:
                nodes = np.take(self._node_of_slot, slots[:, :ns])
                same = nodes[:, :, :, None] == nodes[:, :, None, :]
                rowmin = np.where(same[None], pair, np.inf).min(axis=4)
                k = same.sum(axis=3)                       # (K, ns, dp)
                intra_num = (4.0 * (k - 1)) * self._msg_dp_col
                intra = (intra_num[None]
                         / ((k[None] * rowmin) * GB)).max(axis=3)
                leader = ~((same & self._tril).any(axis=3))
                kn = leader.sum(axis=2)                    # (K, ns)
                pairmask = leader[:, :, :, None] & leader[:, :, None, :]
                masked = np.where(pairmask[None], pair, np.inf)
                inter_bw = masked.reshape(tp, n, ns, -1).min(axis=3)
                inter_num = (2.0 * (kn - 1)) * self._msg_dp[:ns]
                inter = inter_num[None] / ((kn[None] * inter_bw) * GB)
                stage_t = (intra + inter).max(axis=0)      # (K, ns)

        # Combine per row with the scalar epilogue of ``evaluate_perm``
        # (same expressions on the same floats), so each row's final
        # combination is performed in the spec's exact order.
        out = np.empty(n)
        for i in range(n):
            row_c_tp = float(c_tp[i])
            t_dp = 0.0
            if stage_t is not None:
                exposed = float(stage_t[i, 0])
                if self._n_dp_stages > 1:
                    backward_slack = 2.0 * row_c_tp / 3.0
                    adj = stage_t[i, 1:] - self._drain_steps * backward_slack
                    exposed = max(exposed, float(adj.max()))
                t_dp = exposed / self._eff
            out[i] = self._finish(pp, row_c_tp, float(t_pp[i]), t_dp)
        return out

    # --------------------------------------------------- incremental path

    def incremental(self) -> "IncrementalEvaluator":
        """A fresh incremental evaluator over this kernel's partial terms.

        The annealer's sequential hot loop binds its current
        permutation once and then re-scores each proposed move by
        recomputing only the touched components; see
        :class:`IncrementalEvaluator` for the exactness argument.
        """
        return IncrementalEvaluator(self)

    def delta_for_move(self, perm: np.ndarray, move) -> float:
        """Exact latency delta of applying ``move`` to ``perm``.

        ``move`` is a ``(kind, i, j)`` tuple with the semantics of
        :func:`repro.core.annealing.apply_move` (``"swap"``,
        ``"migrate"``, or ``"reverse"``).  The result equals
        ``evaluate_perm(apply_move(perm, move)) - evaluate_perm(perm)``
        computed on bit-identical evaluations, but only the components
        the move touches are recomputed.  Consecutive calls with the
        same ``perm`` reuse the bound partial terms; the annealer's hot
        loop uses the stateful :meth:`incremental` form directly.
        """
        from repro.core.annealing import apply_move

        perm = np.asarray(perm, dtype=np.int64)
        inc = getattr(self, "_delta_inc", None)
        if inc is None:
            inc = self._delta_inc = self.incremental()
        if inc.perm is None or not np.array_equal(inc.perm, perm):
            inc.bind(perm)
        return inc.propose(apply_move(perm, move)) - inc.value

    def _finish(self, pp: int, c_tp: float, t_pp: float,
                t_dp: float) -> float:
        if self.options.hidden_critical_path:
            # Schedule-aware Eq. (3)-(4): the schedule's analytic
            # critical time plus T_DP.  For 1F1B the resolved function
            # computes ``T_bubble * (n_mb / pp) + T_straggler``
            # verbatim, keeping the kernel bit-identical to the
            # pre-schedule implementation.
            return self._critical_time(pp, self._n_mb, c_tp, t_pp) + t_dp
        # Eq. (1): the inter-stage communication is paid only once.
        return (self._n_mb - 1) * c_tp + pp * c_tp + t_pp + t_dp


class IncrementalEvaluator:
    """Exact delta evaluation over single-move perturbations.

    The evaluator caches the permutation-dependent *partial terms* of
    one bound permutation:

    * ``t_tp`` — the TP straggler vector over the stage-0/last-stage
      block positions (``None`` when ``tp == 1``);
    * ``chain_tot`` — the accumulated pipeline-chain sum per
      ``(tensor rank, data rank)`` lane, shape ``(tp, dp)`` (``None``
      when ``pp == 1``);
    * ``stage_t`` — the data-parallel ring term per exposure-aware
      stage, shape ``(ns,)`` (``None`` when ``dp == 1``).

    :meth:`propose` recomputes only the components a candidate
    permutation touches.  Exactness rests on component independence:
    each partial term depends on a disjoint slice of the permutation
    and is recomputed *whole*, with the same expressions in the same
    order as :meth:`LatencyKernel.evaluate_perm` (a touched chain lane
    re-runs its full sequential ``add.accumulate``; a touched stage
    re-runs its full ring reduction), and the scalar epilogue combines
    the cached floats exactly as the full evaluation would.  The
    per-component results are therefore bit-identical to the full
    re-score's, and so is their combination — which is what lets
    :func:`repro.core.annealing.anneal_mapping` run this path by
    default without perturbing its trajectory.

    Usage is a bind/propose/accept cycle::

        inc = kernel.incremental()
        value = inc.bind(perm)              # full evaluation, cached
        cand = inc.propose(new_perm)        # delta evaluation
        inc.accept()                        # new_perm becomes current

    ``propose`` never mutates the bound state, so rejected moves cost
    nothing beyond their own recomputation; ``accept`` adopts the last
    proposal in O(n).
    """

    def __init__(self, kernel: LatencyKernel) -> None:
        self._k = kernel
        self.perm: "np.ndarray | None" = None
        self.value: float = 0.0
        self._t_tp = None
        self._chain_tot = None
        self._stage_t = None
        self._cand = None
        self._cand_perm = None

    # ------------------------------------------------------------ binding

    def bind(self, perm: np.ndarray) -> float:
        """Fully evaluate ``perm`` and cache its partial terms."""
        k = self._k
        pp, dp = k.grid.pp, k.grid.dp
        perm = np.array(perm, dtype=np.int64)
        self.perm = perm
        self._cand = None
        self._t_tp = self._tp_vector(perm) if k.grid.tp > 1 else None
        slots = perm.reshape(pp, dp)
        self._chain_tot = self._chain_lanes(slots, slice(None)) \
            if pp > 1 else None
        self._stage_t = self._dp_stage_terms(
            slots, np.arange(k._n_dp_stages)) if dp > 1 else None
        self.value = self._combine(self._t_tp, self._chain_tot,
                                   self._stage_t)
        return self.value

    def propose(self, perm: np.ndarray,
                touched: "np.ndarray | None" = None) -> float:
        """Value of ``perm``, recomputing only the touched components.

        ``touched`` lists the positions where ``perm`` differs from the
        bound permutation; when omitted it is derived by comparison.
        The proposal is staged — :meth:`accept` adopts it — and the
        bound state is untouched either way.
        """
        k = self._k
        pp, dp = k.grid.pp, k.grid.dp
        if touched is None:
            touched = np.flatnonzero(perm != self.perm)
        if touched.size == 0:
            self._cand = (self._t_tp, self._chain_tot, self._stage_t,
                          self.value)
            self._cand_perm = perm
            return self.value

        t_tp = self._t_tp
        if t_tp is not None and k._tp_touch[touched].any():
            t_tp = self._tp_vector(perm)

        slots = perm.reshape(pp, dp)
        chain_tot = self._chain_tot
        if chain_tot is not None:
            cols = np.unique(touched % dp)
            chain_tot = chain_tot.copy()
            chain_tot[:, cols] = self._chain_lanes(slots, cols)

        stage_t = self._stage_t
        if stage_t is not None:
            stages = np.unique(touched // dp)
            stages = stages[stages < k._n_dp_stages]
            if stages.size:
                stage_t = stage_t.copy()
                stage_t[stages] = self._dp_stage_terms(slots, stages)

        value = self._combine(t_tp, chain_tot, stage_t)
        self._cand = (t_tp, chain_tot, stage_t, value)
        self._cand_perm = perm
        return value

    def accept(self) -> None:
        """Adopt the last :meth:`propose` as the bound state."""
        if self._cand is None:
            raise RuntimeError("no staged proposal to accept")
        self.perm[:] = self._cand_perm
        self._t_tp, self._chain_tot, self._stage_t, self.value = self._cand
        self._cand = None
        self._cand_perm = None

    # --------------------------------------------------------- components

    def _tp_vector(self, perm: np.ndarray) -> np.ndarray:
        """The TP straggler vector — same gather chain as the full path."""
        k = self._k
        sel = np.take(k._tp_min_bw, np.take(perm, k._tp_blocks))
        return k._tp_layers4 * (k._tp_coef / (sel * GB))

    def _chain_lanes(self, slots: np.ndarray, cols) -> np.ndarray:
        """Accumulated chain sums of the selected data-rank lanes.

        Each lane's hops are gathered and sequentially accumulated in
        full, exactly as the full evaluation's ``add.accumulate`` does
        for that lane — lanes are independent, so recomputing a subset
        reproduces the full path's floats for those columns.
        """
        k = self._k
        sub = slots[:, cols]
        hop = np.take(k._pp_hop_flat,
                      sub[:-1] * k._n_slots + sub[1:], axis=1)
        return np.add.accumulate(hop, axis=1)[:, -1]

    def _dp_stage_terms(self, slots: np.ndarray,
                        stage_idx: np.ndarray) -> np.ndarray:
        """Ring terms of the selected stages — the full path, sliced.

        A stage's term reads only that stage's ``dp`` slots, and every
        reduction in :meth:`LatencyKernel.evaluate_perm`'s DP section
        is per-stage independent, so evaluating a stage subset yields
        the identical floats.
        """
        k = self._k
        tp, dp = k.grid.tp, k.grid.dp
        m = len(stage_idx)
        sub = slots[stage_idx]                                # (m, dp)
        pair = np.take(k._pair_flat,
                       (sub * k._n_slots)[:, :, None] + sub[:, None, :],
                       axis=1)                                # (tp, m, dp, dp)
        if k._one_slot_per_node:
            inter_bw = pair.reshape(tp, m, -1).min(axis=2)
            inter = k._inter_num_all[stage_idx][None] \
                / ((dp * inter_bw) * GB)
            return inter.max(axis=0)
        nodes = np.take(k._node_of_slot, sub)                 # (m, dp)
        same = nodes[:, :, None] == nodes[:, None, :]
        rowmin = np.where(same[None], pair, np.inf).min(axis=3)
        kk = same.sum(axis=2)                                 # (m, dp)
        intra_num = (4.0 * (kk - 1)) * k._msg_dp[stage_idx, None]
        intra = (intra_num[None] / ((kk[None] * rowmin) * GB)).max(axis=2)
        leader = ~((same & k._tril).any(axis=2))              # (m, dp)
        kn = leader.sum(axis=1)                               # (m,)
        pairmask = leader[:, :, None] & leader[:, None, :]
        masked = np.where(pairmask[None], pair, np.inf)
        inter_bw = masked.reshape(tp, m, -1).min(axis=2)
        inter_num = (2.0 * (kn - 1)) * k._msg_dp[stage_idx]
        inter = inter_num[None] / ((kn[None] * inter_bw) * GB)
        return (intra + inter).max(axis=0)

    def _combine(self, t_tp, chain_tot, stage_t) -> float:
        """The scalar epilogue over cached partials — the spec's, verbatim."""
        k = self._k
        pp = k.grid.pp
        c_tp = k._c
        if t_tp is not None:
            c_tp = k._c + k._tp_factor * float(t_tp.max())
        t_pp = 0.0
        if chain_tot is not None:
            t_pp = float(chain_tot.max())
        t_dp = 0.0
        if stage_t is not None:
            exposed = float(stage_t[0])
            if k._n_dp_stages > 1:
                backward_slack = 2.0 * c_tp / 3.0
                adj = stage_t[1:] - k._drain_steps * backward_slack
                exposed = max(exposed, float(adj.max()))
            t_dp = exposed / k._eff
        return k._finish(pp, c_tp, t_pp, t_dp)


def pipette_kernel(model: TransformerConfig, config: ParallelConfig,
                   cluster: ClusterSpec, bandwidth: BandwidthMatrix,
                   profile: ComputeProfile) -> LatencyKernel:
    """A kernel matching :func:`repro.core.latency_model.pipette_latency`.

    Same ablation defaults (hidden critical path, per-link bandwidth,
    profiled collective efficiency, exposure-aware DP term), so
    ``pipette_kernel(...)(mapping)`` is bit-identical to
    ``pipette_latency(model, config, mapping, bandwidth, profile)``.
    """
    from repro.sim.engine import DEFAULT_DP_EFFICIENCY

    return LatencyKernel(
        model, config, cluster, bandwidth, profile,
        LatencyModelOptions(hidden_critical_path=True,
                            per_link_bandwidth=True,
                            collective_efficiency=DEFAULT_DP_EFFICIENCY,
                            dp_exposure_aware=True))

"""Vectorized latency objective for the annealer hot path.

Simulated annealing (§IV, Algorithm 1 lines 9-15) spends its entire
budget calling the latency estimator: every proposed move pays a full
:func:`repro.core.latency_model.latency_with_options` evaluation, whose
reference implementation walks the ``(pp, tp, dp)`` communicator groups
in nested Python loops and constructs a fresh
:class:`~repro.parallel.mapping.Mapping` per move.

For a *fixed* ``(model, config, cluster, profile, options)`` tuple,
almost everything in Eqs. (3)-(6) is independent of the block
permutation:

* message sizes (``msg_PP``, per-stage ``msg_DP``, the tensor-parallel
  all-reduce payload) and their alpha-beta coefficients,
* the profiled compute scalar ``C`` (with its recompute factors),
* the per-slot TP-group bandwidth minima (a TP group always occupies
  one slot of ``tp`` consecutive GPUs, whichever block lands there),
* the slot-pair bandwidth tables ``matrix[s1*tp + y, s2*tp + y]`` that
  the pipeline-chain and data-parallel terms read through,
* the slot-GPU and node-of-slot tables and the stage-major block
  layout (:func:`repro.parallel.mapping.slot_gpu_index`,
  :func:`repro.parallel.mapping.slot_node_index`,
  :meth:`repro.parallel.mapping.WorkerGrid.stage_blocks`).

:class:`LatencyKernel` hoists all of that into ``__init__`` and reduces
one objective evaluation to a handful of NumPy gathers and reductions
over the raw permutation array — no Python-level group loops, no
``Mapping`` construction.

**Equivalence guarantee.** The kernel is not merely close to the
reference model: every floating-point expression mirrors the reference
implementation's operation order (same products, same quotients, same
reduction extrema), so ``kernel.evaluate_perm(m.block_to_slot)`` is
*bit-identical* to ``latency_with_options(..., m, ...)`` for every
mapping.  That is what lets :func:`repro.core.annealing.anneal_mapping`
replay the exact accept/reject trajectory of the pre-kernel annealer
for the same :class:`~repro.core.annealing.SAOptions` seed — cached
plans, store round-trips, and gateway coalescing see byte-identical
results, just computed an order of magnitude faster
(``benchmarks/bench_annealing_kernel.py``).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.topology import ClusterSpec
from repro.core.latency_model import LatencyModelOptions
from repro.model.memory import stage_layer_count
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.mapping import (
    Mapping,
    WorkerGrid,
    check_slot_geometry,
    slot_gpu_index,
    slot_node_index,
)
from repro.parallel.messages import (
    TP_ALLREDUCES_PER_LAYER,
    dp_message_bytes,
    pp_message_bytes,
    tp_allreduce_bytes,
)
from repro.profiling.profile_run import ComputeProfile
from repro.units import GB


class LatencyKernel:
    """Compiled latency objective over block permutations.

    One kernel is specialized to a fixed ``(model, config, cluster,
    bandwidth, profile, options)`` tuple; :meth:`evaluate_perm` then
    scores any block permutation of that shape.  The instance is also
    callable on a :class:`~repro.parallel.mapping.Mapping`, making it a
    drop-in SA objective — :func:`repro.core.annealing.anneal_mapping`
    detects :meth:`evaluate_perm` and skips ``Mapping`` construction
    entirely.

    Args:
        model: architecture being trained.
        config: the parallelization whose mappings are scored.
        cluster: physical cluster (defines slot/node geometry).
        bandwidth: bandwidth matrix the communication terms read.
        profile: profiled compute times.
        options: ablation switches; defaults mirror
            :func:`repro.core.latency_model.latency_with_options`'s.
    """

    def __init__(self, model: TransformerConfig, config: ParallelConfig,
                 cluster: ClusterSpec, bandwidth: BandwidthMatrix,
                 profile: ComputeProfile,
                 options: LatencyModelOptions | None = None) -> None:
        options = options or LatencyModelOptions()
        grid = WorkerGrid(pp=config.pp, tp=config.tp, dp=config.dp)
        check_slot_geometry(grid, cluster)
        if bandwidth.n_gpus != cluster.n_gpus:
            raise ValueError(
                f"bandwidth matrix covers {bandwidth.n_gpus} GPUs but the "
                f"cluster has {cluster.n_gpus}"
            )
        self.model = model
        self.config = config
        self.cluster = cluster
        self.options = options
        self.grid = grid
        pp, tp, dp = config.pp, config.tp, config.dp
        n_slots = grid.n_blocks

        # ---- permutation-independent scalars -------------------------
        c = profile.max_stage_compute_time(pp, tp, config.micro_batch)
        self._tp_factor = 1.0
        if config.recompute:
            c *= 4.0 / 3.0
            self._tp_factor = 1.5
        self._c = c
        self._n_mb = config.n_microbatches
        self._eff = options.collective_efficiency
        # Resolve the schedule's analytic critical-time function once;
        # ``_finish`` calls it on every objective evaluation.
        from repro.sim.schedule import schedule_type

        self._critical_time = schedule_type(config.schedule).critical_time

        matrix = bandwidth.matrix
        # ``blocked[s1, y1, s2, y2] == matrix[s1*tp + y1, s2*tp + y2]``.
        blocked = matrix.reshape(n_slots, tp, n_slots, tp)

        self._n_slots = n_slots

        # ---- tensor-parallel term (part of C + T_TP_com) -------------
        if tp > 1:
            # Slowest link inside each slot's TP group (the matrix
            # diagonal is +inf and never wins, matching
            # ``min_over_group``), gathered through the slot-GPU table.
            gpus = slot_gpu_index(grid, cluster)       # (n_slots, tp)
            self._tp_min_bw = matrix[gpus[:, :, None],
                                     gpus[:, None, :]].min(axis=(1, 2))
            steps = tp - 1
            self._tp_coef = 2.0 * (steps / tp) * tp_allreduce_bytes(
                model, config.micro_batch)
            self._tp_layers4 = stage_layer_count(model.n_layers, pp, 0) \
                * TP_ALLREDUCES_PER_LAYER
            # The reference model inspects stage 0 and the last stage;
            # these are the positions of their blocks in the permutation.
            rows = grid.stage_blocks()
            self._tp_blocks = np.concatenate([rows[0], rows[-1]]) \
                if pp > 1 else rows[0]

        # ``pair_bw[y, s1, s2]``: bandwidth between tensor rank ``y``'s
        # GPUs of slots ``s1`` and ``s2`` — the table both the pipeline
        # chains and the data-parallel rings gather through (flattened
        # to ``(tp, n_slots**2)`` so hot-loop gathers are single
        # ``np.take`` calls over ``s1 * n_slots + s2`` indices).
        if pp > 1 or dp > 1:
            pair_bw = blocked.diagonal(axis1=1, axis2=3).transpose(2, 0, 1)
            flat_pair = np.ascontiguousarray(pair_bw.reshape(tp, -1))

        # ---- pipeline-parallel term (Eq. 5) --------------------------
        if pp > 1:
            hop_num = 2.0 * pp_message_bytes(model, config.micro_batch)
            self._pp_hop_flat = hop_num / (flat_pair * GB)

        # ---- data-parallel term (Eq. 6) ------------------------------
        if dp > 1:
            self._pair_flat = flat_pair
            self._node_of_slot = slot_node_index(grid, cluster)
            self._msg_dp = np.array([dp_message_bytes(model, pp, tp, stage=s)
                                     for s in range(pp)])
            self._tril = np.tril(np.ones((dp, dp), dtype=bool), -1)
            ns = pp if options.dp_exposure_aware else 1
            self._n_dp_stages = ns
            self._msg_dp_col = self._msg_dp[:ns, None]
            self._drain_steps = np.arange(1, ns)
            # When a slot is a whole node (tp == gpus_per_node, the
            # Megatron default), every DP group has exactly one member
            # per node: the intra-node phase vanishes and the leaders
            # are all ``dp`` members — a much shorter evaluation.
            self._one_slot_per_node = cluster.gpus_per_node // tp == 1
            if self._one_slot_per_node:
                self._inter_num_all = (2.0 * (dp - 1)) * self._msg_dp[:ns]

    # ------------------------------------------------------------- evaluation

    def __call__(self, mapping: Mapping) -> float:
        """Score a mapping — the drop-in SA objective form."""
        if mapping.grid != self.grid:
            raise ValueError(
                f"kernel compiled for grid {self.grid} got {mapping.grid}"
            )
        return self.evaluate_perm(mapping.block_to_slot)

    def evaluate_perm(self, perm: np.ndarray) -> float:
        """Latency of the block permutation ``perm`` (no validation).

        ``perm`` must be a permutation of ``[0, n_blocks)``; callers in
        the annealing loop guarantee that by construction (the move set
        preserves permutations), so no per-call check is paid.
        """
        pp, tp, dp = self.grid.pp, self.grid.tp, self.grid.dp
        perm = np.asarray(perm)
        slots = perm.reshape(pp, dp)
        if pp > 1 or dp > 1:
            scaled = slots * self._n_slots        # s1 * n_slots, by stage

        # C + T_TP_com: the straggler TP group sets the pace.
        c_tp = self._c
        if tp > 1:
            sel = np.take(self._tp_min_bw, np.take(perm, self._tp_blocks))
            t = self._tp_layers4 * (self._tp_coef / (sel * GB))
            c_tp = self._c + self._tp_factor * float(t.max())

        # Eq. (5): slowest end-to-end pipeline communication path.  The
        # running ``add.accumulate`` visits hops in chain order, so the
        # floating-point sum matches the reference's sequential
        # accumulation exactly (unlike ``np.sum``'s pairwise blocking).
        t_pp = 0.0
        if pp > 1:
            hop = np.take(self._pp_hop_flat, scaled[:-1] + slots[1:], axis=1)
            t_pp = float(np.add.accumulate(hop, axis=1)[:, -1].max())

        backward_slack = 2.0 * c_tp / 3.0

        # Eq. (6): hierarchical-ring all-reduce per stage, worst tensor
        # rank; later stages net of their drain slack when
        # ``dp_exposure_aware``.
        t_dp = 0.0
        if dp > 1:
            ns = self._n_dp_stages
            pair = np.take(self._pair_flat,
                           scaled[:ns, :, None] + slots[:ns, None, :],
                           axis=1)                                # (tp,ns,dp,dp)
            if self._one_slot_per_node:
                # One member per node: no intra phase, every member is
                # its node's leader, and the group min needs no mask
                # (the diagonal is +inf and never wins).
                inter_bw = pair.reshape(tp, ns, -1).min(axis=2)   # (tp, ns)
                inter = self._inter_num_all[None] \
                    / ((dp * inter_bw) * GB)
                stage_t = inter.max(axis=0)                       # (ns,)
                exposed = float(stage_t[0])
                if ns > 1:
                    adj = stage_t[1:] - self._drain_steps * backward_slack
                    exposed = max(exposed, float(adj.max()))
                return self._finish(pp, c_tp, t_pp, exposed / self._eff)
            nodes = np.take(self._node_of_slot, slots[:ns])       # (ns, dp)
            same = nodes[:, :, None] == nodes[:, None, :]         # (ns, dp, dp)

            # Intra-node phase: per data rank, the slowest link to a
            # same-node peer; the member attaining the node minimum
            # reproduces the reference's per-node term, the rest are
            # dominated.  A data rank's node population is its row sum
            # of ``same``.  Excluded pairs are masked to +inf, so the
            # min ranges over exactly the reference's candidate set.
            rowmin = np.where(same[None], pair, np.inf).min(axis=3)
            k = same.sum(axis=2)                                  # (ns, dp)
            intra_num = (4.0 * (k - 1)) * self._msg_dp_col
            intra = (intra_num[None] / ((k[None] * rowmin) * GB)).max(axis=2)

            # Inter-node phase: leaders are each node's first member in
            # data-rank order (no earlier same-node occurrence).
            leader = ~((same & self._tril).any(axis=2))           # (ns, dp)
            kn = leader.sum(axis=1)                               # (ns,)
            pairmask = leader[:, :, None] & leader[:, None, :]
            masked = np.where(pairmask[None], pair, np.inf)
            inter_bw = masked.reshape(tp, ns, -1).min(axis=2)     # (tp, ns)
            inter_num = (2.0 * (kn - 1)) * self._msg_dp[:ns]
            inter = inter_num[None] / ((kn[None] * inter_bw) * GB)

            stage_t = (intra + inter).max(axis=0)                 # (ns,)
            exposed = float(stage_t[0])
            if ns > 1:
                adj = stage_t[1:] - self._drain_steps * backward_slack
                exposed = max(exposed, float(adj.max()))
            t_dp = exposed / self._eff

        return self._finish(pp, c_tp, t_pp, t_dp)

    def _finish(self, pp: int, c_tp: float, t_pp: float,
                t_dp: float) -> float:
        if self.options.hidden_critical_path:
            # Schedule-aware Eq. (3)-(4): the schedule's analytic
            # critical time plus T_DP.  For 1F1B the resolved function
            # computes ``T_bubble * (n_mb / pp) + T_straggler``
            # verbatim, keeping the kernel bit-identical to the
            # pre-schedule implementation.
            return self._critical_time(pp, self._n_mb, c_tp, t_pp) + t_dp
        # Eq. (1): the inter-stage communication is paid only once.
        return (self._n_mb - 1) * c_tp + pp * c_tp + t_pp + t_dp


def pipette_kernel(model: TransformerConfig, config: ParallelConfig,
                   cluster: ClusterSpec, bandwidth: BandwidthMatrix,
                   profile: ComputeProfile) -> LatencyKernel:
    """A kernel matching :func:`repro.core.latency_model.pipette_latency`.

    Same ablation defaults (hidden critical path, per-link bandwidth,
    profiled collective efficiency, exposure-aware DP term), so
    ``pipette_kernel(...)(mapping)`` is bit-identical to
    ``pipette_latency(model, config, mapping, bandwidth, profile)``.
    """
    from repro.sim.engine import DEFAULT_DP_EFFICIENCY

    return LatencyKernel(
        model, config, cluster, bandwidth, profile,
        LatencyModelOptions(hidden_critical_path=True,
                            per_link_bandwidth=True,
                            collective_efficiency=DEFAULT_DP_EFFICIENCY,
                            dp_exposure_aware=True))

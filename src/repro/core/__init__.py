"""Pipette core: the paper's three contributions plus Algorithm 1.

* :mod:`repro.core.latency_model` — the refined critical-path latency
  model (Eqs. 3-6) and the prior-art model (Eq. 1) it improves on;
* :mod:`repro.core.latency_kernel` — the vectorized, bit-identical
  compilation of that model the annealer's hot loop evaluates;
* :mod:`repro.core.annealing` — simulated-annealing worker dedication
  with the paper's migration/swap/reverse move set (§IV);
* :mod:`repro.core.memory_estimator` — the MLP-based memory estimator
  with its soft margin (§VI, Eq. 7);
* :mod:`repro.core.configurator` — the end-to-end search procedure
  (Algorithm 1) and its PPT-L / PPT-LF ablation variants;
* :mod:`repro.core.templates` — precomputed pipeline templates across
  node counts for elastic failover (Oobleck-style).
"""

from repro.core.latency_model import (
    LatencyModelOptions,
    pipette_latency,
    prior_art_latency,
    latency_with_options,
)
from repro.core.latency_kernel import LatencyKernel, pipette_kernel
from repro.core.annealing import (
    SAOptions,
    SAResult,
    anneal_mapping,
    anneal_mapping_reference,
    anneal_mapping_with_restarts,
)
from repro.core.memory_dataset import MemoryDataset, build_memory_dataset
from repro.core.memory_estimator import MemoryEstimator, memory_features
from repro.core.configurator import (
    PipetteOptions,
    PipetteResult,
    RankedConfig,
    PipetteConfigurator,
    pipette_l,
    pipette_lf,
)
from repro.core.templates import (
    TEMPLATE_LIBRARY_VERSION,
    PipelineTemplate,
    PipelineTemplateGenerator,
    TemplateLibrary,
    stage_layer_split,
)

__all__ = [
    "LatencyModelOptions",
    "pipette_latency",
    "prior_art_latency",
    "latency_with_options",
    "LatencyKernel",
    "pipette_kernel",
    "SAOptions",
    "SAResult",
    "anneal_mapping",
    "anneal_mapping_reference",
    "anneal_mapping_with_restarts",
    "MemoryDataset",
    "build_memory_dataset",
    "MemoryEstimator",
    "memory_features",
    "PipetteOptions",
    "PipetteResult",
    "RankedConfig",
    "PipetteConfigurator",
    "pipette_l",
    "pipette_lf",
    "TEMPLATE_LIBRARY_VERSION",
    "PipelineTemplate",
    "PipelineTemplateGenerator",
    "TemplateLibrary",
    "stage_layer_split",
]

"""Algorithm 1: the end-to-end Pipette search procedure.

Given the GPU count, global batch size and per-GPU memory limit,
Pipette:

1. profiles the actual bandwidth matrix (done by the caller via
   :class:`repro.cluster.profiler.NetworkProfiler`),
2. enumerates ``(pp, tp, dp)`` factorizations and microbatch sizes,
3. skips configurations the memory estimator flags as OOM (line 7),
4. for each survivor, searches worker-to-GPU mappings with simulated
   annealing, scoring each mapping with the latency estimator
   (lines 9-15),
5. returns the best configuration, mapping, and estimated latency.

The ablation variants of the paper's Fig. 6 are factory functions:
:func:`pipette_l` (latency estimator only, naive mapping — "PPT-L")
and :func:`pipette_lf` (plus fine-grained worker dedication —
"PPT-LF").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.topology import ClusterSpec
from repro.core.annealing import SAOptions, anneal_mapping
from repro.core.latency_model import pipette_latency
from repro.core.memory_estimator import MemoryEstimator
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.parallel.mapping import Mapping, WorkerGrid, sequential_mapping
from repro.profiling.profile_run import ComputeProfile


@dataclass(frozen=True)
class PipetteOptions:
    """Behaviour switches of the search.

    Attributes:
        use_worker_dedication: run the SA mapping search (PPT-LF);
            otherwise keep the framework's sequential mapping (PPT-L).
        sa: annealing budget/hyper-parameters per refined candidate.
        sa_top_k: run SA only on this many of the best candidates (by
            naive-mapping latency).  Algorithm 1 anneals every
            candidate; bounding the refined set is an optimization
            that leaves results unchanged in practice because SA gains
            a few percent and cannot rescue a configuration that
            starts far behind.  Set to 0 to anneal every candidate.
        max_micro_batch: largest microbatch swept (the paper uses 8).
        seed: seed stream for the annealer.
    """

    use_worker_dedication: bool = True
    sa: SAOptions = field(default_factory=lambda: SAOptions(max_iterations=3000))
    sa_top_k: int = 4
    max_micro_batch: int = 8
    seed: int = 0


@dataclass(frozen=True)
class RankedConfig:
    """One evaluated configuration in the result ranking.

    Attributes:
        config: the parallelization.
        mapping: worker placement used for the latency estimate.
        estimated_latency_s: latency-estimator output.
        estimated_memory_bytes: memory-estimator output (``None`` when
            the search ran without a memory estimator).
        memory_ok: whether the memory check passed; ``False`` marks a
            best-effort recommendation (the estimator believed nothing
            fits and returned the least-memory candidates anyway).
    """

    config: ParallelConfig
    mapping: Mapping
    estimated_latency_s: float
    estimated_memory_bytes: float | None
    memory_ok: bool


@dataclass
class PipetteResult:
    """Outcome of one search.

    Attributes:
        best: best feasible configuration (``None`` when nothing fits).
        ranked: feasible configurations sorted by estimated latency.
        rejected_oom: configurations the memory estimator filtered out.
        memory_check_s: wall-clock spent in the memory estimator
            (Table II row "Memory Estimation").
        annealing_s: wall-clock spent in SA (Table II row "Simulated
            Annealing").
        total_s: end-to-end search time.
    """

    best: RankedConfig | None
    ranked: list[RankedConfig]
    rejected_oom: int
    memory_check_s: float
    annealing_s: float
    total_s: float


class PipetteConfigurator:
    """The Pipette automatic configurator (Algorithm 1).

    Args:
        cluster: nominal cluster description.
        model: architecture to train.
        bandwidth: *profiled* bandwidth matrix ``BW`` (line 1).
        profile: profiled compute times for this model on this GPU.
        memory_estimator: fitted estimator; ``None`` disables the
            memory check (not recommended; exists for ablations).
        options: search behaviour.
    """

    def __init__(self, cluster: ClusterSpec, model: TransformerConfig,
                 bandwidth: BandwidthMatrix, profile: ComputeProfile,
                 memory_estimator: MemoryEstimator | None = None,
                 options: PipetteOptions | None = None) -> None:
        if bandwidth.n_gpus != cluster.n_gpus:
            raise ValueError(
                f"bandwidth matrix covers {bandwidth.n_gpus} GPUs but the "
                f"cluster has {cluster.n_gpus}"
            )
        self.cluster = cluster
        self.model = model
        self.bandwidth = bandwidth
        self.profile = profile
        self.memory_estimator = memory_estimator
        self.options = options or PipetteOptions()

    # ------------------------------------------------------------------ api

    def estimate_latency(self, config: ParallelConfig,
                         mapping: Mapping | None = None) -> float:
        """Latency-estimator value for one configuration/mapping."""
        if mapping is None:
            mapping = self._sequential(config)
        return pipette_latency(self.model, config, mapping, self.bandwidth,
                               self.profile)

    def search(self, global_batch: int,
               memory_limit_bytes: float | None = None,
               micro_batches: "list[int] | None" = None) -> PipetteResult:
        """Run Algorithm 1 and return the ranked feasible configurations.

        Args:
            global_batch: ``bs_global``.
            memory_limit_bytes: ``M_limit``; defaults to the cluster
                GPU's physical memory.
            micro_batches: restrict the swept microbatch sizes (the
                sensitivity studies of Fig. 9 pin ``bs_micro``).
        """
        t_start = time.perf_counter()
        limit = memory_limit_bytes if memory_limit_bytes is not None \
            else self.cluster.gpu_memory_bytes
        configs = enumerate_parallel_configs(
            self.cluster.n_gpus, global_batch,
            gpus_per_node=self.cluster.gpus_per_node,
            n_layers=self.model.n_layers,
            micro_batches=micro_batches,
            max_micro_batch=self.options.max_micro_batch,
        )

        memory_s = 0.0
        rejected = 0
        survivors: list[tuple[ParallelConfig, float | None]] = []
        margin = self.memory_estimator.soft_margin \
            if self.memory_estimator is not None else 1.0
        while True:
            for config in configs:
                if self.memory_estimator is None:
                    survivors.append((config, None))
                    continue
                t0 = time.perf_counter()
                predicted = self.memory_estimator.predict_bytes(self.model,
                                                                config)
                ok = predicted <= margin * limit
                memory_s += time.perf_counter() - t0
                if ok:
                    survivors.append((config, predicted))
                else:
                    rejected += 1
            if survivors or self.memory_estimator is None or margin >= 1.0:
                break
            # The soft margin left nothing on the table (it can exclude
            # a lone configuration sitting just under the limit, e.g.
            # very large batches on a full memory envelope).  Degrade
            # gracefully: retry against the raw physical limit.
            margin = 1.0
            rejected = 0

        best_effort = False
        if not survivors and self.memory_estimator is not None and configs:
            # Even the raw limit admits nothing by the estimator's
            # account (its error can push a lone near-limit candidate
            # over).  A practical tool still answers: recommend the
            # least-memory candidates, flagged as best-effort.
            best_effort = True
            by_memory = sorted(
                configs,
                key=lambda c: self.memory_estimator.predict_bytes(self.model, c),
            )
            survivors = [
                (c, self.memory_estimator.predict_bytes(self.model, c))
                for c in by_memory[:3]
            ]

        # First pass: naive-mapping latency for every survivor.
        scored: list[RankedConfig] = []
        for config, predicted in survivors:
            mapping = self._sequential(config)
            latency = self.estimate_latency(config, mapping)
            scored.append(RankedConfig(
                config=config, mapping=mapping, estimated_latency_s=latency,
                estimated_memory_bytes=predicted,
                memory_ok=not best_effort,
            ))
        scored.sort(key=lambda r: r.estimated_latency_s)

        # Second pass: fine-grained worker dedication on the leaders.
        annealing_s = 0.0
        if self.options.use_worker_dedication and scored:
            n_refine = len(scored) if self.options.sa_top_k == 0 \
                else min(self.options.sa_top_k, len(scored))
            refined = []
            for rank, entry in enumerate(scored[:n_refine]):
                sa_options = SAOptions(
                    time_limit_s=self.options.sa.time_limit_s,
                    max_iterations=self.options.sa.max_iterations,
                    alpha=self.options.sa.alpha,
                    initial_temperature=self.options.sa.initial_temperature,
                    moves=self.options.sa.moves,
                    seed=self.options.seed + rank,
                )
                result = anneal_mapping(
                    entry.mapping,
                    lambda m, c=entry.config: pipette_latency(
                        self.model, c, m, self.bandwidth, self.profile),
                    sa_options,
                )
                annealing_s += result.elapsed_s
                refined.append(RankedConfig(
                    config=entry.config, mapping=result.mapping,
                    estimated_latency_s=result.value,
                    estimated_memory_bytes=entry.estimated_memory_bytes,
                    memory_ok=entry.memory_ok,
                ))
            scored = sorted(refined + scored[n_refine:],
                            key=lambda r: r.estimated_latency_s)

        return PipetteResult(
            best=scored[0] if scored else None,
            ranked=scored,
            rejected_oom=rejected,
            memory_check_s=memory_s,
            annealing_s=annealing_s,
            total_s=time.perf_counter() - t_start,
        )

    # ------------------------------------------------------------- internal

    def _sequential(self, config: ParallelConfig) -> Mapping:
        grid = WorkerGrid(pp=config.pp, tp=config.tp, dp=config.dp)
        return sequential_mapping(grid, self.cluster)


def pipette_l(cluster: ClusterSpec, model: TransformerConfig,
              bandwidth: BandwidthMatrix, profile: ComputeProfile,
              memory_estimator: MemoryEstimator,
              options: PipetteOptions | None = None) -> PipetteConfigurator:
    """The PPT-L ablation: latency + memory estimators, naive mapping."""
    base = options or PipetteOptions()
    return PipetteConfigurator(
        cluster, model, bandwidth, profile, memory_estimator,
        options=PipetteOptions(
            use_worker_dedication=False,
            sa=base.sa, sa_top_k=base.sa_top_k,
            max_micro_batch=base.max_micro_batch, seed=base.seed,
        ),
    )


def pipette_lf(cluster: ClusterSpec, model: TransformerConfig,
               bandwidth: BandwidthMatrix, profile: ComputeProfile,
               memory_estimator: MemoryEstimator,
               options: PipetteOptions | None = None) -> PipetteConfigurator:
    """The full Pipette (PPT-LF): adds fine-grained worker dedication."""
    base = options or PipetteOptions()
    return PipetteConfigurator(
        cluster, model, bandwidth, profile, memory_estimator,
        options=PipetteOptions(
            use_worker_dedication=True,
            sa=base.sa, sa_top_k=base.sa_top_k,
            max_micro_batch=base.max_micro_batch, seed=base.seed,
        ),
    )

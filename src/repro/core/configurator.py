"""Algorithm 1: the end-to-end Pipette search procedure.

Given the GPU count, global batch size and per-GPU memory limit,
Pipette:

1. profiles the actual bandwidth matrix (done by the caller via
   :class:`repro.cluster.profiler.NetworkProfiler`),
2. enumerates ``(pp, tp, dp)`` factorizations and microbatch sizes,
3. skips configurations the memory estimator flags as OOM (line 7),
4. for each survivor, searches worker-to-GPU mappings with simulated
   annealing, scoring each mapping with the latency estimator
   (lines 9-15),
5. returns the best configuration, mapping, and estimated latency.

The per-candidate work of steps 3-4 is factored into *pure, picklable
work units* (:func:`memory_check_unit`, :func:`score_unit`,
:func:`refine_unit`) operating on a :class:`SearchContext`.  The serial
path simply calls them inline; :mod:`repro.service.executor` fans the
same units out over a ``concurrent.futures`` pool.  Each refinement
unit carries an explicit per-candidate seed, so parallel and serial
searches produce identical results.

The ablation variants of the paper's Fig. 6 are factory functions:
:func:`pipette_l` (latency estimator only, naive mapping — "PPT-L")
and :func:`pipette_lf` (plus fine-grained worker dedication —
"PPT-LF").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.topology import ClusterSpec
from repro.core.annealing import SAOptions, anneal_mapping
from repro.core.latency_kernel import LatencyKernel, pipette_kernel
from repro.core.latency_model import pipette_latency
from repro.core.memory_estimator import MemoryEstimator
from repro.model.transformer import TransformerConfig
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import TRACER
from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.parallel.mapping import Mapping, WorkerGrid, sequential_mapping
from repro.profiling.profile_run import ComputeProfile

#: Schema version of the ``to_payload`` serializations below.  Bump it
#: whenever a payload's shape changes; readers refuse versions they do
#: not understand rather than silently mis-deserializing.
#: Version history: 1 — pre-schedule payloads (configs carry no
#: ``schedule`` key and are implicitly 1F1B); 2 — configs record their
#: pipeline schedule; 3 — ranked entries carry their annealing
#: portfolio (runner-up mappings for warm re-plans).
PAYLOAD_VERSION = 3

#: Payload versions :meth:`PipetteResult.from_payload` can read.
#: Version-1 configs rehydrate as 1F1B via
#: :meth:`repro.parallel.config.ParallelConfig.from_payload`; versions
#: 1 and 2 rehydrate with empty portfolios.
READABLE_PAYLOAD_VERSIONS = (1, 2, PAYLOAD_VERSION)


@dataclass(frozen=True)
class PipetteOptions:
    """Behaviour switches of the search.

    Attributes:
        use_worker_dedication: run the SA mapping search (PPT-LF);
            otherwise keep the framework's sequential mapping (PPT-L).
        sa: annealing budget/hyper-parameters per refined candidate.
            The default carries ``portfolio_k=4`` so every refined
            candidate ships runner-up mappings for elastic warm
            starts; collection is pure bookkeeping
            (:class:`~repro.core.annealing.SAResult`).
        sa_top_k: run SA only on this many of the best candidates (by
            naive-mapping latency).  Algorithm 1 anneals every
            candidate; bounding the refined set is an optimization
            that leaves results unchanged in practice because SA gains
            a few percent and cannot rescue a configuration that
            starts far behind.  Set to 0 to anneal every candidate.
            The delta-evaluated kernel path made refinement cheap
            enough to widen the default from 4 to 8.
        max_micro_batch: largest microbatch swept (the paper uses 8).
        seed: seed stream for the annealer.
    """

    use_worker_dedication: bool = True
    sa: SAOptions = field(default_factory=lambda: SAOptions(
        max_iterations=3000, portfolio_k=4))
    sa_top_k: int = 8
    max_micro_batch: int = 8
    seed: int = 0


@dataclass(frozen=True)
class RankedConfig:
    """One evaluated configuration in the result ranking.

    Attributes:
        config: the parallelization.
        mapping: worker placement used for the latency estimate.
        estimated_latency_s: latency-estimator output.
        estimated_memory_bytes: memory-estimator output (``None`` when
            the search ran without a memory estimator).
        memory_ok: whether the memory check passed; ``False`` marks a
            best-effort recommendation (the estimator believed nothing
            fits and returned the least-memory candidates anyway).
        portfolio: runner-up mappings from the annealing portfolio
            (:attr:`~repro.core.annealing.SAResult.portfolio` minus its
            leading entry, which *is* :attr:`mapping`), best first.
            Elastic re-plans polish the best survivor of these instead
            of a single plan; empty for unrefined entries and for
            payloads predating version 3.
    """

    config: ParallelConfig
    mapping: Mapping
    estimated_latency_s: float
    estimated_memory_bytes: float | None
    memory_ok: bool
    portfolio: "tuple[Mapping, ...]" = ()

    @property
    def sort_key(self) -> tuple:
        """Deterministic ranking key: latency, then configuration shape.

        Symmetric clusters produce exact latency ties; breaking them on
        ``(pp, tp, dp, micro_batch, schedule)`` keeps rankings stable
        across runs and across serial/parallel worker pools.
        """
        return (self.estimated_latency_s, self.config.pp, self.config.tp,
                self.config.dp, self.config.micro_batch,
                self.config.schedule)

    def to_payload(self) -> dict:
        """JSON-serializable form (see :mod:`repro.service.store`).

        The mapping's cluster is *not* embedded; the enclosing
        :meth:`PipetteResult.to_payload` record carries it once.
        """
        return {"config": self.config.to_payload(),
                "mapping": self.mapping.to_payload(),
                "estimated_latency_s": self.estimated_latency_s,
                "estimated_memory_bytes": self.estimated_memory_bytes,
                "memory_ok": self.memory_ok,
                "portfolio": [m.to_payload() for m in self.portfolio]}

    @classmethod
    def from_payload(cls, payload: dict,
                     cluster: ClusterSpec) -> "RankedConfig":
        """Inverse of :meth:`to_payload`, rebinding to ``cluster``.

        Version-1/2 payloads carry no ``portfolio`` key; they
        rehydrate with an empty one (single-survivor warm starts,
        exactly the pre-portfolio behaviour).
        """
        return cls(
            config=ParallelConfig.from_payload(payload["config"]),
            mapping=Mapping.from_payload(payload["mapping"], cluster),
            estimated_latency_s=payload["estimated_latency_s"],
            estimated_memory_bytes=payload["estimated_memory_bytes"],
            memory_ok=payload["memory_ok"],
            portfolio=tuple(Mapping.from_payload(p, cluster)
                            for p in payload.get("portfolio", ())),
        )


@dataclass
class PipetteResult:
    """Outcome of one search.

    Attributes:
        best: best feasible configuration (``None`` when nothing fits).
        ranked: feasible configurations sorted by estimated latency.
        rejected_oom: configurations the memory estimator filtered out.
        memory_check_s: wall-clock spent in the memory estimator
            (Table II row "Memory Estimation").
        annealing_s: wall-clock spent in SA (Table II row "Simulated
            Annealing"); under a parallel executor this is the *sum*
            of per-candidate annealing times, i.e. CPU time.
        total_s: end-to-end search time.
    """

    best: RankedConfig | None
    ranked: list[RankedConfig]
    rejected_oom: int
    memory_check_s: float
    annealing_s: float
    total_s: float

    def to_payload(self) -> dict:
        """Versioned, JSON-serializable form of a finished search.

        The cluster every mapping is bound to is embedded exactly once
        (all entries of one result share it), so the payload is fully
        self-contained: :meth:`from_payload` needs nothing but the
        dict.  ``best`` is stored as an index into ``ranked`` — it is
        ``ranked[0]`` by construction — preserving the identity
        relation across a round trip.
        """
        cluster = self.ranked[0].mapping.cluster if self.ranked else None
        best_index = next((i for i, entry in enumerate(self.ranked)
                           if entry is self.best), None)
        payload = {
            "version": PAYLOAD_VERSION,
            "cluster": None if cluster is None else cluster.to_payload(),
            "ranked": [entry.to_payload() for entry in self.ranked],
            "best_index": best_index,
            "rejected_oom": self.rejected_oom,
            "memory_check_s": self.memory_check_s,
            "annealing_s": self.annealing_s,
            "total_s": self.total_s,
        }
        if self.best is not None and best_index is None:
            payload["best"] = self.best.to_payload()
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "PipetteResult":
        """Inverse of :meth:`to_payload`."""
        version = payload.get("version")
        if version not in READABLE_PAYLOAD_VERSIONS:
            readable = ", ".join(str(v) for v in READABLE_PAYLOAD_VERSIONS)
            raise ValueError(
                f"unsupported PipetteResult payload version {version!r} "
                f"(this build reads versions {readable})"
            )
        cluster = None if payload["cluster"] is None \
            else ClusterSpec.from_payload(payload["cluster"])
        ranked = [RankedConfig.from_payload(entry, cluster)
                  for entry in payload["ranked"]]
        if payload["best_index"] is not None:
            best = ranked[payload["best_index"]]
        elif payload.get("best") is not None:
            best = RankedConfig.from_payload(payload["best"], cluster)
        else:
            best = None
        return cls(best=best, ranked=ranked,
                   rejected_oom=payload["rejected_oom"],
                   memory_check_s=payload["memory_check_s"],
                   annealing_s=payload["annealing_s"],
                   total_s=payload["total_s"])


# ---------------------------------------------------------------- work units


@dataclass(frozen=True)
class SearchContext:
    """Everything a per-candidate work unit needs, in picklable form.

    Work units receive the context plus a chunk of candidates, so one
    search can fan its candidate set over thread or process pools; the
    context crosses the process boundary once per chunk.

    ``record_flight`` asks :func:`refine_unit` to ride a flight
    recorder along each candidate's anneal and ship the telemetry
    payload home.  It is excluded from comparison (``compare=False``)
    so turning tracing on can never change a request fingerprint or
    split the plan cache's key space.
    """

    cluster: ClusterSpec
    model: TransformerConfig
    bandwidth: BandwidthMatrix
    profile: ComputeProfile
    memory_estimator: MemoryEstimator | None
    sa: SAOptions
    record_flight: bool = field(default=False, compare=False)


def naive_mapping(ctx: SearchContext, config: ParallelConfig) -> Mapping:
    """The framework-default sequential placement for ``config``."""
    grid = WorkerGrid(pp=config.pp, tp=config.tp, dp=config.dp)
    return sequential_mapping(grid, ctx.cluster)


def candidate_latency(ctx: SearchContext, config: ParallelConfig,
                      mapping: Mapping) -> float:
    """Latency-estimator value of one (configuration, mapping) pair.

    For a single evaluation the reference model is the right tool;
    callers that score *many* mappings of one configuration (the SA
    refinement, the warm re-plan polish) should compile a
    :func:`candidate_kernel` instead and amortize its precomputation.
    """
    return pipette_latency(ctx.model, config, mapping, ctx.bandwidth,
                           ctx.profile)


def candidate_kernel(ctx: SearchContext,
                     config: ParallelConfig) -> LatencyKernel:
    """The vectorized objective for ``config``'s mapping search.

    Bit-identical to :func:`candidate_latency` on every mapping (see
    :mod:`repro.core.latency_kernel`), but evaluations after the one-off
    precomputation are an order of magnitude cheaper — this is what the
    annealer's hot loop runs against.
    """
    return pipette_kernel(ctx.model, config, ctx.cluster, ctx.bandwidth,
                          ctx.profile)


def memory_check_unit(payload: "tuple[SearchContext, tuple[ParallelConfig, ...]]"
                      ) -> list[float]:
    """Work unit: predicted per-GPU memory for a chunk of configurations."""
    ctx, configs = payload
    return [ctx.memory_estimator.predict_bytes(ctx.model, config)
            for config in configs]


def score_unit(payload: "tuple[SearchContext, tuple]") -> list[RankedConfig]:
    """Work unit: naive-mapping latency for a chunk of survivors.

    Each item is ``(config, predicted_bytes | None, memory_ok)``.
    """
    ctx, items = payload
    out = []
    for config, predicted, memory_ok in items:
        mapping = naive_mapping(ctx, config)
        out.append(RankedConfig(
            config=config, mapping=mapping,
            estimated_latency_s=candidate_latency(ctx, config, mapping),
            estimated_memory_bytes=predicted,
            memory_ok=memory_ok,
        ))
    return out


def refine_unit(payload: "tuple[SearchContext, tuple]"
                ) -> "list[tuple[RankedConfig, float, dict | None]]":
    """Work unit: SA worker dedication for a chunk of leaders.

    Each item is ``(entry, seed)``; the explicit seed (assigned from
    the entry's rank in the deterministically sorted leaderboard) makes
    the result independent of which pool worker runs the unit.
    Returns ``(refined entry, annealing seconds, flight payload)``
    triples, where the flight payload is the candidate's
    :meth:`~repro.obs.recorder.FlightRecorder.to_payload` telemetry
    when ``ctx.record_flight`` is set and ``None`` otherwise — a plain
    dict, so it crosses a process pool's pickle boundary like the rest
    of the result.

    Each entry's annealing runs against a compiled
    :func:`candidate_kernel`; the kernel's bit-identical guarantee
    keeps serial, thread-pool, and process-pool refinements — and any
    plans cached from before the kernel existed — byte-identical.  The
    flight recorder observes without touching the RNG, so
    ``record_flight`` never changes the refined mappings either.
    """
    ctx, items = payload
    out = []
    for entry, seed in items:
        recorder = FlightRecorder() if ctx.record_flight else None
        result = anneal_mapping(
            entry.mapping,
            candidate_kernel(ctx, entry.config),
            ctx.sa.with_seed(seed),
            recorder=recorder,
        )
        out.append((RankedConfig(
            config=entry.config, mapping=result.mapping,
            estimated_latency_s=result.value,
            estimated_memory_bytes=entry.estimated_memory_bytes,
            memory_ok=entry.memory_ok,
            portfolio=tuple(m for m, _ in result.portfolio[1:]),
        ), result.elapsed_s,
            None if recorder is None else recorder.to_payload()))
    return out


def even_chunks(items: "list", n_chunks: int) -> "list[tuple]":
    """Split ``items`` into at most ``n_chunks`` contiguous tuples."""
    n_chunks = max(1, min(int(n_chunks), len(items)))
    size, extra = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(tuple(items[start:end]))
        start = end
    return chunks


def run_units(fn, ctx: SearchContext, items: "list", executor=None) -> list:
    """Map a work unit over ``items``, inline or via an executor.

    ``executor`` is anything exposing ``map(fn, payloads)`` plus an
    ``n_workers`` attribute (see
    :class:`repro.service.executor.CandidateExecutor`); ``None`` runs
    the unit inline.  Results are flattened back into item order, so
    the two paths are interchangeable.
    """
    items = list(items)
    if not items:
        return []
    if executor is None:
        return list(fn((ctx, tuple(items))))
    chunks = even_chunks(items, getattr(executor, "n_workers", 1))
    out: list = []
    for chunk_result in executor.map(fn, [(ctx, chunk) for chunk in chunks]):
        out.extend(chunk_result)
    return out


# -------------------------------------------------------------- configurator


class PipetteConfigurator:
    """The Pipette automatic configurator (Algorithm 1).

    Args:
        cluster: nominal cluster description.
        model: architecture to train.
        bandwidth: *profiled* bandwidth matrix ``BW`` (line 1).
        profile: profiled compute times for this model on this GPU.
        memory_estimator: fitted estimator; ``None`` disables the
            memory check (not recommended; exists for ablations).
        options: search behaviour.
    """

    def __init__(self, cluster: ClusterSpec, model: TransformerConfig,
                 bandwidth: BandwidthMatrix, profile: ComputeProfile,
                 memory_estimator: MemoryEstimator | None = None,
                 options: PipetteOptions | None = None) -> None:
        if bandwidth.n_gpus != cluster.n_gpus:
            raise ValueError(
                f"bandwidth matrix covers {bandwidth.n_gpus} GPUs but the "
                f"cluster has {cluster.n_gpus}"
            )
        self.cluster = cluster
        self.model = model
        self.bandwidth = bandwidth
        self.profile = profile
        self.memory_estimator = memory_estimator
        self.options = options or PipetteOptions()

    # ------------------------------------------------------------------ api

    def context(self) -> SearchContext:
        """The picklable work-unit context of this configurator.

        Flight recording follows the process-wide tracer switch: a
        traced search asks its refinement units for telemetry, an
        untraced one runs the unmodified fast path.
        """
        return SearchContext(
            cluster=self.cluster, model=self.model, bandwidth=self.bandwidth,
            profile=self.profile, memory_estimator=self.memory_estimator,
            sa=self.options.sa,
            record_flight=TRACER.enabled,
        )

    def estimate_latency(self, config: ParallelConfig,
                         mapping: Mapping | None = None) -> float:
        """Latency-estimator value for one configuration/mapping."""
        if mapping is None:
            mapping = self._sequential(config)
        return pipette_latency(self.model, config, mapping, self.bandwidth,
                               self.profile)

    def search(self, global_batch: int,
               memory_limit_bytes: float | None = None,
               micro_batches: "list[int] | None" = None,
               schedules: "tuple[str, ...] | list[str] | None" = None,
               executor=None) -> PipetteResult:
        """Run Algorithm 1 and return the ranked feasible configurations.

        Args:
            global_batch: ``bs_global``.
            memory_limit_bytes: ``M_limit``; defaults to the cluster
                GPU's physical memory.
            micro_batches: restrict the swept microbatch sizes (the
                sensitivity studies of Fig. 9 pin ``bs_micro``).
            schedules: pipeline-schedule names to sweep as an extra
                search dimension; defaults to 1F1B only (the paper's
                assumption), which reproduces the pre-schedule search
                bit for bit.
            executor: optional candidate executor (see
                :func:`run_units`); fans the memory check, naive
                scoring and SA refinement over a worker pool.  Results
                are identical to the serial search.
        """
        t_start = time.perf_counter()
        limit = memory_limit_bytes if memory_limit_bytes is not None \
            else self.cluster.gpu_memory_bytes
        configs = enumerate_parallel_configs(
            self.cluster.n_gpus, global_batch,
            gpus_per_node=self.cluster.gpus_per_node,
            n_layers=self.model.n_layers,
            micro_batches=micro_batches,
            max_micro_batch=self.options.max_micro_batch,
            schedules=schedules,
        )
        ctx = self.context()

        # Memory pass (line 7): predict every candidate exactly once —
        # the margin relaxation and the best-effort fallback below
        # reuse the same predictions instead of re-running the MLP.
        memory_s = 0.0
        rejected = 0
        survivors: "list[tuple[ParallelConfig, float | None, bool]]"
        if self.memory_estimator is None:
            survivors = [(config, None, True) for config in configs]
        else:
            t0 = time.perf_counter()
            with TRACER.span("search.memory_check",
                             candidates=len(configs)):
                predicted = run_units(memory_check_unit, ctx, configs,
                                      executor)
            memory_s = time.perf_counter() - t0
            margin = self.memory_estimator.soft_margin
            survivors = [(c, p, True) for c, p in zip(configs, predicted)
                         if p <= margin * limit]
            if not survivors and margin < 1.0:
                # The soft margin left nothing on the table (it can
                # exclude a lone configuration sitting just under the
                # limit, e.g. very large batches on a full memory
                # envelope).  Degrade gracefully: retry against the
                # raw physical limit.
                survivors = [(c, p, True) for c, p in zip(configs, predicted)
                             if p <= limit]
            rejected = len(configs) - len(survivors)
            if not survivors and configs:
                # Even the raw limit admits nothing by the estimator's
                # account (its error can push a lone near-limit
                # candidate over).  A practical tool still answers:
                # recommend the least-memory candidates, flagged as
                # best-effort (``memory_ok=False``).
                by_memory = sorted(zip(configs, predicted),
                                   key=lambda cp: cp[1])
                survivors = [(c, p, False) for c, p in by_memory[:3]]

        # First pass: naive-mapping latency for every survivor.
        with TRACER.span("search.score", candidates=len(survivors)):
            scored = run_units(score_unit, ctx, survivors, executor)
        scored.sort(key=lambda r: r.sort_key)

        # Second pass: fine-grained worker dedication on the leaders.
        annealing_s = 0.0
        if self.options.use_worker_dedication and scored:
            n_refine = len(scored) if self.options.sa_top_k == 0 \
                else min(self.options.sa_top_k, len(scored))
            entries = [(entry, self.options.seed + rank)
                       for rank, entry in enumerate(scored[:n_refine])]
            with TRACER.span("search.refine",
                             candidates=len(entries)) as refine_span:
                refined_rows = run_units(refine_unit, ctx, entries, executor)
                for entry, elapsed, flight in refined_rows:
                    self._record_candidate(refine_span, entry, elapsed,
                                           flight)
            annealing_s = sum(elapsed for _, elapsed, _ in refined_rows)
            refined = [entry for entry, _, _ in refined_rows]
            scored = sorted(refined + scored[n_refine:],
                            key=lambda r: r.sort_key)

        return PipetteResult(
            best=scored[0] if scored else None,
            ranked=scored,
            rejected_oom=rejected,
            memory_check_s=memory_s,
            annealing_s=annealing_s,
            total_s=time.perf_counter() - t_start,
        )

    # ------------------------------------------------------------- internal

    @staticmethod
    def _record_candidate(refine_span, entry: RankedConfig,
                          elapsed_s: float, flight: "dict | None") -> None:
        """Synthesize one candidate's child span from its returned telemetry.

        The anneal itself may have run in another process, so its span
        cannot be opened there; the work unit reports elapsed time and
        the flight payload home, and the parent back-dates a
        ``search.candidate`` span under the refine phase.
        """
        attributes = {
            "config": f"pp{entry.config.pp}·tp{entry.config.tp}"
                      f"·dp{entry.config.dp}·mb{entry.config.micro_batch}",
            "schedule": entry.config.schedule,
            "estimated_latency_s": entry.estimated_latency_s,
        }
        if flight is not None:
            attributes["anneal_iterations"] = flight["iterations"]
            attributes["anneal_evaluations"] = flight["evaluations"]
            attributes["anneal_delta_evaluations"] = \
                flight.get("delta_evaluations", 0)
            attributes["exit_reason"] = flight["exit_reason"]
            attributes["flight"] = flight
        TRACER.record_span("search.candidate", elapsed_s,
                           parent=refine_span, **attributes)

    def _sequential(self, config: ParallelConfig) -> Mapping:
        grid = WorkerGrid(pp=config.pp, tp=config.tp, dp=config.dp)
        return sequential_mapping(grid, self.cluster)


def pipette_l(cluster: ClusterSpec, model: TransformerConfig,
              bandwidth: BandwidthMatrix, profile: ComputeProfile,
              memory_estimator: MemoryEstimator,
              options: PipetteOptions | None = None) -> PipetteConfigurator:
    """The PPT-L ablation: latency + memory estimators, naive mapping."""
    base = options or PipetteOptions()
    return PipetteConfigurator(
        cluster, model, bandwidth, profile, memory_estimator,
        options=replace(base, use_worker_dedication=False),
    )


def pipette_lf(cluster: ClusterSpec, model: TransformerConfig,
               bandwidth: BandwidthMatrix, profile: ComputeProfile,
               memory_estimator: MemoryEstimator,
               options: PipetteOptions | None = None) -> PipetteConfigurator:
    """The full Pipette (PPT-LF): adds fine-grained worker dedication."""
    base = options or PipetteOptions()
    return PipetteConfigurator(
        cluster, model, bandwidth, profile, memory_estimator,
        options=replace(base, use_worker_dedication=True),
    )

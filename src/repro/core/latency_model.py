"""Pipeline latency models: Pipette's (Eqs. 3-6) and the prior art's (Eq. 1).

The two models share the profiled computation time ``C`` but differ in
exactly the ways the paper diagnoses (§II-B, §V):

1. **Hidden critical path** — under the memory-efficient 1F1B schedule
   the critical path re-crosses the whole pipeline once every ``pp``
   microbatches, so the bubble term (compute *and* inter-stage
   communication) multiplies by ``n_mb / pp`` (Eq. 3).  The prior-art
   model (Eq. 1) pays the inter-stage communication only once.
2. **Heterogeneous links** — Pipette evaluates the communication terms
   against the *profiled* bandwidth matrix of the actual mapping
   (Eqs. 5-6); prior art plugs in the document-specified numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.fabric import BandwidthMatrix
from repro.model.memory import stage_layer_count
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.mapping import Mapping
from repro.parallel.messages import dp_message_bytes, pp_message_bytes, tp_comm_time
from repro.profiling.profile_run import ComputeProfile
from repro.units import GB


@dataclass(frozen=True)
class LatencyModelOptions:
    """Ablation switches for the latency model.

    Attributes:
        hidden_critical_path: multiply the bubble term by ``n_mb/pp``
            (Pipette, Eq. 3) instead of paying inter-stage
            communication once (prior art, Eq. 1).
        per_link_bandwidth: evaluate Eqs. (5)-(6) against the supplied
            (profiled) matrix; prior art would hand in the nominal one.
        collective_efficiency: attained fraction of the alpha-beta
            all-reduce model for the data-parallel term.  Pipette
            profiles the collective (NCCL-tests) and therefore knows
            the attained value; prior art assumes the ideal 1.0.
        dp_exposure_aware: account for *every* stage's data-parallel
            all-reduce, net of the drain slack it hides behind
            (stage ``s`` finishes its backwards about ``s`` backward
            passes before stage 0, so only the excess of its
            all-reduce over that slack lands on the critical path).
            Eq. (6) literally models only the first stage; exposure
            awareness extends the same reasoning so the annealer
            cannot "hide" slow links by moving them to stage 1's
            group.  Off reproduces the literal paper model.
    """

    hidden_critical_path: bool = True
    per_link_bandwidth: bool = True
    collective_efficiency: float = 1.0
    dp_exposure_aware: bool = False


def _compute_and_tp(model: TransformerConfig, config: ParallelConfig,
                    mapping: Mapping, bandwidth: BandwidthMatrix,
                    profile: ComputeProfile) -> float:
    """The scalar ``C + T_TP_com`` of the latency equations.

    The straggler stage sets the pace, so the maximum over stages and
    over mapped TP groups is used.
    """
    c = profile.max_stage_compute_time(config.pp, config.tp, config.micro_batch)
    tp_factor = 1.0
    if config.recompute:
        # Recomputation re-runs the forward pass during backward:
        # 4/3 of the compute and 3/2 of the tensor-parallel traffic.
        c *= 4.0 / 3.0
        tp_factor = 1.5
    if config.tp == 1:
        return c
    worst_tp = 0.0
    max_layers = stage_layer_count(model.n_layers, config.pp, 0)
    for x in (0, config.pp - 1) if config.pp > 1 else (0,):
        for z in range(config.dp):
            group = mapping.tp_group(x, z)
            bw = bandwidth.min_over_group(group)
            t = tp_comm_time(model, max_layers, config.micro_batch,
                             config.tp, bw)
            worst_tp = max(worst_tp, t)
    return c + tp_factor * worst_tp


def _pp_path_time(model: TransformerConfig, config: ParallelConfig,
                  mapping: Mapping, bandwidth: BandwidthMatrix) -> float:
    """Eq. (5): slowest end-to-end pipeline communication path.

    ``max over (y, z)`` of the per-chain sum of ``2 msg_PP / B`` over
    adjacent stages — the factor 2 covers the forward activation and
    backward gradient crossings.
    """
    if config.pp == 1:
        return 0.0
    msg = pp_message_bytes(model, config.micro_batch)
    worst = 0.0
    for z in range(config.dp):
        for y in range(config.tp):
            total = 0.0
            for x in range(config.pp - 1):
                g1 = mapping.gpu(x, y, z)
                g2 = mapping.gpu(x + 1, y, z)
                total += 2.0 * msg / (bandwidth.between(g1, g2) * GB)
            worst = max(worst, total)
    return worst


def _stage_dp_time(model: TransformerConfig, config: ParallelConfig,
                   mapping: Mapping, bandwidth: BandwidthMatrix,
                   stage: int) -> float:
    """Eq. (6) for one stage: hierarchical-ring all-reduce duration.

    Two intra-node all-reduces plus one inter-node all-reduce, each
    gated by the slowest participating link; worst tensor group.
    """
    if config.dp == 1:
        return 0.0
    msg = dp_message_bytes(model, config.pp, config.tp, stage=stage)
    cluster = mapping.cluster
    worst = 0.0
    for y in range(config.tp):
        group = mapping.dp_group(stage, y)
        by_node: dict[int, list[int]] = {}
        for g in group:
            by_node.setdefault(cluster.node_of(g), []).append(g)
        intra = 0.0
        for members in by_node.values():
            k = len(members)
            if k > 1:
                bw = bandwidth.min_over_group(members)
                intra = max(intra, 4.0 * (k - 1) * msg / (k * bw * GB))
        inter = 0.0
        nodes = sorted(by_node)
        k = len(nodes)
        if k > 1:
            leaders = [by_node[n][0] for n in nodes]
            bw = bandwidth.min_over_group(leaders)
            inter = 2.0 * (k - 1) * msg / (k * bw * GB)
        worst = max(worst, intra + inter)
    return worst


def _dp_time(model: TransformerConfig, config: ParallelConfig,
             mapping: Mapping, bandwidth: BandwidthMatrix,
             backward_slack_s: float = 0.0,
             exposure_aware: bool = False) -> float:
    """Critical-path data-parallel communication time.

    The first pipeline stage's all-reduce is fully exposed (its
    backward finishes last — Eq. 6).  With ``exposure_aware``, later
    stages' all-reduces are also charged for whatever exceeds their
    drain slack of ``stage * backward_slack_s``.
    """
    if config.dp == 1:
        return 0.0
    exposed = _stage_dp_time(model, config, mapping, bandwidth, 0)
    if exposure_aware:
        for stage in range(1, config.pp):
            t = _stage_dp_time(model, config, mapping, bandwidth, stage)
            exposed = max(exposed, t - stage * backward_slack_s)
    return exposed


def latency_with_options(model: TransformerConfig, config: ParallelConfig,
                         mapping: Mapping, bandwidth: BandwidthMatrix,
                         profile: ComputeProfile,
                         options: LatencyModelOptions) -> float:
    """Evaluate the latency model under explicit ablation options.

    With both options on this is :func:`pipette_latency`; with both
    off and the nominal matrix handed in it is
    :func:`prior_art_latency`.
    """
    pp, n_mb = config.pp, config.n_microbatches
    c_tp = _compute_and_tp(model, config, mapping, bandwidth, profile)
    t_pp = _pp_path_time(model, config, mapping, bandwidth)
    # A stage's backward pass is the drain slack unit: stage s finishes
    # about s backward passes before stage 0 does.
    backward_slack = 2.0 * c_tp / 3.0
    t_dp = _dp_time(model, config, mapping, bandwidth,
                    backward_slack_s=backward_slack,
                    exposure_aware=options.dp_exposure_aware) \
        / options.collective_efficiency

    if options.hidden_critical_path:
        # Eq. (3)-(4) generalized per schedule: the schedule's own
        # analytic critical time (for 1F1B, verbatim
        # ``T_bubble * (n_mb / pp) + T_straggler``), plus T_DP.
        from repro.sim.schedule import pipeline_critical_time

        critical = pipeline_critical_time(config.schedule, pp, n_mb,
                                          c_tp, t_pp)
        return critical + t_dp
    # Eq. (1): the inter-stage communication is paid only once.
    return (n_mb - 1) * c_tp + pp * c_tp + t_pp + t_dp


def pipette_latency(model: TransformerConfig, config: ParallelConfig,
                    mapping: Mapping, bandwidth: BandwidthMatrix,
                    profile: ComputeProfile) -> float:
    """Pipette's latency estimate ``T_Pipette`` (Eqs. 3-6).

    Args:
        bandwidth: the *profiled* bandwidth matrix (Algorithm 1 line 1).
    """
    from repro.sim.engine import DEFAULT_DP_EFFICIENCY

    return latency_with_options(
        model, config, mapping, bandwidth, profile,
        LatencyModelOptions(hidden_critical_path=True,
                            per_link_bandwidth=True,
                            collective_efficiency=DEFAULT_DP_EFFICIENCY,
                            dp_exposure_aware=True))


def prior_art_latency(model: TransformerConfig, config: ParallelConfig,
                      mapping: Mapping, nominal_bandwidth: BandwidthMatrix,
                      profile: ComputeProfile) -> float:
    """The prior-art estimate ``T_prev`` (Eq. 1), as AMP/Varuna compute it.

    Args:
        nominal_bandwidth: the document-specified matrix
            (:meth:`repro.cluster.fabric.Fabric.nominal_bandwidth`).
    """
    return latency_with_options(model, config, mapping, nominal_bandwidth,
                                profile,
                                LatencyModelOptions(hidden_critical_path=False,
                                                    per_link_bandwidth=False))

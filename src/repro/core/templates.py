"""Elastic pipeline templates: precomputed plans across node counts.

Pipette's elastic path (:mod:`repro.service.replan`) answers a node
failure with mapping surgery plus a warm re-anneal — milliseconds to
seconds of search on the critical recovery path.  Oobleck's insight is
that the post-failure configuration space is enumerable *before* any
failure happens: a cluster of homogeneous nodes can only shrink to a
node count ``n`` in a known range, so the best parallelization for
every ``n`` can be precomputed into a library of *pipeline templates*.
"Node died, what now" then becomes a library lookup, with the annealer
only polishing slot assignment onto the surviving nodes.

:class:`PipelineTemplateGenerator` enumerates feasible
:class:`PipelineTemplate`\\ s across node counts — each a ``(pp, tp,
dp, micro-batch, schedule)`` parallelization with its stage→layer
split, memory feasibility checked via the estimator and latency scored
through :meth:`repro.core.latency_kernel.LatencyKernel.evaluate_batch`
— deduplicated, ranked per node count, and collected into a versioned
:class:`TemplateLibrary`.  The per-node-count pipeline deliberately
mirrors :meth:`repro.core.configurator.PipetteConfigurator.search`
(same enumeration, same ranking key, same per-rank annealing seeds),
so a template hit reproduces what the cold search would have found —
the library trades storage for recovery-path latency, never answer
quality.

Node counts with *no* feasible template record an explicit
infeasibility reason instead of being silently absent, so "the library
does not cover n" and "n cannot host this model" stay distinguishable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.topology import ClusterSpec
from repro.core.configurator import (
    PipetteOptions,
    RankedConfig,
    SearchContext,
    candidate_kernel,
    memory_check_unit,
    refine_unit,
    run_units,
)
from repro.core.memory_estimator import MemoryEstimator
from repro.model.memory import stage_layer_count
from repro.model.transformer import TransformerConfig
from repro.obs.trace import TRACER
from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.parallel.mapping import Mapping, WorkerGrid, sequential_mapping
from repro.profiling.profile_run import ComputeProfile

#: Schema version of :meth:`TemplateLibrary.to_payload`.  Readers
#: refuse versions they do not understand rather than silently
#: mis-deserializing (same contract as
#: :data:`repro.core.configurator.PAYLOAD_VERSION`).
TEMPLATE_LIBRARY_VERSION = 1

#: Library payload versions :meth:`TemplateLibrary.from_payload` reads.
READABLE_TEMPLATE_VERSIONS = (TEMPLATE_LIBRARY_VERSION,)

#: Templates kept per node count.  The leader answers the failover;
#: the runner-ups survive request-side restrictions (a pinned
#: microbatch or schedule) that disqualify the leader.
DEFAULT_TEMPLATES_PER_COUNT = 4


def stage_layer_split(n_layers: int, pp: int) -> "tuple[int, ...]":
    """Layers hosted by each pipeline stage under the balanced split.

    The per-stage view of :func:`repro.model.memory.stage_layer_count`:
    the first ``n_layers % pp`` stages take one extra layer.
    """
    return tuple(stage_layer_count(n_layers, pp, s) for s in range(pp))


@dataclass(frozen=True)
class PipelineTemplate:
    """One precomputed parallelization for one node count.

    Attributes:
        n_nodes: node count this template was generated for.
        config: the parallelization (carries microbatch, global batch
            and pipeline schedule alongside ``pp``/``tp``/``dp``).
        stage_layers: layers hosted by each pipeline stage (length
            ``config.pp``), the balanced split the memory and latency
            estimators assume.
        block_to_slot: annealed block permutation on the
            ``n_nodes``-node cluster — the placement the generator's
            refinement found, stored so instantiation starts the
            polish from a learned mapping rather than the framework
            default.
        estimated_latency_s: latency-estimator value of that placement
            at generation time (against the generation-time fabric).
        estimated_memory_bytes: memory-estimator prediction (``None``
            when the library was generated without an estimator).
        memory_ok: whether the memory check passed.  Libraries only
            admit feasible templates, so this is ``True`` for every
            generated entry; it is carried explicitly so rehydrated
            instantiations can answer :class:`RankedConfig` contracts
            without guessing.
        portfolio: runner-up permutations from the generation anneal,
            best first — elastic polish candidates, exactly like
            :attr:`RankedConfig.portfolio`.
    """

    n_nodes: int
    config: ParallelConfig
    stage_layers: "tuple[int, ...]"
    block_to_slot: "tuple[int, ...]"
    estimated_latency_s: float
    estimated_memory_bytes: float | None
    memory_ok: bool
    portfolio: "tuple[tuple[int, ...], ...]" = ()

    @property
    def key(self) -> tuple:
        """Dedup identity: the parallelization shape, schedule included."""
        return (self.config.pp, self.config.tp, self.config.dp,
                self.config.micro_batch, self.config.schedule)

    @property
    def grid(self) -> WorkerGrid:
        """The worker grid this template's permutation indexes."""
        return WorkerGrid(pp=self.config.pp, tp=self.config.tp,
                          dp=self.config.dp)

    def instantiate(self, cluster: ClusterSpec) -> RankedConfig:
        """Bind the template onto a concrete surviving cluster.

        ``cluster`` must have exactly :attr:`n_nodes` nodes of the
        family the library was generated for; the stored permutation
        and portfolio rebind as :class:`~repro.parallel.mapping.Mapping`
        objects ready for the warm slot-assignment polish.
        """
        if cluster.n_nodes != self.n_nodes:
            raise ValueError(
                f"template was generated for {self.n_nodes} nodes but the "
                f"cluster has {cluster.n_nodes}"
            )
        grid = self.grid
        return RankedConfig(
            config=self.config,
            mapping=Mapping(grid, cluster,
                            np.array(self.block_to_slot, dtype=np.int64)),
            estimated_latency_s=self.estimated_latency_s,
            estimated_memory_bytes=self.estimated_memory_bytes,
            memory_ok=self.memory_ok,
            portfolio=tuple(
                Mapping(grid, cluster, np.array(perm, dtype=np.int64))
                for perm in self.portfolio),
        )

    def to_payload(self) -> dict:
        """JSON-serializable form (see :class:`TemplateLibrary`)."""
        return {
            "n_nodes": self.n_nodes,
            "config": self.config.to_payload(),
            "stage_layers": list(self.stage_layers),
            "block_to_slot": list(self.block_to_slot),
            "estimated_latency_s": self.estimated_latency_s,
            "estimated_memory_bytes": self.estimated_memory_bytes,
            "memory_ok": self.memory_ok,
            "portfolio": [list(perm) for perm in self.portfolio],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PipelineTemplate":
        """Inverse of :meth:`to_payload`."""
        return cls(
            n_nodes=payload["n_nodes"],
            config=ParallelConfig.from_payload(payload["config"]),
            stage_layers=tuple(payload["stage_layers"]),
            block_to_slot=tuple(payload["block_to_slot"]),
            estimated_latency_s=payload["estimated_latency_s"],
            estimated_memory_bytes=payload["estimated_memory_bytes"],
            memory_ok=payload["memory_ok"],
            portfolio=tuple(tuple(perm)
                            for perm in payload.get("portfolio", ())),
        )


@dataclass
class TemplateLibrary:
    """Ranked pipeline templates for every node count of a family.

    One library binds a ``(model, cluster family, global batch)``
    triple: every template inside it plans the same model at the same
    global batch on ``n`` nodes of the same node hardware.  Lookups
    that do not match the binding miss rather than answering for the
    wrong workload.

    Attributes:
        model_name: catalog name of the model the templates plan.
        cluster_name: name of the cluster family (the full-size spec
            the generator scaled down).
        gpus_per_node: GPUs per node of the family.
        global_batch: global batch every template was planned for.
        min_nodes / max_nodes: inclusive node-count range generated.
        templates: ranked (best-first) templates per covered node
            count.
        infeasible: explicit reason per *uncovered* node count in
            range — every ``n`` in ``[min_nodes, max_nodes]`` appears
            in exactly one of the two maps.
    """

    model_name: str
    cluster_name: str
    gpus_per_node: int
    global_batch: int
    min_nodes: int
    max_nodes: int
    templates: "dict[int, tuple[PipelineTemplate, ...]]" = \
        field(default_factory=dict)
    infeasible: "dict[int, str]" = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Total templates held, across all node counts."""
        return sum(len(entries) for entries in self.templates.values())

    @property
    def covered_counts(self) -> "tuple[int, ...]":
        """Node counts with at least one template, ascending."""
        return tuple(sorted(self.templates))

    def matches(self, model_name: str, global_batch: int) -> bool:
        """Whether a request for ``(model, batch)`` can use this library."""
        return (model_name == self.model_name
                and int(global_batch) == self.global_batch)

    def templates_for(self, n_nodes: int) -> "tuple[PipelineTemplate, ...]":
        """Ranked templates for ``n_nodes`` (empty when uncovered)."""
        return self.templates.get(int(n_nodes), ())

    def infeasible_reason(self, n_nodes: int) -> str | None:
        """Why ``n_nodes`` has no templates, when generation said so."""
        return self.infeasible.get(int(n_nodes))

    def lookup(self, n_nodes: int,
               micro_batches=None,
               schedules=None,
               memory_limit_bytes: float | None = None,
               ) -> PipelineTemplate | None:
        """Best template for ``n_nodes`` honoring request restrictions.

        Returns the highest-ranked template whose microbatch /
        schedule / predicted memory pass the caller's restrictions, or
        ``None`` (a miss) when the node count is uncovered or every
        template is disqualified.
        """
        micro = None if micro_batches is None \
            else {int(m) for m in micro_batches}
        sched = None if schedules is None else set(schedules)
        for template in self.templates_for(n_nodes):
            if micro is not None and template.config.micro_batch not in micro:
                continue
            if sched is not None and template.config.schedule not in sched:
                continue
            if memory_limit_bytes is not None \
                    and template.estimated_memory_bytes is not None \
                    and template.estimated_memory_bytes > memory_limit_bytes:
                continue
            return template
        return None

    def to_payload(self) -> dict:
        """Versioned, JSON-serializable form of the whole library."""
        return {
            "version": TEMPLATE_LIBRARY_VERSION,
            "model_name": self.model_name,
            "cluster_name": self.cluster_name,
            "gpus_per_node": self.gpus_per_node,
            "global_batch": self.global_batch,
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "templates": {str(n): [t.to_payload() for t in entries]
                          for n, entries in sorted(self.templates.items())},
            "infeasible": {str(n): reason for n, reason
                           in sorted(self.infeasible.items())},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TemplateLibrary":
        """Inverse of :meth:`to_payload`; refuses unknown versions."""
        version = payload.get("version")
        if version not in READABLE_TEMPLATE_VERSIONS:
            readable = ", ".join(str(v) for v in READABLE_TEMPLATE_VERSIONS)
            raise ValueError(
                f"unsupported TemplateLibrary payload version {version!r} "
                f"(this build reads versions {readable})"
            )
        return cls(
            model_name=payload["model_name"],
            cluster_name=payload["cluster_name"],
            gpus_per_node=payload["gpus_per_node"],
            global_batch=payload["global_batch"],
            min_nodes=payload["min_nodes"],
            max_nodes=payload["max_nodes"],
            templates={int(n): tuple(PipelineTemplate.from_payload(t)
                                     for t in entries)
                       for n, entries in payload["templates"].items()},
            infeasible={int(n): reason
                        for n, reason in payload["infeasible"].items()},
        )

    def to_json(self) -> str:
        """Canonical JSON text — the byte-identical round-trip form.

        Sorted keys and fixed separators make serialization a pure
        function of content: ``TemplateLibrary.from_json(s).to_json()
        == s`` for any ``s`` this method produced.
        """
        return json.dumps(self.to_payload(), sort_keys=True,
                          separators=(",", ": "))

    @classmethod
    def from_json(cls, text: str) -> "TemplateLibrary":
        """Inverse of :meth:`to_json`."""
        return cls.from_payload(json.loads(text))


# ---------------------------------------------------------------- generation


def template_score_unit(payload: "tuple[SearchContext, tuple]"
                        ) -> "list[RankedConfig]":
    """Work unit: batched-kernel naive latency for a chunk of survivors.

    Each item is ``(config, predicted_bytes | None, memory_ok)`` —
    the same shape :func:`repro.core.configurator.score_unit` takes —
    but the latency comes from the compiled kernel's
    :meth:`~repro.core.latency_kernel.LatencyKernel.evaluate_batch`,
    which is bit-identical to the reference ``pipette_latency`` path,
    so template rankings and cold-search rankings stay comparable.
    Picklable, so generation fans over a
    :class:`~repro.service.executor.CandidateExecutor` like any other
    search pass.
    """
    ctx, items = payload
    out = []
    for config, predicted, memory_ok in items:
        grid = WorkerGrid(pp=config.pp, tp=config.tp, dp=config.dp)
        mapping = sequential_mapping(grid, ctx.cluster)
        kernel = candidate_kernel(ctx, config)
        perms = np.asarray(mapping.block_to_slot, dtype=np.int64)[None, :]
        out.append(RankedConfig(
            config=config, mapping=mapping,
            estimated_latency_s=float(kernel.evaluate_batch(perms)[0]),
            estimated_memory_bytes=predicted,
            memory_ok=memory_ok,
        ))
    return out


def _as_template(entry: RankedConfig, n_nodes: int,
                 n_layers: int) -> PipelineTemplate:
    """Freeze one ranked search entry into a storable template."""
    return PipelineTemplate(
        n_nodes=n_nodes,
        config=entry.config,
        stage_layers=stage_layer_split(n_layers, entry.config.pp),
        block_to_slot=tuple(int(s) for s in entry.mapping.block_to_slot),
        estimated_latency_s=entry.estimated_latency_s,
        estimated_memory_bytes=entry.estimated_memory_bytes,
        memory_ok=entry.memory_ok,
        portfolio=tuple(tuple(int(s) for s in m.block_to_slot)
                        for m in entry.portfolio),
    )


class PipelineTemplateGenerator:
    """Enumerate and rank pipeline templates across node counts.

    Args:
        model: architecture the templates plan.
        cluster: the *full-size* cluster family; smaller node counts
            are the same hardware scaled down
            (:meth:`~repro.cluster.topology.ClusterSpec.scaled_to`).
        bandwidth: profiled matrix of the full cluster.  Scaled-down
            scoring restricts it to the first ``n`` nodes' GPUs — the
            homogeneous-on-paper approximation; instantiation-time
            polish re-scores against the live survivor matrix anyway.
        profile: profiled compute times for this model on this GPU.
        memory_estimator: fitted estimator; ``None`` disables the
            memory check (every enumerated configuration is admitted).
        options: search behaviour — annealing budget, ``sa_top_k``
            refinement width and seeds, exactly as the cold search
            uses them.
    """

    def __init__(self, model: TransformerConfig, cluster: ClusterSpec,
                 bandwidth: BandwidthMatrix, profile: ComputeProfile,
                 memory_estimator: MemoryEstimator | None = None,
                 options: PipetteOptions | None = None) -> None:
        if bandwidth.n_gpus != cluster.n_gpus:
            raise ValueError(
                f"bandwidth matrix covers {bandwidth.n_gpus} GPUs but the "
                f"cluster has {cluster.n_gpus}"
            )
        self.model = model
        self.cluster = cluster
        self.bandwidth = bandwidth
        self.profile = profile
        self.memory_estimator = memory_estimator
        self.options = options or PipetteOptions()

    def generate(self, global_batch: int,
                 min_nodes: int = 1, max_nodes: int | None = None,
                 memory_limit_bytes: float | None = None,
                 micro_batches: "list[int] | None" = None,
                 schedules: "tuple[str, ...] | list[str] | None" = None,
                 templates_per_count: int = DEFAULT_TEMPLATES_PER_COUNT,
                 executor=None) -> TemplateLibrary:
        """Build the library for node counts ``[min_nodes, max_nodes]``.

        Per node count this runs the Algorithm 1 pipeline — enumerate,
        memory-check, score, refine the leaders with SA — with the
        same ranking key and per-rank seeds as
        :meth:`~repro.core.configurator.PipetteConfigurator.search`,
        then keeps the ``templates_per_count`` best.  Node counts where
        nothing survives record an explicit infeasibility reason.

        Args:
            global_batch: ``bs_global`` every template plans for.
            min_nodes / max_nodes: inclusive node-count range;
                ``max_nodes`` defaults to the full cluster.
            memory_limit_bytes: per-GPU limit; defaults to the GPU's
                physical memory.
            micro_batches / schedules: sweep restrictions, as in the
                cold search.
            templates_per_count: ranked templates kept per node count.
            executor: optional candidate executor; the memory check,
                scoring and refinement passes fan over it per node
                count.
        """
        if max_nodes is None:
            max_nodes = self.cluster.n_nodes
        if not 1 <= min_nodes <= max_nodes <= self.cluster.n_nodes:
            raise ValueError(
                f"node range [{min_nodes}, {max_nodes}] outside "
                f"[1, {self.cluster.n_nodes}]"
            )
        if templates_per_count < 1:
            raise ValueError("templates_per_count must be >= 1")
        library = TemplateLibrary(
            model_name=self.model.name,
            cluster_name=self.cluster.name,
            gpus_per_node=self.cluster.gpus_per_node,
            global_batch=int(global_batch),
            min_nodes=int(min_nodes),
            max_nodes=int(max_nodes),
        )
        with TRACER.span("templates.generate", model=self.model.name,
                         cluster=self.cluster.name,
                         min_nodes=min_nodes, max_nodes=max_nodes,
                         global_batch=int(global_batch)) as span:
            for n_nodes in range(min_nodes, max_nodes + 1):
                templates, reason = self._generate_for_count(
                    n_nodes, int(global_batch), memory_limit_bytes,
                    micro_batches, schedules, templates_per_count, executor)
                if templates:
                    library.templates[n_nodes] = tuple(templates)
                else:
                    library.infeasible[n_nodes] = reason
            span.set_attribute("templates", library.size)
            span.set_attribute("covered_counts",
                               list(library.covered_counts))
        return library

    # ------------------------------------------------------------- internal

    def _generate_for_count(self, n_nodes: int, global_batch: int,
                            memory_limit_bytes, micro_batches, schedules,
                            templates_per_count: int, executor
                            ) -> "tuple[list[PipelineTemplate], str | None]":
        """Templates for one node count, or an infeasibility reason."""
        sub_cluster = self.cluster.scaled_to(n_nodes)
        if n_nodes == self.cluster.n_nodes:
            sub_bw = self.bandwidth
        else:
            sub_bw = self.bandwidth.restrict(range(sub_cluster.n_gpus))
        limit = memory_limit_bytes if memory_limit_bytes is not None \
            else sub_cluster.gpu_memory_bytes
        with TRACER.span("templates.node_count", n_nodes=n_nodes) as span:
            configs = enumerate_parallel_configs(
                sub_cluster.n_gpus, global_batch,
                gpus_per_node=sub_cluster.gpus_per_node,
                n_layers=self.model.n_layers,
                micro_batches=micro_batches,
                max_micro_batch=self.options.max_micro_batch,
                schedules=schedules,
            )
            if not configs:
                reason = (
                    f"no (pp, tp, dp, micro-batch) factorization of "
                    f"{sub_cluster.n_gpus} GPUs fits global batch "
                    f"{global_batch} for a {self.model.n_layers}-layer model"
                )
                span.set_attribute("infeasible", reason)
                return [], reason

            ctx = SearchContext(
                cluster=sub_cluster, model=self.model, bandwidth=sub_bw,
                profile=self.profile,
                memory_estimator=self.memory_estimator, sa=self.options.sa)

            survivors: "list[tuple[ParallelConfig, float | None, bool]]"
            if self.memory_estimator is None:
                survivors = [(config, None, True) for config in configs]
            else:
                predicted = run_units(memory_check_unit, ctx, configs,
                                      executor)
                margin = self.memory_estimator.soft_margin
                survivors = [(c, p, True) for c, p in zip(configs, predicted)
                             if p <= margin * limit]
                if not survivors and margin < 1.0:
                    survivors = [(c, p, True)
                                 for c, p in zip(configs, predicted)
                                 if p <= limit]
                if not survivors:
                    # Unlike the cold search's best-effort fallback, a
                    # template library never admits a plan the
                    # estimator believes cannot run: failover must not
                    # trade a dead node for an OOM.
                    floor_gib = min(predicted) / 2**30
                    reason = (
                        f"all {len(configs)} enumerated configurations "
                        f"predicted over the memory limit "
                        f"({limit / 2**30:.1f} GiB/GPU; lightest needs "
                        f"{floor_gib:.1f} GiB)"
                    )
                    span.set_attribute("infeasible", reason)
                    return [], reason

            scored = run_units(template_score_unit, ctx, survivors, executor)
            scored.sort(key=lambda r: r.sort_key)

            if self.options.use_worker_dedication and scored:
                n_refine = len(scored) if self.options.sa_top_k == 0 \
                    else min(self.options.sa_top_k, len(scored))
                entries = [(entry, self.options.seed + rank)
                           for rank, entry in enumerate(scored[:n_refine])]
                refined_rows = run_units(refine_unit, ctx, entries, executor)
                refined = [entry for entry, _, _ in refined_rows]
                scored = sorted(refined + scored[n_refine:],
                                key=lambda r: r.sort_key)

            templates: "list[PipelineTemplate]" = []
            seen: set = set()
            for entry in scored:
                template = _as_template(entry, n_nodes, self.model.n_layers)
                if template.key in seen:
                    continue
                seen.add(template.key)
                templates.append(template)
                if len(templates) >= templates_per_count:
                    break
            span.set_attribute("templates", len(templates))
            span.set_attribute("candidates", len(configs))
            return templates, None

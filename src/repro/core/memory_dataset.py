"""Profiled memory dataset for training the memory estimator (§VI).

The paper trains its MLP on "profiled data from all possible
configurations using up to four cluster nodes (32 GPUs)" and
validates extrapolation up to 128 GPUs.  :func:`build_memory_dataset`
repeats that campaign: enumerate configurations on 1-4-node
sub-clusters, launch each (against the memory ground truth that plays
the role of the real cluster), and record the Eq. (7) features with
the measured peak memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.sim.memory_sim import FrameworkOverheadModel, simulated_max_memory_bytes
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class MemoryPoint:
    """One profiled configuration: its identity and measured memory."""

    model: TransformerConfig
    config: ParallelConfig
    n_gpus: int
    measured_bytes: float


@dataclass
class MemoryDataset:
    """A collection of profiled memory measurements."""

    points: list[MemoryPoint]

    def __len__(self) -> int:
        return len(self.points)

    def measured_bytes(self) -> np.ndarray:
        """Targets as a vector, in bytes."""
        return np.array([p.measured_bytes for p in self.points])


def build_memory_dataset(cluster: ClusterSpec,
                         models: list[TransformerConfig],
                         global_batches: list[int],
                         node_counts: list[int] | None = None,
                         max_micro_batch: int = 8,
                         max_points: int | None = None,
                         overhead: FrameworkOverheadModel | None = None,
                         seed: int = 0) -> MemoryDataset:
    """Profile memory across small sub-clusters of ``cluster``.

    Args:
        cluster: the full cluster; profiling uses sub-clusters of
            ``node_counts`` nodes (default 1, 2, 4 — "up to four
            cluster nodes").
        models: architectures to include; a spread of sizes helps the
            estimator generalize across the Eq. (7) model features.
        global_batches: global batch sizes to sweep.
        max_points: subsample (deterministically) to at most this many
            points to bound training cost; ``None`` keeps all.
        overhead: the framework overhead model of the software stack
            being profiled (the ground truth; the estimator never sees
            its parameters, only the measurements).
    """
    node_counts = node_counts or [1, 2, 4]
    if any(n > cluster.n_nodes for n in node_counts):
        raise ValueError(
            f"node_counts {node_counts} exceed cluster ({cluster.n_nodes} nodes)"
        )
    points: list[MemoryPoint] = []
    for n_nodes in node_counts:
        sub = cluster.scaled_to(n_nodes)
        for model in models:
            for gb in global_batches:
                configs = enumerate_parallel_configs(
                    sub.n_gpus, gb,
                    gpus_per_node=sub.gpus_per_node,
                    n_layers=model.n_layers,
                    max_micro_batch=max_micro_batch,
                )
                for config in configs:
                    usage = simulated_max_memory_bytes(
                        model, config, sub, overhead=overhead, seed=seed)
                    points.append(MemoryPoint(
                        model=model, config=config,
                        n_gpus=sub.n_gpus, measured_bytes=usage,
                    ))
    if max_points is not None and len(points) > max_points:
        rng = spawn_rng(seed, "memory-dataset-subsample")
        keep = rng.choice(len(points), size=max_points, replace=False)
        points = [points[i] for i in sorted(keep)]
    return MemoryDataset(points=points)

"""Fine-grained worker dedication via simulated annealing (§IV).

The mapping problem — place ``pp x tp x dp`` logical workers on the
GPUs so the estimated iteration latency is minimal — is analogous to
classic NoC core mapping ([17], [18]), so the paper uses simulated
annealing with three string moves:

* **migrate**: remove one element and reinsert it elsewhere,
* **swap**: exchange two elements,
* **reverse**: reverse a substring — motivated by the observation
  that bidirectional bandwidths of a node pair are almost symmetric,
  so a reversed pipeline segment costs about the same per hop while
  changing which links carry the boundary traffic.

The annealer works on the *block* permutation (TP groups over GPU
slots; see :mod:`repro.parallel.mapping`), uses the temperature decay
``alpha = 0.999`` of the paper, and stops on an iteration budget or a
wall-clock limit (the paper uses 10 s per candidate configuration).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.parallel.mapping import Mapping
from repro.utils.rng import resolve_rng

#: The paper's move set.
DEFAULT_MOVES: tuple[str, ...] = ("migrate", "swap", "reverse")


@dataclass(frozen=True)
class SAOptions:
    """Simulated-annealing hyper-parameters.

    Attributes:
        time_limit_s: wall-clock budget; ``None`` disables it.  The
            paper uses 10 seconds.
        max_iterations: iteration budget; ``None`` disables it.  At
            least one of the two budgets must be set.
        alpha: multiplicative temperature decay per iteration (0.999
            in the paper).
        initial_temperature: starting temperature; ``None`` derives it
            from the spread of a few probe moves so acceptance starts
            permissive regardless of the objective's scale.
        moves: subset of ``{"migrate", "swap", "reverse"}`` (ablations
            disable individual moves).
        seed: RNG seed for the move stream.
    """

    time_limit_s: float | None = None
    max_iterations: int | None = 4000
    alpha: float = 0.999
    initial_temperature: float | None = None
    moves: tuple[str, ...] = DEFAULT_MOVES
    seed: int = 0

    def __post_init__(self) -> None:
        if self.time_limit_s is None and self.max_iterations is None:
            raise ValueError("set time_limit_s and/or max_iterations")
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise ValueError("time_limit_s must be positive")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {self.alpha}")
        unknown = set(self.moves) - set(DEFAULT_MOVES)
        if unknown:
            raise ValueError(f"unknown moves: {sorted(unknown)}")
        if not self.moves:
            raise ValueError("at least one move kind is required")

    def with_seed(self, seed: int) -> "SAOptions":
        """These options with a different move-stream seed.

        Callers that anneal many candidates (the configurator's
        refinement pass, the restart wrapper below) thread one explicit
        seed per candidate through this helper, so the outcome is a
        pure function of (options, seed) no matter which worker — or
        which process of a pool — runs the candidate.
        """
        return replace(self, seed=int(seed))


@dataclass
class SAResult:
    """Outcome of one annealing run.

    Attributes:
        mapping: best mapping found.
        value: objective value of :attr:`mapping`.
        initial_value: objective of the starting mapping (for gain
            reporting: the paper's Fig. 4 "execution time reduction").
        iterations: moves proposed.
        accepted: moves accepted.
        elapsed_s: wall-clock time spent.
        history: best-so-far objective at each improvement.
    """

    mapping: Mapping
    value: float
    initial_value: float
    iterations: int
    accepted: int
    elapsed_s: float
    history: list[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative latency reduction achieved by the dedication."""
        if self.initial_value == 0:
            return 0.0
        return 1.0 - self.value / self.initial_value


def _propose(perm: np.ndarray, move: str, rng: np.random.Generator) -> np.ndarray:
    """Apply one move to a copy of the permutation."""
    n = len(perm)
    out = perm.copy()
    if n < 2:
        return out
    if move == "swap":
        i, j = rng.choice(n, size=2, replace=False)
        out[i], out[j] = out[j], out[i]
    elif move == "migrate":
        i = int(rng.integers(n))
        j = int(rng.integers(n - 1))
        val = out[i]
        out = np.delete(out, i)
        out = np.insert(out, j, val)
    elif move == "reverse":
        i, j = sorted(rng.choice(n + 1, size=2, replace=False))
        if j - i >= 2:
            out[i:j] = out[i:j][::-1]
        else:
            i2, j2 = rng.choice(n, size=2, replace=False)
            out[i2], out[j2] = out[j2], out[i2]
    else:
        raise ValueError(f"unknown move {move!r}")
    return out


def _probe_temperature(initial: Mapping, objective, base: float,
                       moves: tuple[str, ...],
                       rng: np.random.Generator) -> float:
    """Derive a starting temperature from the local objective landscape."""
    deltas = []
    for _ in range(16):
        move = moves[int(rng.integers(len(moves)))]
        cand = initial.with_block_permutation(
            _propose(initial.block_to_slot, move, rng))
        deltas.append(abs(objective(cand) - base))
    spread = float(np.mean(deltas)) if deltas else 0.0
    if spread <= 0.0:
        spread = max(abs(base), 1.0) * 1e-3
    return 2.0 * spread


def anneal_mapping(initial: Mapping,
                   objective: Callable[[Mapping], float],
                   options: SAOptions | None = None) -> SAResult:
    """Minimize ``objective`` over block permutations starting at ``initial``.

    This is the ``SA_NextMap`` loop of Algorithm 1 (lines 9-15): each
    iteration proposes one move, evaluates the latency estimator, and
    accepts by the Metropolis criterion under a geometrically cooling
    temperature.
    """
    options = options or SAOptions()
    rng = resolve_rng(options.seed)
    start = time.perf_counter()

    current = initial.copy()
    current_value = float(objective(current))
    initial_value = current_value
    best = current.copy()
    best_value = current_value
    history = [best_value]

    temperature = options.initial_temperature
    if temperature is None:
        temperature = _probe_temperature(initial, objective, current_value,
                                         options.moves, rng)

    iterations = accepted = 0
    while True:
        if options.max_iterations is not None \
                and iterations >= options.max_iterations:
            break
        if options.time_limit_s is not None \
                and time.perf_counter() - start >= options.time_limit_s:
            break
        move = options.moves[int(rng.integers(len(options.moves)))]
        candidate = current.with_block_permutation(
            _propose(current.block_to_slot, move, rng))
        value = float(objective(candidate))
        delta = value - current_value
        if delta <= 0.0 or (temperature > 0.0
                            and rng.random() < math.exp(-delta / temperature)):
            current, current_value = candidate, value
            accepted += 1
            if value < best_value:
                best, best_value = candidate.copy(), value
                history.append(best_value)
        temperature *= options.alpha
        iterations += 1

    return SAResult(
        mapping=best,
        value=best_value,
        initial_value=initial_value,
        iterations=iterations,
        accepted=accepted,
        elapsed_s=time.perf_counter() - start,
        history=history,
    )


def anneal_mapping_with_restarts(initial: Mapping,
                                 objective: Callable[[Mapping], float],
                                 options: SAOptions | None = None,
                                 n_restarts: int = 3) -> SAResult:
    """Multi-restart annealing: best of several independent runs.

    Annealing on a rugged mapping landscape occasionally stalls in a
    local minimum; restarting from random permutations with derived
    seeds and keeping the best run is the standard remedy.  The first
    run always starts from ``initial`` (the framework's default
    placement), so the result can never lose to single-run annealing
    with the same options.
    """
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    options = options or SAOptions()
    best: SAResult | None = None
    for k in range(n_restarts):
        run_options = options.with_seed(options.seed + 7919 * k)
        if k == 0:
            start_mapping = initial
        else:
            from repro.parallel.mapping import random_block_mapping
            start_mapping = random_block_mapping(
                initial.grid, initial.cluster, seed=options.seed + 104729 * k)
        result = anneal_mapping(start_mapping, objective, run_options)
        if best is None or result.value < best.value:
            # Report the true improvement against the caller's start.
            result.initial_value = float(objective(initial))
            best = result
    return best

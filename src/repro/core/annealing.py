"""Fine-grained worker dedication via simulated annealing (§IV).

The mapping problem — place ``pp x tp x dp`` logical workers on the
GPUs so the estimated iteration latency is minimal — is analogous to
classic NoC core mapping ([17], [18]), so the paper uses simulated
annealing with three string moves:

* **migrate**: remove one element and reinsert it elsewhere,
* **swap**: exchange two elements,
* **reverse**: reverse a substring — motivated by the observation
  that bidirectional bandwidths of a node pair are almost symmetric,
  so a reversed pipeline segment costs about the same per hop while
  changing which links carry the boundary traffic.

The annealer works on the *block* permutation (TP groups over GPU
slots; see :mod:`repro.parallel.mapping`), uses the temperature decay
``alpha = 0.999`` of the paper, and stops on an iteration budget or a
wall-clock limit (the paper uses 10 s per candidate configuration).

The loop itself operates on raw permutation arrays: moves are proposed
into a reusable scratch buffer (no ``np.delete``/``np.insert``
allocation pair per proposal) and a :class:`Mapping` is materialized
only for the returned best.  When the objective is a
:class:`~repro.core.latency_kernel.LatencyKernel` (anything exposing
``evaluate_perm``), no ``Mapping`` is ever built inside the loop; a
plain ``Callable[[Mapping], float]`` objective still works and sees
one mapping per evaluation, exactly as before.  Either way the RNG
stream and the floating-point trajectory are identical to
:func:`anneal_mapping_reference`, the pre-kernel implementation kept
as an executable specification.

Two refinements ride on top of that contract:

* **Delta evaluation.** An objective exposing ``incremental()`` (the
  kernel's :meth:`~repro.core.latency_kernel.LatencyKernel.incremental`)
  lets the sequential loop re-score each move by recomputing only the
  permutation components it touched.  The incremental values are
  bit-identical to full re-scores by construction, so the trajectory —
  and therefore every cached plan — is unchanged; only the cost per
  proposal changes.  Because range moves (migrate/reverse) touch wide
  permutation spans, the delta path only outruns the fully vectorized
  re-score on large permutations, so the loop engages it at or above
  ``SAOptions.delta_min_slots`` (a pure performance switch — see the
  knob's docstring for the measured crossover).
* **Batched proposals** (``SAOptions.batch_size > 1``). With one
  shared RNG stream, speculating past the first evaluated move is
  never sound — an accept changes the state later proposals were drawn
  from, and a reject consumes an acceptance draw — so a bit-identical
  batched loop is impossible.  Batch mode is therefore an *opt-in
  deterministic variant* with its own documented schedule: K moves are
  proposed from the current state, scored in one
  ``evaluate_batch`` call, and scanned in proposal order; the first
  Metropolis accept wins and the rest of the batch (drawn from the
  now-stale state) is discarded.  Same seed, same result, every run —
  just a different (coarser) proposal schedule than ``batch_size=1``.

Either loop can additionally collect a **portfolio** — the
``portfolio_k`` best *distinct* states visited — as pure bookkeeping on
accepted moves: no extra objective calls, no RNG draws.  Elastic
re-planning warm-starts from these survivors
(:mod:`repro.service.replan`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.parallel.mapping import Mapping
from repro.utils.rng import resolve_rng

#: The paper's move set.
DEFAULT_MOVES: tuple[str, ...] = ("migrate", "swap", "reverse")

#: The wall-clock budget is polled once per this many iterations; with
#: the vectorized kernel an objective call is microseconds, so paying a
#: ``perf_counter`` syscall per move would be measurable overhead.
TIME_CHECK_INTERVAL: int = 32


@dataclass(frozen=True)
class SAOptions:
    """Simulated-annealing hyper-parameters.

    Attributes:
        time_limit_s: wall-clock budget; ``None`` disables it.  The
            paper uses 10 seconds.  The clock is polled every
            :data:`TIME_CHECK_INTERVAL` iterations, so runs overshoot
            the limit by at most that many moves.
        max_iterations: iteration budget; ``None`` disables it.  At
            least one of the two budgets must be set.
        alpha: multiplicative temperature decay per iteration (0.999
            in the paper).
        initial_temperature: starting temperature; ``None`` derives it
            from the spread of a few probe moves so acceptance starts
            permissive regardless of the objective's scale.
        moves: subset of ``{"migrate", "swap", "reverse"}`` (ablations
            disable individual moves).
        seed: RNG seed for the move stream.
        batch_size: proposals scored per objective call.  ``1`` (the
            default) is the paper's sequential loop, bit-identical to
            :func:`anneal_mapping_reference`; ``> 1`` selects the
            deterministic batched-proposal variant (see the module
            docstring for why the two schedules necessarily differ).
        portfolio_k: distinct best-visited states carried on
            :attr:`SAResult.portfolio` (``1`` keeps only the best; the
            collection itself never perturbs the search).
        delta_min_slots: permutation length at or above which the
            sequential loop scores proposals through the objective's
            incremental (delta) path instead of full re-scores.  Both
            paths produce bit-identical values, so this is purely a
            performance switch: range moves touch ~n/3 of the
            permutation on average, and below the crossover the
            vectorized full re-score outruns per-move delta
            bookkeeping (NumPy dispatch dominates either way).
            Measured on the Table 1 worlds the delta path breaks even
            around 128-256 slots and wins >2x by 512.  ``0`` forces
            the delta path; a huge value disables it.
    """

    time_limit_s: float | None = None
    max_iterations: int | None = 4000
    alpha: float = 0.999
    initial_temperature: float | None = None
    moves: tuple[str, ...] = DEFAULT_MOVES
    seed: int = 0
    batch_size: int = 1
    portfolio_k: int = 1
    delta_min_slots: int = 128

    def __post_init__(self) -> None:
        if self.time_limit_s is None and self.max_iterations is None:
            raise ValueError("set time_limit_s and/or max_iterations")
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise ValueError("time_limit_s must be positive")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {self.alpha}")
        unknown = set(self.moves) - set(DEFAULT_MOVES)
        if unknown:
            raise ValueError(f"unknown moves: {sorted(unknown)}")
        if not self.moves:
            raise ValueError("at least one move kind is required")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.portfolio_k < 1:
            raise ValueError(
                f"portfolio_k must be >= 1, got {self.portfolio_k}")
        if self.delta_min_slots < 0:
            raise ValueError(
                f"delta_min_slots must be >= 0, got {self.delta_min_slots}")

    def with_seed(self, seed: int) -> "SAOptions":
        """These options with a different move-stream seed.

        Callers that anneal many candidates (the configurator's
        refinement pass, the restart wrapper below) thread one explicit
        seed per candidate through this helper, so the outcome is a
        pure function of (options, seed) no matter which worker — or
        which process of a pool — runs the candidate.
        """
        return replace(self, seed=int(seed))


@dataclass
class SAResult:
    """Outcome of one annealing run.

    Attributes:
        mapping: best mapping found.
        value: objective value of :attr:`mapping`.
        initial_value: objective of the starting mapping (for gain
            reporting: the paper's Fig. 4 "execution time reduction").
        iterations: moves proposed.
        accepted: moves accepted.
        elapsed_s: wall-clock time spent.
        history: best-so-far objective at each improvement.
        evaluations: objective calls made — the starting evaluation,
            the temperature probes (when the temperature was derived),
            and one per iteration.  In batch mode an early accept
            discards the rest of its evaluated batch, so evaluations
            can exceed iterations.
        exit_reason: which budget ended the run — ``"iteration_budget"``
            or ``"time_limit"`` — or ``"degenerate"`` when the grid
            has fewer than two blocks and the loop exited after its
            single possible evaluation.
        portfolio: the ``portfolio_k`` best *distinct* states visited,
            as ``(mapping, value)`` pairs, best first.  Entry 0 is
            always the returned best; collection is pure bookkeeping on
            accepted states (no extra objective calls or RNG draws).
            The reference implementation predates portfolios and
            leaves this empty.
    """

    mapping: Mapping
    value: float
    initial_value: float
    iterations: int
    accepted: int
    elapsed_s: float
    history: list[float] = field(default_factory=list)
    evaluations: int = 0
    exit_reason: str = "iteration_budget"
    portfolio: "list[tuple[Mapping, float]]" = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative latency reduction achieved by the dedication."""
        if self.initial_value == 0:
            return 0.0
        return 1.0 - self.value / self.initial_value


def _propose_into(out: np.ndarray, perm: np.ndarray, move: str,
                  rng: np.random.Generator) -> None:
    """Apply one move of ``perm`` into the scratch buffer ``out``.

    ``out`` must be a distinct buffer of the same shape; it is fully
    overwritten.  Draws from ``rng`` in exactly the order the original
    copy-returning implementation did, so move streams are
    reproducible across both.
    """
    n = len(perm)
    out[:] = perm
    if n < 2:
        return
    if move == "swap":
        i, j = rng.choice(n, size=2, replace=False)
        out[i], out[j] = perm[j], perm[i]
    elif move == "migrate":
        # Remove the element at ``i`` and reinsert it at position ``j``
        # of the shortened string — realized as two slice shifts into
        # the scratch buffer instead of an np.delete + np.insert
        # allocation pair.
        i = int(rng.integers(n))
        j = int(rng.integers(n - 1))
        if j >= i:
            out[i:j] = perm[i + 1:j + 1]
        else:
            out[j + 1:i + 1] = perm[j:i]
        out[j] = perm[i]
    elif move == "reverse":
        i, j = sorted(rng.choice(n + 1, size=2, replace=False))
        if j - i >= 2:
            out[i:j] = perm[i:j][::-1]
        else:
            i2, j2 = rng.choice(n, size=2, replace=False)
            out[i2], out[j2] = perm[j2], perm[i2]
    else:
        raise ValueError(f"unknown move {move!r}")


def _propose(perm: np.ndarray, move: str, rng: np.random.Generator) -> np.ndarray:
    """Apply one move to a copy of the permutation (allocating form)."""
    out = np.empty_like(perm)
    _propose_into(out, perm, move, rng)
    return out


def apply_move(perm: np.ndarray, move: "tuple[str, int, int]") -> np.ndarray:
    """Apply a deterministic ``(kind, i, j)`` move spec to a copy of ``perm``.

    The RNG-free twin of :func:`_propose_into`, with the same index
    semantics, for callers that name a move rather than draw one —
    :meth:`repro.core.latency_kernel.LatencyKernel.delta_for_move` and
    the property tests pinning it against full re-scores:

    * ``("swap", i, j)`` — exchange positions ``i`` and ``j``;
    * ``("migrate", i, j)`` — remove the element at ``i``, reinsert it
      at position ``j`` of the shortened string (``0 <= j <= n - 2``);
    * ``("reverse", i, j)`` — reverse the substring ``[i, j)``, which
      needs ``j - i >= 2`` (the RNG form's degenerate-window fallback
      draws fresh indices and has no deterministic counterpart).
    """
    kind, i, j = move
    perm = np.asarray(perm)
    n = len(perm)
    i, j = int(i), int(j)
    out = perm.copy()
    if kind == "swap":
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"swap indices ({i}, {j}) outside [0, {n})")
        out[i], out[j] = perm[j], perm[i]
    elif kind == "migrate":
        if not (0 <= i < n and 0 <= j < n - 1):
            raise ValueError(
                f"migrate needs 0 <= i < {n} and 0 <= j < {n - 1}, "
                f"got ({i}, {j})")
        if j >= i:
            out[i:j] = perm[i + 1:j + 1]
        else:
            out[j + 1:i + 1] = perm[j:i]
        out[j] = perm[i]
    elif kind == "reverse":
        if not (0 <= i and i + 2 <= j <= n):
            raise ValueError(
                f"reverse needs 0 <= i <= j - 2 <= {n - 2}, got ({i}, {j})")
        out[i:j] = perm[i:j][::-1]
    else:
        raise ValueError(f"unknown move kind {kind!r}")
    return out


#: Probe moves drawn when deriving a starting temperature.
TEMPERATURE_PROBES: int = 16


def _temperature_from_spread(deltas: "list[float]", base: float) -> float:
    """The probe-spread → starting-temperature formula.

    Shared by the fast loop and the reference implementation so the
    derivation can never drift between them (the seed-identity
    contract needs both to land the same float).
    """
    spread = float(np.mean(deltas)) if deltas else 0.0
    if spread <= 0.0:
        spread = max(abs(base), 1.0) * 1e-3
    return 2.0 * spread


def _probe_temperature(initial: Mapping, objective, base: float,
                       moves: tuple[str, ...],
                       rng: np.random.Generator) -> float:
    """Derive a starting temperature from the local objective landscape."""
    deltas = []
    for _ in range(TEMPERATURE_PROBES):
        move = moves[int(rng.integers(len(moves)))]
        cand = initial.with_block_permutation(
            _propose(initial.block_to_slot, move, rng))
        deltas.append(abs(objective(cand) - base))
    return _temperature_from_spread(deltas, base)


def _note_visit(pool: "dict[bytes, float] | None", perm: np.ndarray,
                value: float) -> None:
    """Record an accepted state in the portfolio pool (best value wins)."""
    if pool is None:
        return
    key = perm.tobytes()
    prev = pool.get(key)
    if prev is None or value < prev:
        pool[key] = value


def _build_portfolio(initial: Mapping, best_mapping: Mapping,
                     best_value: float, pool: "dict[bytes, float] | None",
                     portfolio_k: int) -> "list[tuple[Mapping, float]]":
    """Assemble ``SAResult.portfolio``: the best first, then runner-ups.

    Runner-ups are ordered by ``(value, permutation bytes)`` so ties
    resolve deterministically regardless of visit order, and the best
    state is excluded from the pool scan so it never appears twice.
    """
    portfolio = [(best_mapping, best_value)]
    if pool and portfolio_k > 1:
        best_key = np.asarray(
            best_mapping.block_to_slot, dtype=np.int64).tobytes()
        runners = sorted(
            (value, key) for key, value in pool.items() if key != best_key)
        for value, key in runners[:portfolio_k - 1]:
            perm = np.frombuffer(key, dtype=np.int64).copy()
            portfolio.append(
                (Mapping(initial.grid, initial.cluster, perm), value))
    return portfolio


def _degenerate_result(initial: Mapping, value: float, start: float,
                       recorder, portfolio_k: int) -> SAResult:
    """The immediate result when the permutation space has one state.

    A grid with fewer than two blocks admits exactly one block
    permutation, so there is nothing to anneal: every proposal would
    re-score the starting state.  All three loops exit through here
    *before* the temperature probe, so a wall-clock-budgeted polish
    (the one-node-survivor replan, where pp == tp == dp == 1) answers
    after its single evaluation instead of spinning the whole budget
    on no-op moves.
    """
    if recorder is not None:
        recorder.start(value, evaluations=1)
        recorder.finish("degenerate", value)
    return SAResult(
        mapping=initial.copy(), value=value, initial_value=value,
        iterations=0, accepted=0,
        elapsed_s=time.perf_counter() - start,
        history=[value], evaluations=1, exit_reason="degenerate",
        portfolio=[(initial.copy(), value)] if portfolio_k >= 1 else [],
    )


def anneal_mapping(initial: Mapping,
                   objective: Callable[[Mapping], float],
                   options: SAOptions | None = None,
                   recorder=None) -> SAResult:
    """Minimize ``objective`` over block permutations starting at ``initial``.

    This is the ``SA_NextMap`` loop of Algorithm 1 (lines 9-15): each
    iteration proposes one move, evaluates the latency estimator, and
    accepts by the Metropolis criterion under a geometrically cooling
    temperature.

    ``objective`` is either a plain callable on mappings or — the fast
    path — an object exposing ``evaluate_perm(perm) -> float`` such as
    :class:`repro.core.latency_kernel.LatencyKernel`, in which case the
    loop never constructs a ``Mapping``.  A kernel additionally
    exposing ``incremental()`` is scored through its
    :class:`~repro.core.latency_kernel.IncrementalEvaluator` once the
    permutation reaches ``options.delta_min_slots``, recomputing only
    the components a move touched; the incremental values are
    bit-identical to full re-scores by construction, so the gate is
    purely about throughput.  All paths draw the identical RNG stream,
    so for a
    given seed an iteration-budgeted run's accept/reject trajectory,
    best mapping, and value match :func:`anneal_mapping_reference`
    exactly (bit-identical when the kernel's objective values are,
    which :mod:`repro.core.latency_kernel` guarantees).
    Wall-clock-budgeted runs are inherently timing-dependent in both
    implementations; this loop additionally polls the clock only every
    :data:`TIME_CHECK_INTERVAL` moves, so it may overshoot the limit
    by up to that many iterations.

    ``options.batch_size > 1`` routes to the deterministic
    batched-proposal variant (see the module docstring); everything
    below describes the sequential loop.

    ``recorder`` is an optional :class:`repro.obs.recorder.
    FlightRecorder` observing the run.  It draws nothing from the RNG
    and never touches the mapping, so the trajectory with a recorder
    attached is bit-identical to the bare run; without one the loop
    pays a single ``is not None`` test per iteration.
    """
    options = options or SAOptions()
    if options.batch_size > 1:
        return _anneal_mapping_batched(initial, objective, options, recorder)
    rng = resolve_rng(options.seed)
    start = time.perf_counter()

    evaluate_perm = getattr(objective, "evaluate_perm", None)
    inc = None
    if evaluate_perm is not None:
        kernel_grid = getattr(objective, "grid", None)
        if kernel_grid is not None and kernel_grid != initial.grid:
            raise ValueError(
                f"objective kernel compiled for grid {kernel_grid} cannot "
                f"score mappings of grid {initial.grid}"
            )
        make_incremental = getattr(objective, "incremental", None)
        if make_incremental is not None \
                and initial.grid.n_blocks >= options.delta_min_slots:
            inc = make_incremental()
        evaluate = lambda perm: float(evaluate_perm(perm))  # noqa: E731
    else:
        def evaluate(perm: np.ndarray) -> float:
            return float(objective(initial.with_block_permutation(perm.copy())))

    current = np.array(initial.block_to_slot, dtype=np.int64)
    scratch = np.empty_like(current)
    if inc is not None:
        # One full evaluation binds the partial terms; every proposal
        # after this point goes through the delta path.
        inc.bind(current)
        current_value = float(inc.value)
        propose_value = lambda perm: float(inc.propose(perm))  # noqa: E731
    else:
        current_value = evaluate(current)
        propose_value = evaluate
    initial_value = current_value
    best = current.copy()
    best_value = current_value
    history = [best_value]
    setup_evaluations = 1

    if len(current) < 2:
        return _degenerate_result(initial, current_value, start, recorder,
                                  options.portfolio_k)

    temperature = options.initial_temperature
    if temperature is None:
        # Probe moves start from ``initial`` each time, replicating
        # :func:`_probe_temperature` draw for draw on the permutation
        # arrays (same move stream, same spread formula).
        deltas = []
        for _ in range(TEMPERATURE_PROBES):
            move = options.moves[int(rng.integers(len(options.moves)))]
            _propose_into(scratch, current, move, rng)
            deltas.append(abs(propose_value(scratch) - current_value))
        temperature = _temperature_from_spread(deltas, current_value)
        setup_evaluations += TEMPERATURE_PROBES

    if recorder is not None:
        recorder.start(
            initial_value, evaluations=setup_evaluations,
            delta_evaluations=setup_evaluations - 1 if inc is not None else 0)

    pool = {current.tobytes(): current_value} \
        if options.portfolio_k > 1 else None

    iterations = accepted = 0
    exit_reason = "iteration_budget"
    while True:
        if options.max_iterations is not None \
                and iterations >= options.max_iterations:
            break
        if options.time_limit_s is not None \
                and iterations % TIME_CHECK_INTERVAL == 0 \
                and time.perf_counter() - start >= options.time_limit_s:
            exit_reason = "time_limit"
            break
        move = options.moves[int(rng.integers(len(options.moves)))]
        _propose_into(scratch, current, move, rng)
        value = propose_value(scratch)
        delta = value - current_value
        accepted_move = delta <= 0.0 or (
            temperature > 0.0
            and rng.random() < math.exp(-delta / temperature))
        if accepted_move:
            if inc is not None:
                inc.accept()
            current, scratch = scratch, current
            current_value = value
            accepted += 1
            if value < best_value:
                best[:] = current
                best_value = value
                history.append(best_value)
            _note_visit(pool, current, value)
        if recorder is not None:
            recorder.sample(iterations, temperature, best_value,
                            accepted_move, move=move,
                            delta=inc is not None)
        temperature *= options.alpha
        iterations += 1

    if recorder is not None:
        recorder.finish(exit_reason, best_value)
    best_mapping = Mapping(initial.grid, initial.cluster, best.copy())
    return SAResult(
        mapping=best_mapping,
        value=best_value,
        initial_value=initial_value,
        iterations=iterations,
        accepted=accepted,
        elapsed_s=time.perf_counter() - start,
        history=history,
        evaluations=setup_evaluations + iterations,
        exit_reason=exit_reason,
        portfolio=_build_portfolio(initial, best_mapping, best_value, pool,
                                   options.portfolio_k),
    )


def _anneal_mapping_batched(initial: Mapping,
                            objective: Callable[[Mapping], float],
                            options: SAOptions,
                            recorder=None) -> SAResult:
    """The deterministic batched-proposal loop (``batch_size > 1``).

    Each round draws up to ``batch_size`` moves from the current state,
    scores them in one ``evaluate_batch`` call when the objective
    offers it (falling back to per-row evaluation otherwise), and scans
    the scores in proposal order: rejects consume their acceptance draw
    and cool the temperature exactly as the sequential loop would; the
    first accept wins and discards the rest of the batch, whose
    proposals were drawn from a now-stale state.  ``iterations`` counts
    scanned proposals (so budgets mean the same thing as in the
    sequential loop) while ``evaluations`` counts scored rows, which is
    why the latter can run ahead.  The wall clock is polled once per
    round.
    """
    rng = resolve_rng(options.seed)
    start = time.perf_counter()

    evaluate_perm = getattr(objective, "evaluate_perm", None)
    evaluate_batch = getattr(objective, "evaluate_batch", None)
    if evaluate_perm is not None:
        kernel_grid = getattr(objective, "grid", None)
        if kernel_grid is not None and kernel_grid != initial.grid:
            raise ValueError(
                f"objective kernel compiled for grid {kernel_grid} cannot "
                f"score mappings of grid {initial.grid}"
            )
        evaluate = lambda perm: float(evaluate_perm(perm))  # noqa: E731
    else:
        def evaluate(perm: np.ndarray) -> float:
            return float(objective(initial.with_block_permutation(perm.copy())))

    current = np.array(initial.block_to_slot, dtype=np.int64)
    scratch = np.empty_like(current)
    current_value = evaluate(current)
    initial_value = current_value
    best = current.copy()
    best_value = current_value
    history = [best_value]
    setup_evaluations = 1

    if len(current) < 2:
        return _degenerate_result(initial, current_value, start, recorder,
                                  options.portfolio_k)

    temperature = options.initial_temperature
    if temperature is None:
        deltas = []
        for _ in range(TEMPERATURE_PROBES):
            move = options.moves[int(rng.integers(len(options.moves)))]
            _propose_into(scratch, current, move, rng)
            deltas.append(abs(evaluate(scratch) - current_value))
        temperature = _temperature_from_spread(deltas, current_value)
        setup_evaluations += TEMPERATURE_PROBES

    if recorder is not None:
        recorder.start(initial_value, evaluations=setup_evaluations)

    pool = {current.tobytes(): current_value} \
        if options.portfolio_k > 1 else None

    batch = np.empty((options.batch_size, len(current)), dtype=np.int64)
    batch_moves: "list[str]" = [""] * options.batch_size
    iterations = accepted = 0
    evaluations = setup_evaluations
    exit_reason = "iteration_budget"
    while True:
        if options.max_iterations is not None \
                and iterations >= options.max_iterations:
            break
        if options.time_limit_s is not None \
                and time.perf_counter() - start >= options.time_limit_s:
            exit_reason = "time_limit"
            break
        k = options.batch_size
        if options.max_iterations is not None:
            k = min(k, options.max_iterations - iterations)
        for b in range(k):
            move = options.moves[int(rng.integers(len(options.moves)))]
            batch_moves[b] = move
            _propose_into(batch[b], current, move, rng)
        if evaluate_batch is not None:
            values = np.asarray(evaluate_batch(batch[:k]), dtype=np.float64)
        else:
            values = np.array([evaluate(batch[b]) for b in range(k)])
        evaluations += k
        for b in range(k):
            value = float(values[b])
            delta = value - current_value
            accepted_move = delta <= 0.0 or (
                temperature > 0.0
                and rng.random() < math.exp(-delta / temperature))
            if accepted_move:
                current[:] = batch[b]
                current_value = value
                accepted += 1
                if value < best_value:
                    best[:] = current
                    best_value = value
                    history.append(best_value)
                _note_visit(pool, current, value)
            if recorder is not None:
                recorder.sample(iterations, temperature, best_value,
                                accepted_move, move=batch_moves[b])
            temperature *= options.alpha
            iterations += 1
            if accepted_move:
                # The rest of the batch was proposed from a state that
                # no longer exists; discard it and re-propose.
                break

    if recorder is not None:
        recorder.finish(exit_reason, best_value)
    best_mapping = Mapping(initial.grid, initial.cluster, best.copy())
    return SAResult(
        mapping=best_mapping,
        value=best_value,
        initial_value=initial_value,
        iterations=iterations,
        accepted=accepted,
        elapsed_s=time.perf_counter() - start,
        history=history,
        evaluations=evaluations,
        exit_reason=exit_reason,
        portfolio=_build_portfolio(initial, best_mapping, best_value, pool,
                                   options.portfolio_k),
    )


def anneal_mapping_reference(initial: Mapping,
                             objective: Callable[[Mapping], float],
                             options: SAOptions | None = None,
                             recorder=None) -> SAResult:
    """The pre-kernel annealing loop, kept as an executable spec.

    One ``Mapping`` per proposal, one ``perf_counter`` per move, the
    original copy-returning ``_propose`` — exactly the implementation
    :func:`anneal_mapping` replaced.  The seed-identity tests and
    ``benchmarks/bench_annealing_kernel.py`` pin the fast path against
    this function; it is not meant for production callers.
    """
    options = options or SAOptions()
    rng = resolve_rng(options.seed)
    start = time.perf_counter()

    current = initial.copy()
    current_value = float(objective(current))
    initial_value = current_value
    best = current.copy()
    best_value = current_value
    history = [best_value]
    setup_evaluations = 1

    if initial.grid.n_blocks < 2:
        # Mirrors the fast loops exactly (same guard, same result
        # fields) so the seed-identity contract holds on degenerate
        # grids too — except the portfolio, which the reference
        # implementation never collects.
        result = _degenerate_result(initial, current_value, start, recorder,
                                    options.portfolio_k)
        result.portfolio = []
        return result

    temperature = options.initial_temperature
    if temperature is None:
        temperature = _probe_temperature(initial, objective, current_value,
                                         options.moves, rng)
        setup_evaluations += TEMPERATURE_PROBES

    if recorder is not None:
        recorder.start(initial_value, evaluations=setup_evaluations)

    iterations = accepted = 0
    exit_reason = "iteration_budget"
    while True:
        if options.max_iterations is not None \
                and iterations >= options.max_iterations:
            break
        if options.time_limit_s is not None \
                and time.perf_counter() - start >= options.time_limit_s:
            exit_reason = "time_limit"
            break
        move = options.moves[int(rng.integers(len(options.moves)))]
        candidate = current.with_block_permutation(
            _propose(current.block_to_slot, move, rng))
        value = float(objective(candidate))
        delta = value - current_value
        accepted_move = delta <= 0.0 or (
            temperature > 0.0
            and rng.random() < math.exp(-delta / temperature))
        if accepted_move:
            current, current_value = candidate, value
            accepted += 1
            if value < best_value:
                best, best_value = candidate.copy(), value
                history.append(best_value)
        if recorder is not None:
            recorder.sample(iterations, temperature, best_value,
                            accepted_move)
        temperature *= options.alpha
        iterations += 1

    if recorder is not None:
        recorder.finish(exit_reason, best_value)
    return SAResult(
        mapping=best,
        value=best_value,
        initial_value=initial_value,
        iterations=iterations,
        accepted=accepted,
        elapsed_s=time.perf_counter() - start,
        history=history,
        evaluations=setup_evaluations + iterations,
        exit_reason=exit_reason,
    )


def anneal_mapping_with_restarts(initial: Mapping,
                                 objective: Callable[[Mapping], float],
                                 options: SAOptions | None = None,
                                 n_restarts: int = 3,
                                 recorder_factory=None) -> SAResult:
    """Multi-restart annealing: best of several independent runs.

    Annealing on a rugged mapping landscape occasionally stalls in a
    local minimum; restarting from random permutations with derived
    seeds and keeping the best run is the standard remedy.  The first
    run always starts from ``initial`` (the framework's default
    placement), so the result can never lose to single-run annealing
    with the same options.

    The reported ``initial_value`` is always the objective of the
    caller's ``initial`` mapping; it is taken from the first run's own
    starting evaluation, so ``objective(initial)`` is computed exactly
    once across the whole restart portfolio.

    With ``options.portfolio_k > 1`` the per-run portfolios are merged
    across restarts — the runs genuinely diversify start points, so
    the merged pool is where portfolio warm starts earn their keep —
    and the winner's :attr:`SAResult.portfolio` is rebuilt from the
    pool (best first, then ``(value, bytes)``-ordered runner-ups, all
    distinct).

    ``recorder_factory`` optionally instruments each run: it is called
    with the run's provenance string (``"cold"`` for run 0,
    ``"restart-k"`` after) and returns a flight recorder — or ``None``
    — for that run.  The factory owns the recorders it makes; this
    wrapper only passes them through.
    """
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    options = options or SAOptions()
    best: SAResult | None = None
    initial_value: float | None = None
    merged: "dict[bytes, tuple[float, Mapping]] | None" = \
        {} if options.portfolio_k > 1 else None
    for k in range(n_restarts):
        run_options = options.with_seed(options.seed + 7919 * k)
        if k == 0:
            start_mapping = initial
        else:
            from repro.parallel.mapping import random_block_mapping
            start_mapping = random_block_mapping(
                initial.grid, initial.cluster, seed=options.seed + 104729 * k)
        recorder = None if recorder_factory is None \
            else recorder_factory("cold" if k == 0 else f"restart-{k}")
        result = anneal_mapping(start_mapping, objective, run_options,
                                recorder=recorder)
        if k == 0:
            # Run 0 starts at ``initial``, so its starting evaluation
            # *is* objective(initial) — no re-evaluation needed.
            initial_value = result.initial_value
        if merged is not None:
            for mapping, value in result.portfolio:
                key = np.asarray(
                    mapping.block_to_slot, dtype=np.int64).tobytes()
                prev = merged.get(key)
                if prev is None or value < prev[0]:
                    merged[key] = (value, mapping)
        if best is None or result.value < best.value:
            best = result
    # Report the true improvement against the caller's start.
    best.initial_value = float(initial_value)
    if merged is not None:
        best_key = np.asarray(
            best.mapping.block_to_slot, dtype=np.int64).tobytes()
        runners = sorted(
            (value, key) for key, (value, _) in merged.items()
            if key != best_key)
        best.portfolio = [(best.mapping, best.value)] + [
            (merged[key][1], value)
            for value, key in runners[:options.portfolio_k - 1]]
    return best

"""Varuna-style configurator (Athlur et al., EuroSys 2022).

As characterized by the paper (§VII-A): Varuna "emphasizes using the
pipeline parallel-only configuration for LLM training", i.e. it fixes
``tp = 1`` and searches pipeline x data ways.  Its memory screening
relies on a first-principles estimate that "fail[s] to estimate"
real usage (§I limitation 3), so it still recommends OOM
configurations (Fig. 5b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.memory_analytic import analytic_memory_estimate_bytes
from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.topology import ClusterSpec
from repro.core.latency_model import prior_art_latency
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.parallel.mapping import Mapping, WorkerGrid, sequential_mapping
from repro.profiling.profile_run import ComputeProfile


@dataclass(frozen=True)
class VarunaRecommendation:
    """One entry of Varuna's ranked output."""

    config: ParallelConfig
    estimated_latency_s: float
    estimated_memory_bytes: float


class VarunaConfigurator:
    """Pipeline+data-parallel search with an overhead-blind memory filter."""

    def __init__(self, cluster: ClusterSpec, model: TransformerConfig,
                 nominal_bandwidth: BandwidthMatrix, profile: ComputeProfile,
                 max_micro_batch: int = 8) -> None:
        self.cluster = cluster
        self.model = model
        self.nominal_bandwidth = nominal_bandwidth
        self.profile = profile
        self.max_micro_batch = max_micro_batch

    def estimate_latency(self, config: ParallelConfig) -> float:
        """Varuna's latency estimate (first-order model, nominal links)."""
        mapping = self._sequential(config)
        return prior_art_latency(self.model, config, mapping,
                                 self.nominal_bandwidth, self.profile)

    def search(self, global_batch: int, top_k: int | None = None,
               recompute: bool = False) -> list[VarunaRecommendation]:
        """Ranked ``tp = 1`` recommendations passing Varuna's own memory check.

        The check compares the *analytic* estimate against the full
        device memory — no margin, no framework overhead — so
        passing it does not imply the run actually fits.

        Args:
            recompute: search configurations with activation
                recomputation enabled (Varuna's runtime feature); off
                by default, matching the recommendations the paper
                evaluated in Fig. 5b.
        """
        configs = [
            c if not recompute else c.with_recompute()
            for c in enumerate_parallel_configs(
                self.cluster.n_gpus, global_batch,
                gpus_per_node=self.cluster.gpus_per_node,
                n_layers=self.model.n_layers,
                max_micro_batch=self.max_micro_batch,
            ) if c.tp == 1
        ]
        entries = []
        limit = self.cluster.gpu_memory_bytes
        for config in configs:
            est_memory = analytic_memory_estimate_bytes(self.model, config)
            if est_memory > limit:
                continue
            entries.append(VarunaRecommendation(
                config=config,
                estimated_latency_s=self.estimate_latency(config),
                estimated_memory_bytes=est_memory,
            ))
        entries.sort(key=lambda r: r.estimated_latency_s)
        return entries if top_k is None else entries[:top_k]

    def search_with_fallback(self, global_batch: int,
                             is_runnable) -> VarunaRecommendation | None:
        """First recommendation that actually runs, as the paper tested.

        Walks the ranked list, launching each configuration
        (``is_runnable(config) -> bool`` is the cluster oracle), and
        returns the first that fits.  When nothing without
        recomputation fits — e.g. an 11B model on ``tp = 1`` — the
        search repeats with Varuna's activation recomputation enabled,
        which is how the real system makes such models trainable.
        """
        for use_recompute in (False, True):
            for entry in self.search(global_batch, recompute=use_recompute):
                if is_runnable(entry.config):
                    return entry
        return None

    def _sequential(self, config: ParallelConfig) -> Mapping:
        grid = WorkerGrid(pp=config.pp, tp=config.tp, dp=config.dp)
        return sequential_mapping(grid, self.cluster)

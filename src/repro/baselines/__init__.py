"""Baseline configurators the paper compares against (§VII-A).

* :mod:`repro.baselines.amp` — AMP (Li et al., NeurIPS 2022): the
  state-of-the-art automatic 3D-parallelism configurator; exhaustive
  search over ways with the Eq. (1) latency model, document-specified
  bandwidths, and no memory check.
* :mod:`repro.baselines.varuna` — Varuna (Athlur et al., EuroSys
  2022): pipeline+data parallelism only (``tp = 1``), with its own
  (first-principles, overhead-blind) memory filter.
* :mod:`repro.baselines.megatron_lm` — the manually tuned Megatron-LM
  practice: ``tp =`` GPUs per node, remaining ways tuned by trial
  runs on the cluster.
* :mod:`repro.baselines.memory_analytic` — the analytic memory
  estimator of [20] used as the Fig. 7 baseline.
"""

from repro.baselines.amp import AmpConfigurator, AmpRecommendation
from repro.baselines.varuna import VarunaConfigurator
from repro.baselines.megatron_lm import MegatronLmTuner
from repro.baselines.memory_analytic import analytic_memory_estimate_bytes

__all__ = [
    "AmpConfigurator",
    "AmpRecommendation",
    "VarunaConfigurator",
    "MegatronLmTuner",
    "analytic_memory_estimate_bytes",
]

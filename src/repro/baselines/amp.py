"""AMP-style automatic configurator (Li et al., NeurIPS 2022).

As characterized by the paper (§II-B, §VI): AMP profiles the
computation time, searches the ``(pp, tp, dp, bs_micro)`` space
exhaustively with the first-order latency model of Eq. (1), assumes
the document-specified ("static") interconnect bandwidth, and applies
**no memory feasibility check** — which is why its top
recommendations frequently OOM on real clusters (Fig. 5b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.topology import ClusterSpec
from repro.core.latency_model import prior_art_latency
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.parallel.mapping import Mapping, WorkerGrid, sequential_mapping
from repro.profiling.profile_run import ComputeProfile


@dataclass(frozen=True)
class AmpRecommendation:
    """One entry of AMP's ranked output."""

    config: ParallelConfig
    estimated_latency_s: float


class AmpConfigurator:
    """Exhaustive Eq.-(1) search over configurations, memory-blind.

    Args:
        cluster: nominal cluster description.
        model: architecture to train.
        nominal_bandwidth: the document-specified bandwidth matrix
            (AMP does not profile the network).
        profile: profiled compute times (AMP does profile computation).
        max_micro_batch: largest microbatch swept.
    """

    def __init__(self, cluster: ClusterSpec, model: TransformerConfig,
                 nominal_bandwidth: BandwidthMatrix, profile: ComputeProfile,
                 max_micro_batch: int = 8) -> None:
        self.cluster = cluster
        self.model = model
        self.nominal_bandwidth = nominal_bandwidth
        self.profile = profile
        self.max_micro_batch = max_micro_batch

    def estimate_latency(self, config: ParallelConfig) -> float:
        """AMP's latency estimate for one configuration (Eq. 1)."""
        mapping = self._sequential(config)
        return prior_art_latency(self.model, config, mapping,
                                 self.nominal_bandwidth, self.profile)

    def search(self, global_batch: int, top_k: int | None = None,
               micro_batches: "list[int] | None" = None
               ) -> list[AmpRecommendation]:
        """Ranked recommendations, best estimated latency first.

        No memory filtering happens here: the user discovers OOMs by
        launching the recommendations one by one, as the paper had to.

        Args:
            micro_batches: restrict the swept microbatch sizes.
        """
        configs = enumerate_parallel_configs(
            self.cluster.n_gpus, global_batch,
            gpus_per_node=self.cluster.gpus_per_node,
            n_layers=self.model.n_layers,
            micro_batches=micro_batches,
            max_micro_batch=self.max_micro_batch,
        )
        ranked = sorted(
            (AmpRecommendation(config=c, estimated_latency_s=self.estimate_latency(c))
             for c in configs),
            key=lambda r: r.estimated_latency_s,
        )
        return ranked if top_k is None else ranked[:top_k]

    def first_runnable(self, global_batch: int, is_runnable,
                       patience: int = 10,
                       micro_batches: "list[int] | None" = None
                       ) -> AmpRecommendation | None:
        """Walk the ranking, launching each entry until one runs.

        This reproduces the paper's §VII-A methodology for AMP:
        "we manually tested them one by one from the top recommendation
        until we reached a runnable configuration" — with a patience
        cap, since every failed launch occupies the full cluster.
        Returns ``None`` when the patience budget is exhausted (shown
        as "OOM" in Fig. 9b).
        """
        for rec in self.search(global_batch,
                               micro_batches=micro_batches)[:patience]:
            if is_runnable(rec.config):
                return rec
        return None

    def default_mapping(self, config: ParallelConfig) -> Mapping:
        """AMP leaves placement to the framework: rank order."""
        return self._sequential(config)

    def _sequential(self, config: ParallelConfig) -> Mapping:
        grid = WorkerGrid(pp=config.pp, tp=config.tp, dp=config.dp)
        return sequential_mapping(grid, self.cluster)

"""The analytic memory estimator the paper uses as a baseline ([20]).

"A common way to estimate the memory requirement is by dividing the
model size by the number of stages and tensor-parallel ways and then
approximating the activation size by considering the layer
structures" (§VI).  Faithfully to that recipe (a single-GPU training
memory analysis), the estimate counts:

* parameter state at 16 bytes/param (fp16 weights + fp16 gradients +
  fp32 Adam moments — it does not know Megatron accumulates
  gradients in fp32),
* the activations of **one** microbatch (it does not know 1F1B keeps
  up to ``pp`` microbatches in flight on the first stage),

and nothing else: no CUDA context, no NCCL buffers, no allocator
fragmentation, no framework temporaries — the omissions [21] documents
and Fig. 7 quantifies.
"""

from __future__ import annotations

from repro.model.memory import stage_layer_count, stage_parameter_count
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig

#: fp16 weights + fp16 grads + fp32 Adam moments, per the blog-post recipe.
_BASELINE_BYTES_PER_PARAM: float = 16.0


def analytic_memory_estimate_bytes(model: TransformerConfig,
                                   config: ParallelConfig) -> float:
    """[20]-style per-GPU memory estimate of a configuration, in bytes.

    Uses the most-loaded stage (stage 0, which also hosts the input
    embedding).  For recompute configurations the activation term
    shrinks to the stage-input boundaries plus one microbatch's
    working set — the same first-principles reasoning, equally blind
    to framework overhead.
    """
    params = stage_parameter_count(model, config.pp, 0) / config.tp
    static = _BASELINE_BYTES_PER_PARAM * params
    layers = stage_layer_count(model.n_layers, config.pp, 0)
    full_act = layers * model.activation_bytes_per_layer(config.micro_batch) \
        / config.tp
    if config.recompute:
        boundary = model.boundary_activation_bytes(config.micro_batch)
        activations = boundary * config.pp + full_act
    else:
        activations = full_act
    return static + activations

"""The manually-tuned Megatron-LM baseline (MLM).

The paper's strongest baseline is not an automatic tool but expert
practice: fix the tensor-parallel degree to the GPUs per node
(``tp = 8``), then find the remaining ways "through numerous trials"
on the actual cluster (§I, §VII-A).  Because the human tries real
runs, MLM never lands on an OOM configuration and benefits from the
memory-efficient schedule — it just spends human time and cluster
hours, and it never questions ``tp = 8`` or the GPU placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.sim.runner import ClusterRunner, MeasuredRun


@dataclass(frozen=True)
class TuningTrial:
    """One manual trial: a configuration and what the cluster reported."""

    config: ParallelConfig
    run: MeasuredRun


class MegatronLmTuner:
    """Reproduces the expert's trial-and-error tuning loop.

    Args:
        runner: access to the cluster (every trial is a real launch).
        max_trials: cap on launches, mimicking a human's patience —
            every trial occupies the *entire* cluster, so experts
            budget a handful.  Trials are ordered the way
            practitioners sweep (large microbatches and shallow
            pipelines first).
    """

    def __init__(self, runner: ClusterRunner, max_trials: int = 5) -> None:
        if max_trials < 1:
            raise ValueError(f"max_trials must be >= 1, got {max_trials}")
        self.runner = runner
        self.max_trials = max_trials

    def candidate_configs(self, global_batch: int) -> list[ParallelConfig]:
        """The ``tp = gpus_per_node`` sweep in expert order."""
        cluster = self.runner.fabric.spec
        configs = [
            c for c in enumerate_parallel_configs(
                cluster.n_gpus, global_batch,
                gpus_per_node=cluster.gpus_per_node,
                n_layers=self.runner.model.n_layers,
            ) if c.tp == cluster.gpus_per_node
        ]
        # Experts try big microbatches (throughput) and small pipelines
        # (fewer bubbles) first.
        configs.sort(key=lambda c: (-c.micro_batch, c.pp))
        return configs

    def tune(self, global_batch: int) -> tuple[MeasuredRun, list[TuningTrial]]:
        """Run the manual sweep; returns the chosen run and the trial log.

        Raises ``RuntimeError`` when no tried configuration fits in
        memory — on the paper's clusters the ``tp = 8`` sweep always
        contains runnable points.
        """
        trials: list[TuningTrial] = []
        best: MeasuredRun | None = None
        for config in self.candidate_configs(global_batch)[: self.max_trials]:
            run = self.runner.run(config)
            trials.append(TuningTrial(config=config, run=run))
            if run.oom:
                continue
            if best is None or run.time_per_iter_s < best.time_per_iter_s:
                best = run
        if best is None:
            raise RuntimeError(
                f"no runnable tp={self.runner.fabric.spec.gpus_per_node} "
                f"configuration found in {len(trials)} trials"
            )
        return best, trials

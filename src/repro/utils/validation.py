"""Small argument-validation helpers shared by the public API surface."""

from __future__ import annotations


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_positive(value, name: str) -> float:
    """Validate that ``value`` is a positive real number and return it as float."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n`` in increasing order.

    Used by the configuration search (Algorithm 1, line 5) to enumerate
    the legal microbatch sizes of a minibatch.

    >>> divisors(12)
    [1, 2, 3, 4, 6, 12]
    """
    check_positive_int(n, "n")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]

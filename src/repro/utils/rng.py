"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer
seed or an already-constructed :class:`numpy.random.Generator`.  The
helpers here normalize between the two and derive statistically
independent child streams from named keys, so that e.g. the fabric
heterogeneity draw and the compute-jitter draw of one experiment never
alias even though both stem from one experiment-level seed.
"""

from __future__ import annotations

import zlib

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def resolve_rng(seed: "SeedLike" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a default deterministic generator (seed 0) rather
    than an entropy-seeded one: experiments must be reproducible by
    default, and callers wanting true entropy can pass their own
    generator.
    """
    if seed is None:
        return np.random.default_rng(0)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot interpret {type(seed).__name__} as a seed")


def derive_seed(base_seed: int, key: str) -> int:
    """Derive a child seed from ``base_seed`` and a string ``key``.

    The derivation is a stable hash (crc32) of the key mixed into the
    base seed, so the same (seed, key) pair yields the same stream on
    every platform and Python version.
    """
    if not isinstance(base_seed, (int, np.integer)):
        raise TypeError(f"base_seed must be an int, got {type(base_seed).__name__}")
    mixed = (int(base_seed) * 0x9E3779B1 + zlib.crc32(key.encode("utf-8"))) % (2**63)
    return int(mixed)


def spawn_rng(seed: "SeedLike", key: str) -> np.random.Generator:
    """Return an independent generator derived from ``seed`` and ``key``.

    When ``seed`` is already a generator, a child is spawned from it
    (consuming state); when it is an integer the child is derived
    deterministically without consuming anything, so sibling streams
    built from the same integer seed are order-independent.
    """
    if isinstance(seed, np.random.Generator):
        return seed.spawn(1)[0]
    if seed is None:
        seed = 0
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed.spawn(1)[0])
    return np.random.default_rng(derive_seed(int(seed), key))

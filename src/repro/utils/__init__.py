"""Shared utilities: deterministic RNG plumbing and validation helpers."""

from repro.utils.rng import resolve_rng, spawn_rng, derive_seed
from repro.utils.validation import (
    check_positive_int,
    check_positive,
    check_probability,
    divisors,
)

__all__ = [
    "resolve_rng",
    "spawn_rng",
    "derive_seed",
    "check_positive_int",
    "check_positive",
    "check_probability",
    "divisors",
]

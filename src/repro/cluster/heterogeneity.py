"""Stochastic model of attained-bandwidth heterogeneity.

Real clusters attain different bandwidths on nominally identical links
(paper §IV; also PLink [9], LLNL routing studies [10], CORAL [11]).
The paper's Fig. 3 profiles a production fabric for 40 days and finds:

* a persistent per-pair spread (the quantile lines stay separated),
* near-symmetric bidirectional bandwidth (rationale for the SA
  *reverse* move),
* slow drift and day-to-day jitter on top of the persistent component.

:class:`HeterogeneityModel` captures exactly these effects with a
multiplicative efficiency per ordered node pair:

``eff(i, j, t) = base * out_i * in_j * pair_ij * straggler_ij * drift_ij(t)``

where ``out``/``in`` are per-node endpoint factors (a slow NIC slows
all its links), ``pair`` is a persistent log-normal per-pair factor
made near-symmetric on purpose, ``straggler`` marks occasional badly
routed pairs, and ``drift`` is a slow sinusoid plus daily noise.
Intra-node (NVLink/NVSwitch) links get a much smaller spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class HeterogeneityModel:
    """Parameters of the attained-bandwidth distribution.

    Attributes:
        base_efficiency: mean attained / nominal bandwidth for
            inter-node links.  Production fabrics attain well under
            the sheet number once real traffic patterns, adaptive
            routing, and PFC interact — PLink [9] measures multi-x
            gaps on public clouds; around half of nominal is typical
            for busy IB fabrics.
        node_sigma: log-std of the per-node endpoint factors.
        pair_sigma: log-std of the persistent per-pair factor.
        asymmetry_sigma: log-std of the forward/backward difference of
            a pair; small, because real pairs are "almost symmetric".
        straggler_prob: probability an ordered pair is a straggler.
        straggler_factor: bandwidth multiplier of straggler pairs
            (the paper's toy example uses a 2x slowdown, i.e. 0.5).
        drift_amplitude: relative amplitude of the slow temporal drift.
        drift_period_days: period of the sinusoidal drift component.
        daily_noise_sigma: log-std of the per-day measurement-to-
            measurement jitter.
        intra_node_sigma: log-std of the (small) NVLink spread.
        intra_base_efficiency: mean attained fraction on NVLink.
            NCCL ring all-reduce on a DGX-1-class V100 node attains
            roughly 130 GB/s of the 300 GB/s sheet aggregate, i.e.
            under half — attained collective bandwidth, not the link
            spec, is what tensor-parallel traffic experiences.
    """

    base_efficiency: float = 0.58
    node_sigma: float = 0.08
    pair_sigma: float = 0.14
    asymmetry_sigma: float = 0.015
    straggler_prob: float = 0.10
    straggler_factor: float = 0.40
    drift_amplitude: float = 0.02
    drift_period_days: float = 17.0
    daily_noise_sigma: float = 0.008
    intra_node_sigma: float = 0.01
    intra_base_efficiency: float = 0.45

    def __post_init__(self) -> None:
        if not 0.0 < self.base_efficiency <= 1.0:
            raise ValueError(
                f"base_efficiency must lie in (0, 1], got {self.base_efficiency}"
            )
        if not 0.0 < self.intra_base_efficiency <= 1.0:
            raise ValueError(
                "intra_base_efficiency must lie in (0, 1], "
                f"got {self.intra_base_efficiency}"
            )
        check_probability(self.straggler_prob, "straggler_prob")
        if not 0.0 < self.straggler_factor <= 1.0:
            raise ValueError(
                f"straggler_factor must lie in (0, 1], got {self.straggler_factor}"
            )
        for name in ("node_sigma", "pair_sigma", "asymmetry_sigma",
                     "drift_amplitude", "daily_noise_sigma", "intra_node_sigma"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @staticmethod
    def homogeneous() -> "HeterogeneityModel":
        """A degenerate model with no spread at all.

        Useful as an experimental control: with a homogeneous fabric,
        fine-grained worker dedication cannot help, and Pipette's
        PPT-LF should collapse onto PPT-L.
        """
        return HeterogeneityModel(
            base_efficiency=0.58,
            node_sigma=0.0,
            pair_sigma=0.0,
            asymmetry_sigma=0.0,
            straggler_prob=0.0,
            straggler_factor=1.0,
            drift_amplitude=0.0,
            daily_noise_sigma=0.0,
            intra_node_sigma=0.0,
        )

    def sample_inter_node(self, spec: ClusterSpec, seed) -> "InterNodeState":
        """Draw the persistent inter-node state for a cluster.

        Returns an :class:`InterNodeState` holding, for each ordered
        node pair, the time-invariant efficiency plus the parameters
        of its temporal drift.
        """
        n = spec.n_nodes
        rng = spawn_rng(seed, "inter-node")
        # One factor per node, applied to both directions: a slow NIC or
        # a badly-placed leaf switch port slows its node symmetrically.
        node_f = np.exp(rng.normal(0.0, self.node_sigma, size=n))

        sym = np.exp(rng.normal(0.0, self.pair_sigma, size=(n, n)))
        sym = np.sqrt(sym * sym.T)  # symmetrize the persistent component
        asym = np.exp(rng.normal(0.0, self.asymmetry_sigma, size=(n, n)))

        straggler = np.ones((n, n))
        hit = rng.random((n, n)) < self.straggler_prob
        hit = np.triu(hit, k=1)
        hit = hit | hit.T  # stragglers are routing artefacts: symmetric pairs
        straggler[hit] = self.straggler_factor

        eff = self.base_efficiency * np.outer(node_f, node_f) * sym * asym * straggler
        np.fill_diagonal(eff, 1.0)
        eff = np.clip(eff, 0.05, 1.0)

        phase = rng.uniform(0.0, 2 * np.pi, size=(n, n))
        phase = np.triu(phase, k=1)
        phase = phase + phase.T
        return InterNodeState(efficiency=eff, drift_phase=phase, model=self)

    def sample_intra_node(self, spec: ClusterSpec, seed) -> np.ndarray:
        """Draw per-node NVLink efficiencies, one per (node, gpu, gpu).

        NVLink/NVSwitch planes are far more uniform than the IB fabric,
        so the spread is small but non-zero.
        """
        k = spec.gpus_per_node
        rng = spawn_rng(seed, "intra-node")
        eff = self.intra_base_efficiency * np.exp(
            rng.normal(0.0, self.intra_node_sigma, size=(spec.n_nodes, k, k))
        )
        eff = np.sqrt(eff * np.transpose(eff, (0, 2, 1)))
        for node in range(spec.n_nodes):
            np.fill_diagonal(eff[node], 1.0)
        return np.clip(eff, 0.05, 1.0)


@dataclass
class InterNodeState:
    """Persistent inter-node efficiencies plus temporal-drift state."""

    efficiency: np.ndarray
    drift_phase: np.ndarray
    model: HeterogeneityModel

    def at_day(self, day: float, seed) -> np.ndarray:
        """Efficiency matrix observed on a given day.

        The drift is a deterministic sinusoid per pair; the daily noise
        is drawn from a day-keyed stream so re-asking for the same day
        returns the same matrix.
        """
        m = self.model
        drift = 1.0 + m.drift_amplitude * np.sin(
            2 * np.pi * day / m.drift_period_days + self.drift_phase
        )
        rng = spawn_rng(seed, f"day-{day:.3f}")
        noise = np.exp(rng.normal(0.0, m.daily_noise_sigma, size=self.efficiency.shape))
        eff = self.efficiency * drift * noise
        np.fill_diagonal(eff, 1.0)
        return np.clip(eff, 0.05, 1.0)

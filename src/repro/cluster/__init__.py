"""Cluster substrate: hardware specs, heterogeneous fabric, and profiling.

This package models the "real-world cluster" the paper evaluates on
(Table I).  The key property it reproduces is that nominally identical
interconnect links attain *different* bandwidths in practice (§IV,
Fig. 3), which is what Pipette's fine-grained worker dedication
exploits.
"""

from repro.cluster.topology import GpuSpec, LinkSpec, NodeSpec, ClusterSpec
from repro.cluster.heterogeneity import HeterogeneityModel
from repro.cluster.fat_tree import PoddedHeterogeneityModel
from repro.cluster.fabric import Fabric, BandwidthMatrix
from repro.cluster.profiler import NetworkProfiler, ProfiledNetwork
from repro.cluster.trace import LatencyTrace, collect_latency_trace
from repro.cluster.presets import (
    mid_range_cluster,
    high_end_cluster,
    default_heterogeneity,
    make_fabric,
)

__all__ = [
    "GpuSpec",
    "LinkSpec",
    "NodeSpec",
    "ClusterSpec",
    "HeterogeneityModel",
    "PoddedHeterogeneityModel",
    "Fabric",
    "BandwidthMatrix",
    "NetworkProfiler",
    "ProfiledNetwork",
    "LatencyTrace",
    "collect_latency_trace",
    "mid_range_cluster",
    "high_end_cluster",
    "default_heterogeneity",
    "make_fabric",
]

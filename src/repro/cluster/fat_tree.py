"""Pod-structured (oversubscribed fat-tree) fabric heterogeneity.

The base :class:`~repro.cluster.heterogeneity.HeterogeneityModel`
treats link quality as unstructured randomness.  Real clusters add a
*structural* component: nodes hang off leaf switches ("pods"), and the
leaf-to-spine layer is usually oversubscribed, so traffic crossing pod
boundaries attains a fraction of the intra-pod bandwidth (2:1 to 4:1
oversubscription is standard practice).

This structure is exactly what fine-grained worker dedication can
exploit systematically: placing a pipeline's adjacent stages and its
critical data-parallel group inside one pod avoids the oversubscribed
layer entirely — something the paper's unstructured Fig. 3 spread only
hints at.  The model composes with all of the base model's effects
(per-pair spread, stragglers, drift).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.heterogeneity import HeterogeneityModel, InterNodeState
from repro.cluster.topology import ClusterSpec
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class PoddedHeterogeneityModel(HeterogeneityModel):
    """Heterogeneity with a pod structure on top of the random spread.

    Attributes:
        nodes_per_pod: leaf-switch radix in nodes.
        oversubscription: ratio of intra-pod to cross-pod attained
            bandwidth (2.0 means cross-pod traffic attains half).
    """

    nodes_per_pod: int = 4
    oversubscription: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive_int(self.nodes_per_pod, "nodes_per_pod")
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1.0, got {self.oversubscription}"
            )

    def pod_of(self, node: int) -> int:
        """Pod index of a node."""
        if node < 0:
            raise ValueError(f"node must be non-negative, got {node}")
        return node // self.nodes_per_pod

    def sample_inter_node(self, spec: ClusterSpec, seed) -> InterNodeState:
        """The base draw scaled down across pod boundaries."""
        state = super().sample_inter_node(spec, seed)
        n = spec.n_nodes
        pods = np.arange(n) // self.nodes_per_pod
        cross = pods[:, None] != pods[None, :]
        eff = state.efficiency.copy()
        eff[cross] /= self.oversubscription
        np.fill_diagonal(eff, 1.0)
        eff = np.clip(eff, 0.05, 1.0)
        return InterNodeState(efficiency=eff, drift_phase=state.drift_phase,
                              model=self)

    def n_pods(self, spec: ClusterSpec) -> int:
        """Number of (possibly partial) pods in a cluster."""
        return -(-spec.n_nodes // self.nodes_per_pod)

"""The paper's experimental environments (Table I) as ready-made specs.

Two clusters are modeled:

* **Mid-range**: 16 nodes x 8 NVIDIA V100 (32 GB), NVLink 300 GB/s
  intra-node, InfiniBand EDR (100 Gbit/s) inter-node.
* **High-end**: 16 nodes x 8 NVIDIA A100 (80 GB), NVSwitch 600 GB/s
  intra-node, InfiniBand HDR (200 Gbit/s) inter-node.
"""

from __future__ import annotations

from repro.cluster.fabric import Fabric
from repro.cluster.heterogeneity import HeterogeneityModel
from repro.cluster.topology import ClusterSpec, GpuSpec, LinkSpec, NodeSpec
from repro.units import GIB, gbit_to_gbyte_per_s

#: Marketing name of the mid-range preset.
MID_RANGE = "mid-range"
#: Marketing name of the high-end preset.
HIGH_END = "high-end"


def mid_range_cluster(n_nodes: int = 16) -> ClusterSpec:
    """The V100 / EDR cluster of Table I.

    V100 peak mixed-precision throughput is 125 TFLOP/s; transformer
    layers on V100 typically attain a noticeably lower fraction of peak
    than on A100.  Table I does not state the memory capacity; the
    16 GiB SXM2 part is assumed because the paper says GPT-3.1B
    "reach[es] the GPU memory limit" on this cluster, which only holds
    for the smaller variant.
    """
    gpu = GpuSpec(
        name="V100",
        memory_bytes=16 * GIB,
        peak_flops=125e12,
        achievable_fraction=0.38,
        hbm_gb_s=900.0,
    )
    node = NodeSpec(
        gpus_per_node=8,
        gpu=gpu,
        intra_link=LinkSpec(name="NVLink", bandwidth_gb_s=300.0, alpha_s=4e-6),
    )
    return ClusterSpec(
        name=MID_RANGE,
        n_nodes=n_nodes,
        node=node,
        inter_link=LinkSpec(
            name="Infiniband EDR",
            bandwidth_gb_s=gbit_to_gbyte_per_s(100.0),
            alpha_s=2.0e-5,
        ),
        description="16 nodes x 8 V100, NVLink 300GB/s, IB EDR 100Gbps",
    )


def high_end_cluster(n_nodes: int = 16) -> ClusterSpec:
    """The A100 / HDR cluster of Table I."""
    gpu = GpuSpec(
        name="A100",
        memory_bytes=80 * GIB,
        peak_flops=312e12,
        achievable_fraction=0.45,
        hbm_gb_s=2039.0,
    )
    node = NodeSpec(
        gpus_per_node=8,
        gpu=gpu,
        intra_link=LinkSpec(name="NVSwitch", bandwidth_gb_s=600.0, alpha_s=3e-6),
    )
    return ClusterSpec(
        name=HIGH_END,
        n_nodes=n_nodes,
        node=node,
        inter_link=LinkSpec(
            name="Infiniband HDR",
            bandwidth_gb_s=gbit_to_gbyte_per_s(200.0),
            alpha_s=1.5e-5,
        ),
        description="16 nodes x 8 A100, NVSwitch 600GB/s, IB HDR 200Gbps",
    )


def default_heterogeneity(cluster_name: str = MID_RANGE) -> HeterogeneityModel:
    """Heterogeneity presets per environment.

    Both clusters use the same qualitative model; the high-end fabric
    carries slightly more spread, consistent with the paper observing
    larger gains there (larger models stress the fabric harder and its
    40-day trace, Fig. 3, comes from the high-end environment).
    """
    if cluster_name == MID_RANGE:
        return HeterogeneityModel()
    if cluster_name == HIGH_END:
        return HeterogeneityModel(
            base_efficiency=0.55,
            node_sigma=0.10,
            pair_sigma=0.16,
            straggler_prob=0.12,
            straggler_factor=0.35,
            intra_base_efficiency=0.40,
        )
    raise ValueError(f"unknown cluster preset {cluster_name!r}")


def make_fabric(spec: ClusterSpec, seed: int = 0,
                heterogeneity: HeterogeneityModel | None = None) -> Fabric:
    """Instantiate a fabric for a preset with its default heterogeneity."""
    if heterogeneity is None:
        try:
            heterogeneity = default_heterogeneity(spec.name)
        except ValueError:
            heterogeneity = HeterogeneityModel()
    return Fabric(spec, heterogeneity=heterogeneity, seed=seed)


def table1_rows() -> list[dict]:
    """Table I as data rows (environment summary)."""
    rows = []
    for spec in (mid_range_cluster(), high_end_cluster()):
        rows.append({
            "cluster": spec.name,
            "nodes": spec.n_nodes,
            "gpus": spec.n_gpus,
            "gpu": spec.node.gpu.name,
            "gpu_memory_gib": round(spec.node.gpu.memory_gib, 1),
            "intra_node": f"{spec.node.intra_link.name} "
                          f"({spec.node.intra_link.bandwidth_gb_s:.0f}GB/s)",
            "inter_node": f"{spec.inter_link.name} "
                          f"({spec.inter_link.bandwidth_gb_s * 8:.0f}Gbps)",
        })
    return rows

"""The attained fabric: per-GPU-pair bandwidths of a concrete cluster.

A :class:`Fabric` binds a :class:`~repro.cluster.topology.ClusterSpec`
to one draw of the heterogeneity model.  It is the ground truth the
execution simulator uses; the profiler observes it with measurement
noise, exactly as mpiGraph / NCCL-tests observe a physical fabric.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.cluster.heterogeneity import HeterogeneityModel, InterNodeState
from repro.cluster.topology import ClusterSpec
from repro.units import GB
from repro.utils.rng import derive_seed


def _sentinel_encode(values: np.ndarray) -> np.ndarray:
    """Replace non-finite entries with distinct hashable sentinels.

    Bandwidths and alphas are non-negative, so negative sentinels can
    never collide with measured values: inf (the diagonal) becomes
    ``-1.0`` and NaN (a failed measurement) ``-2.0``.
    """
    return np.where(np.isnan(values), -2.0,
                    np.where(np.isinf(values), -1.0, values))


@dataclass(frozen=True)
class BandwidthMatrix:
    """Pairwise attained bandwidth between all GPUs, in GB/s.

    ``matrix[g1, g2]`` is the attained unidirectional bandwidth from
    GPU ``g1`` to GPU ``g2``; the diagonal is infinite (no transfer).
    ``alpha[g1, g2]`` is the per-message startup latency in seconds.
    This is the ``BW`` object of Algorithm 1 and the ``B(g1, g2)``
    function of Eqs. (5)-(6).
    """

    matrix: np.ndarray
    alpha: np.ndarray

    def __post_init__(self) -> None:
        if self.matrix.ndim != 2 or self.matrix.shape[0] != self.matrix.shape[1]:
            raise ValueError(f"bandwidth matrix must be square, got {self.matrix.shape}")
        if self.alpha.shape != self.matrix.shape:
            raise ValueError("alpha matrix must match bandwidth matrix shape")

    @property
    def n_gpus(self) -> int:
        """Number of GPUs covered by the matrix."""
        return self.matrix.shape[0]

    def between(self, g1: int, g2: int) -> float:
        """Attained bandwidth from ``g1`` to ``g2`` in GB/s."""
        return float(self.matrix[g1, g2])

    def alpha_between(self, g1: int, g2: int) -> float:
        """Per-message startup latency from ``g1`` to ``g2`` in seconds."""
        return float(self.alpha[g1, g2])

    def transfer_time(self, message_bytes: float, g1: int, g2: int) -> float:
        """Alpha-beta time to move ``message_bytes`` from ``g1`` to ``g2``."""
        if g1 == g2:
            return 0.0
        return self.alpha_between(g1, g2) + message_bytes / (self.between(g1, g2) * GB)

    def min_over_group(self, gpus) -> float:
        """Slowest pairwise bandwidth inside a communicator group.

        Ring collectives are gated by their slowest participating link,
        which is how Eq. (6) uses the bandwidth matrix.
        """
        idx = np.asarray(list(gpus), dtype=np.intp)
        if idx.size < 2:
            return float("inf")
        sub = self.matrix[np.ix_(idx, idx)]
        return float(sub.min())  # diagonal is +inf, so it never wins

    def max_alpha_over_group(self, gpus) -> float:
        """Largest startup latency inside a communicator group."""
        idx = np.asarray(list(gpus), dtype=np.intp)
        if idx.size < 2:
            return 0.0
        sub = self.alpha[np.ix_(idx, idx)]
        return float(sub.max())  # diagonal is 0, so it never wins

    def fingerprint(self, decimals: int = 3) -> str:
        """Stable content hash of the matrix, for plan-cache keys.

        The plan cache (:mod:`repro.service.cache`) keys invalidation
        on this value: two profiling campaigns of an unchanged fabric
        hash identically once quantized to ``decimals`` decimal GB/s,
        while a node swap, link degradation, or real drift produces a
        different fingerprint and retires the cached plans.

        NaN (a failed measurement) and inf (the no-transfer diagonal)
        quantize to *distinct* sentinels: a matrix whose off-diagonal
        entries were poisoned by NaN must never hash like a healthy
        one whose corresponding entries are merely infinite.
        """
        digest = hashlib.sha256()
        quant = np.round(_sentinel_encode(self.matrix), decimals)
        digest.update(np.asarray(quant.shape, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(quant).tobytes())
        digest.update(np.ascontiguousarray(
            np.round(_sentinel_encode(self.alpha), 9)).tobytes())
        return digest.hexdigest()[:16]

    def restrict(self, gpus) -> "BandwidthMatrix":
        """The sub-matrix covering only ``gpus``, renumbered compactly.

        Elastic re-planning uses this after a node failure: the
        surviving GPUs keep their measured pairwise bandwidths but are
        re-indexed ``0..len(gpus)-1`` to match the shrunken
        :class:`~repro.cluster.topology.ClusterSpec`.
        """
        idx = np.asarray(list(gpus), dtype=np.intp)
        if idx.size == 0:
            raise ValueError("cannot restrict to an empty GPU set")
        if len(set(idx.tolist())) != idx.size:
            raise ValueError("GPU ids must be unique")
        sub = np.ix_(idx, idx)
        return BandwidthMatrix(matrix=self.matrix[sub].copy(),
                               alpha=self.alpha[sub].copy())


class Fabric:
    """One concrete, heterogeneous instantiation of a cluster's network.

    Args:
        spec: the nominal cluster.
        heterogeneity: spread model; defaults to the library default.
        seed: seed of the persistent heterogeneity draw.

    The fabric is stable over its lifetime except for the slow temporal
    drift exposed through :meth:`bandwidth_at_day`, mirroring the
    40-day measurement campaign of Fig. 3.
    """

    def __init__(self, spec: ClusterSpec,
                 heterogeneity: HeterogeneityModel | None = None,
                 seed: int = 0) -> None:
        self.spec = spec
        self.heterogeneity = heterogeneity or HeterogeneityModel()
        self.seed = int(seed)
        self._inter: InterNodeState = self.heterogeneity.sample_inter_node(spec, self.seed)
        self._intra: np.ndarray = self.heterogeneity.sample_intra_node(spec, self.seed)

    @property
    def n_gpus(self) -> int:
        """Total GPU count of the underlying cluster."""
        return self.spec.n_gpus

    def node_efficiency_at_day(self, day: float) -> np.ndarray:
        """Inter-node efficiency matrix observed on ``day``."""
        return self._inter.at_day(day, derive_seed(self.seed, "drift"))

    def bandwidth_at_day(self, day: float = 0.0) -> BandwidthMatrix:
        """True attained GPU-pair bandwidth matrix on a given day."""
        spec = self.spec
        g = spec.n_gpus
        k = spec.gpus_per_node
        inter_eff = self.node_efficiency_at_day(day)

        matrix = np.empty((g, g))
        alpha = np.empty((g, g))
        inter_bw = spec.inter_link.bandwidth_gb_s
        intra_bw = spec.node.intra_link.bandwidth_gb_s

        node_ids = np.arange(g) // k
        local_ids = np.arange(g) % k
        same = node_ids[:, None] == node_ids[None, :]

        # Inter-node entries: nominal IB speed scaled by the node-pair
        # efficiency (all GPU pairs across the same node pair share the
        # NIC path, hence the same attained value).
        matrix[:] = inter_bw * inter_eff[node_ids[:, None], node_ids[None, :]]
        alpha[:] = spec.inter_link.alpha_s

        # Intra-node entries: NVLink speed with its own (small) spread.
        intra = self._intra[node_ids[:, None], local_ids[:, None], local_ids[None, :]]
        matrix[same] = (intra_bw * intra)[same]
        alpha[same] = spec.node.intra_link.alpha_s

        np.fill_diagonal(matrix, np.inf)
        np.fill_diagonal(alpha, 0.0)
        return BandwidthMatrix(matrix=matrix, alpha=alpha)

    def bandwidth(self) -> BandwidthMatrix:
        """True attained bandwidth matrix at the reference day (day 0)."""
        return self.bandwidth_at_day(0.0)

    def nominal_bandwidth(self) -> BandwidthMatrix:
        """Document-specified bandwidth matrix (what prior art assumes).

        Every inter-node pair gets the sheet IB number and every
        intra-node pair the sheet NVLink number.  AMP's latency model
        is evaluated against this matrix.
        """
        spec = self.spec
        g = spec.n_gpus
        k = spec.gpus_per_node
        node_ids = np.arange(g) // k
        same = node_ids[:, None] == node_ids[None, :]

        matrix = np.full((g, g), spec.inter_link.bandwidth_gb_s)
        alpha = np.full((g, g), spec.inter_link.alpha_s)
        matrix[same] = spec.node.intra_link.bandwidth_gb_s
        alpha[same] = spec.node.intra_link.alpha_s
        np.fill_diagonal(matrix, np.inf)
        np.fill_diagonal(alpha, 0.0)
        return BandwidthMatrix(matrix=matrix, alpha=alpha)

"""Long-running latency trace: the Fig. 3 measurement campaign.

The paper profiles a commercial cluster for 40 days with mpiGraph and
plots, per day, the quantiles over *node-order combinations* of the
inter-stage communication latency of 8 nodes.  The separation of the
quantile lines demonstrates persistent heterogeneity: if all links were
truly equal, every ordering would cost the same.

:func:`collect_latency_trace` repeats that campaign against a
:class:`~repro.cluster.fabric.Fabric`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.fabric import Fabric
from repro.units import GB
from repro.utils.rng import spawn_rng

#: Quantile levels plotted in Fig. 3, in the paper's Q(p%) notation.
FIG3_QUANTILES: tuple[float, ...] = (1.0, 0.75, 0.5, 0.25, 0.0)


@dataclass(frozen=True)
class LatencyTrace:
    """Per-day quantiles of chain latency over node orderings.

    Attributes:
        days: day index of each sample (0-based).
        quantiles: quantile levels, descending like the paper legend.
        latencies_ms: array of shape ``(n_days, n_quantiles)`` holding
            the chain latency in milliseconds.
    """

    days: np.ndarray
    quantiles: tuple[float, ...]
    latencies_ms: np.ndarray = field(repr=False)

    def spread_ratio(self) -> float:
        """Mean ratio of the slowest to the fastest ordering per day.

        A homogeneous fabric yields 1.0; the paper's cluster shows a
        clearly visible spread.
        """
        hi = self.latencies_ms[:, 0]
        lo = self.latencies_ms[:, -1]
        return float(np.mean(hi / lo))

    def rows(self) -> list[dict]:
        """The trace as one dict per day, convenient for printing."""
        out = []
        for i, day in enumerate(self.days):
            row = {"day": int(day)}
            for q, val in zip(self.quantiles, self.latencies_ms[i]):
                row[f"Q({int(q * 100)}%)"] = float(val)
            out.append(row)
        return out


def chain_latency_s(fabric_bw, node_order, message_bytes: float,
                    gpus_per_node: int) -> float:
    """End-to-end p2p latency of a message relayed along a node chain.

    This mimics what a pipeline's inter-stage traffic experiences when
    the stages are placed on the nodes in ``node_order``: one hop per
    adjacent pair, each at the attained bandwidth of that pair (the
    first GPU of each node is used as the endpoint, as all GPU pairs
    across one node pair share the NIC path).
    """
    total = 0.0
    for a, b in zip(node_order[:-1], node_order[1:]):
        g1, g2 = a * gpus_per_node, b * gpus_per_node
        total += fabric_bw.alpha_between(g1, g2)
        total += message_bytes / (fabric_bw.between(g1, g2) * GB)
    return total


def collect_latency_trace(fabric: Fabric, n_days: int = 40,
                          n_nodes_in_chain: int = 8,
                          n_orderings: int = 64,
                          message_bytes: float = 128 * 2**20,
                          quantiles: tuple[float, ...] = FIG3_QUANTILES,
                          seed: int = 0) -> LatencyTrace:
    """Reproduce the Fig. 3 campaign on a synthetic fabric.

    For each day, ``n_orderings`` random orderings of
    ``n_nodes_in_chain`` nodes are measured; the same orderings are
    reused across days (as mpiGraph would rerun the same schedule),
    so day-to-day movement of one line reflects fabric drift, not
    resampling.
    """
    if n_nodes_in_chain > fabric.spec.n_nodes:
        raise ValueError(
            f"chain of {n_nodes_in_chain} nodes exceeds cluster "
            f"({fabric.spec.n_nodes} nodes)"
        )
    if n_orderings < 2:
        raise ValueError("need at least two orderings to show a spread")

    rng = spawn_rng(seed, "trace-orderings")
    orders = [rng.permutation(fabric.spec.n_nodes)[:n_nodes_in_chain]
              for _ in range(n_orderings)]

    k = fabric.spec.gpus_per_node
    days = np.arange(n_days)
    lat_ms = np.zeros((n_days, len(quantiles)))
    for d in days:
        bw = fabric.bandwidth_at_day(float(d))
        samples = np.array([
            chain_latency_s(bw, order, message_bytes, k) for order in orders
        ])
        for j, q in enumerate(quantiles):
            lat_ms[d, j] = np.quantile(samples, q) * 1e3
    return LatencyTrace(days=days, quantiles=tuple(quantiles), latencies_ms=lat_ms)

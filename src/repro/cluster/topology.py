"""Static cluster topology: GPUs, nodes, links, and whole clusters.

These classes describe the *nominal* (document-specified) hardware.
The attained, heterogeneous link performance lives in
:mod:`repro.cluster.fabric`; the split mirrors the paper's observation
that nominal specs and attained bandwidth disagree on real clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GIB
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class GpuSpec:
    """A GPU model.

    Attributes:
        name: marketing name, e.g. ``"V100"``.
        memory_bytes: usable device memory in bytes.
        peak_flops: peak mixed-precision throughput in FLOP/s.
        achievable_fraction: fraction of peak a well-tuned transformer
            layer reaches at large microbatch sizes.  Multiplied by a
            microbatch-dependent utilization curve in
            :mod:`repro.profiling.compute`.
        hbm_gb_s: device-memory bandwidth in GB/s (sizes the optimizer
            step, which streams all parameter state).
    """

    name: str
    memory_bytes: float
    peak_flops: float
    achievable_fraction: float = 0.45
    hbm_gb_s: float = 900.0

    def __post_init__(self) -> None:
        check_positive(self.memory_bytes, "memory_bytes")
        check_positive(self.peak_flops, "peak_flops")
        if not 0.0 < self.achievable_fraction <= 1.0:
            raise ValueError(
                f"achievable_fraction must lie in (0, 1], got {self.achievable_fraction}"
            )

    @property
    def memory_gib(self) -> float:
        """Device memory in binary gibibytes."""
        return self.memory_bytes / GIB

    def to_payload(self) -> dict:
        """JSON-serializable form (see :mod:`repro.service.store`)."""
        return {"name": self.name, "memory_bytes": self.memory_bytes,
                "peak_flops": self.peak_flops,
                "achievable_fraction": self.achievable_fraction,
                "hbm_gb_s": self.hbm_gb_s}

    @classmethod
    def from_payload(cls, payload: dict) -> "GpuSpec":
        """Inverse of :meth:`to_payload`."""
        return cls(**payload)


@dataclass(frozen=True)
class LinkSpec:
    """A nominal interconnect link.

    Attributes:
        name: e.g. ``"NVLink"`` or ``"Infiniband HDR"``.
        bandwidth_gb_s: document-specified unidirectional bandwidth in GB/s.
        alpha_s: fixed per-message startup latency in seconds.
    """

    name: str
    bandwidth_gb_s: float
    alpha_s: float = 5e-6

    def __post_init__(self) -> None:
        check_positive(self.bandwidth_gb_s, "bandwidth_gb_s")
        if self.alpha_s < 0:
            raise ValueError(f"alpha_s must be non-negative, got {self.alpha_s}")

    def to_payload(self) -> dict:
        """JSON-serializable form (see :mod:`repro.service.store`)."""
        return {"name": self.name, "bandwidth_gb_s": self.bandwidth_gb_s,
                "alpha_s": self.alpha_s}

    @classmethod
    def from_payload(cls, payload: dict) -> "LinkSpec":
        """Inverse of :meth:`to_payload`."""
        return cls(**payload)


@dataclass(frozen=True)
class NodeSpec:
    """A server: several GPUs joined by a fast intra-node link."""

    gpus_per_node: int
    gpu: GpuSpec
    intra_link: LinkSpec

    def __post_init__(self) -> None:
        check_positive_int(self.gpus_per_node, "gpus_per_node")

    def to_payload(self) -> dict:
        """JSON-serializable form (see :mod:`repro.service.store`)."""
        return {"gpus_per_node": self.gpus_per_node,
                "gpu": self.gpu.to_payload(),
                "intra_link": self.intra_link.to_payload()}

    @classmethod
    def from_payload(cls, payload: dict) -> "NodeSpec":
        """Inverse of :meth:`to_payload`."""
        return cls(gpus_per_node=payload["gpus_per_node"],
                   gpu=GpuSpec.from_payload(payload["gpu"]),
                   intra_link=LinkSpec.from_payload(payload["intra_link"]))


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous-on-paper cluster of identical nodes.

    The paper's two environments (Table I) are both 16 nodes of
    8 GPUs; :mod:`repro.cluster.presets` builds them.
    """

    name: str
    n_nodes: int
    node: NodeSpec
    inter_link: LinkSpec
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_positive_int(self.n_nodes, "n_nodes")

    @property
    def n_gpus(self) -> int:
        """Total GPU count ``G``."""
        return self.n_nodes * self.node.gpus_per_node

    @property
    def gpus_per_node(self) -> int:
        """GPUs in each node (the natural maximum tensor-parallel degree)."""
        return self.node.gpus_per_node

    @property
    def gpu_memory_bytes(self) -> float:
        """Per-GPU memory limit ``M_limit`` in bytes."""
        return self.node.gpu.memory_bytes

    def node_of(self, gpu: int) -> int:
        """Node index hosting global GPU id ``gpu``."""
        self._check_gpu(gpu)
        return gpu // self.node.gpus_per_node

    def gpus_of_node(self, node: int) -> range:
        """Global GPU ids hosted by ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        k = self.node.gpus_per_node
        return range(node * k, (node + 1) * k)

    def same_node(self, gpu_a: int, gpu_b: int) -> bool:
        """Whether two GPUs share a node (and hence the intra-node link)."""
        return self.node_of(gpu_a) == self.node_of(gpu_b)

    def scaled_to(self, n_nodes: int) -> "ClusterSpec":
        """A copy of this cluster with a different node count.

        Used by the scalability study (Fig. 8), which evaluates 32, 64,
        and 128 GPUs of the same hardware generation.
        """
        return ClusterSpec(
            name=self.name,
            n_nodes=n_nodes,
            node=self.node,
            inter_link=self.inter_link,
            description=self.description,
        )

    def to_payload(self) -> dict:
        """JSON-serializable form (see :mod:`repro.service.store`).

        ``description`` rides along so a rehydrated spec prints the
        same, even though it is excluded from comparison.
        """
        return {"name": self.name, "n_nodes": self.n_nodes,
                "node": self.node.to_payload(),
                "inter_link": self.inter_link.to_payload(),
                "description": self.description}

    @classmethod
    def from_payload(cls, payload: dict) -> "ClusterSpec":
        """Inverse of :meth:`to_payload`."""
        return cls(name=payload["name"], n_nodes=payload["n_nodes"],
                   node=NodeSpec.from_payload(payload["node"]),
                   inter_link=LinkSpec.from_payload(payload["inter_link"]),
                   description=payload.get("description", ""))

    def _check_gpu(self, gpu: int) -> None:
        if not 0 <= gpu < self.n_gpus:
            raise ValueError(f"gpu {gpu} out of range [0, {self.n_gpus})")

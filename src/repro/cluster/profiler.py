"""Network profiling: the mpiGraph / NCCL-tests analogue.

Pipette's first step (Algorithm 1, line 1) measures the actual
pairwise bandwidth of the cluster instead of trusting the data sheet.
:class:`NetworkProfiler` observes a :class:`~repro.cluster.fabric.Fabric`
with realistic measurement noise and reports a
:class:`ProfiledNetwork`, along with the wall-clock cost model used by
the configuration-overhead study (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.fabric import BandwidthMatrix, Fabric
from repro.cluster.topology import ClusterSpec
from repro.units import GB
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class ProfiledNetwork:
    """Result of one profiling campaign.

    Attributes:
        bandwidth: the measured GPU-pair bandwidth matrix (GB/s).
        profiling_seconds: wall-clock cost of the campaign, from the
            cost model calibrated against Table II.
        day: fabric day at which the measurement was taken.
    """

    bandwidth: BandwidthMatrix
    profiling_seconds: float
    day: float = 0.0


class NetworkProfiler:
    """Measures attained pairwise bandwidth of a fabric.

    Args:
        n_rounds: measurement repetitions averaged per pair (mpiGraph
            style); more rounds reduce noise and raise cost.
        message_bytes: probe message size.
        noise_sigma: log-std of a single measurement's multiplicative
            error.
    """

    def __init__(self, n_rounds: int = 4, message_bytes: float = 64 * 2**20,
                 noise_sigma: float = 0.02) -> None:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        self.n_rounds = int(n_rounds)
        self.message_bytes = float(message_bytes)
        self.noise_sigma = float(noise_sigma)

    def profile(self, fabric: Fabric, day: float = 0.0, seed: int = 0) -> ProfiledNetwork:
        """Run the profiling campaign and return the measured matrix.

        The measured value of each ordered pair is the mean of
        ``n_rounds`` noisy observations of the true attained bandwidth.
        """
        truth = fabric.bandwidth_at_day(day)
        rng = spawn_rng(seed, "network-profiler")
        shape = truth.matrix.shape
        observed = np.zeros(shape)
        for _ in range(self.n_rounds):
            noise = np.exp(rng.normal(0.0, self.noise_sigma, size=shape))
            observed += truth.matrix * noise
        measured = observed / self.n_rounds
        np.fill_diagonal(measured, np.inf)
        return ProfiledNetwork(
            bandwidth=BandwidthMatrix(matrix=measured, alpha=truth.alpha.copy()),
            profiling_seconds=self.profiling_cost(fabric.spec),
            day=day,
        )

    def profiling_cost(self, spec: ClusterSpec) -> float:
        """Wall-clock cost of profiling ``spec``, in seconds.

        mpiGraph runs shift-pattern rounds in which all nodes send
        concurrently, so one sweep over all ordered node pairs costs
        ``(n_nodes - 1)`` phases of one message time each, plus a fixed
        per-phase setup.  The cost therefore grows linearly with node
        count, which matches Table II (58 s at 8 nodes -> 120 s at 16
        nodes on the mid-range cluster).  Intra-node sweeps are
        comparatively instant and folded into the setup constant.
        """
        per_message = self.message_bytes / (spec.inter_link.bandwidth_gb_s * GB)
        # Phases sweep ordered pairs; each phase repeats n_rounds times and
        # pays a setup cost for process launch and barriers.  The constants
        # are calibrated so an 8-node sweep costs about a minute (Table II).
        phase_setup = 0.8
        n_phases = 2 * (spec.n_nodes - 1) + 2
        per_phase = self.n_rounds * (per_message * spec.gpus_per_node + phase_setup)
        startup = 8.0
        return startup + n_phases * per_phase

"""Parallelization configurations and their enumeration.

A configuration fixes the three parallel ways ``(pp, tp, dp)`` with
``pp * tp * dp = G`` plus the microbatch size — the search space of
Algorithm 1 (lines 3-5) — and, since the schedule-instruction layer,
the pipeline schedule executing the stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.utils.validation import check_positive_int, divisors

#: Schedule assumed by the paper's model and by pre-schedule payloads.
DEFAULT_SCHEDULE = "1f1b"


@dataclass(frozen=True, order=True)
class ParallelConfig:
    """One point of the 3D-parallelism search space.

    Attributes:
        pp: pipeline-parallel ways (number of stages).
        tp: tensor-parallel ways.
        dp: data-parallel ways (model replicas).
        micro_batch: samples per microbatch ``bs_micro``.
        global_batch: samples per optimizer step ``bs_global``.
        recompute: activation recomputation (checkpointing): stages
            keep only boundary activations and re-run the forward pass
            during backward.  Slashes activation memory at roughly a
            third more compute.  Off for Megatron/AMP/Pipette runs in
            the paper; Varuna's runtime relies on it.
        schedule: name of the pipeline schedule executing the stages
            (a :mod:`repro.sim.schedule` registry key).  ``"1f1b"`` is
            the paper's assumption and the default.
    """

    pp: int
    tp: int
    dp: int
    micro_batch: int
    global_batch: int
    recompute: bool = False
    schedule: str = DEFAULT_SCHEDULE

    def __post_init__(self) -> None:
        for name in ("pp", "tp", "dp", "micro_batch", "global_batch"):
            check_positive_int(getattr(self, name), name)
        if self.global_batch % self.dp != 0:
            raise ValueError(
                f"global batch {self.global_batch} not divisible by dp={self.dp}"
            )
        if self.mini_batch % self.micro_batch != 0:
            raise ValueError(
                f"minibatch {self.mini_batch} not divisible by "
                f"micro_batch={self.micro_batch}"
            )
        if not isinstance(self.schedule, str) or not self.schedule:
            raise ValueError(
                f"schedule must be a non-empty schedule name, "
                f"got {self.schedule!r}"
            )

    @property
    def n_gpus(self) -> int:
        """Workers used: ``pp * tp * dp``."""
        return self.pp * self.tp * self.dp

    @property
    def mini_batch(self) -> int:
        """Per-replica minibatch ``bs_mini = bs_global / dp``."""
        return self.global_batch // self.dp

    @property
    def n_microbatches(self) -> int:
        """Microbatches per iteration ``n_mb = bs_mini / bs_micro``."""
        return self.mini_batch // self.micro_batch

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``pp4-tp8-dp4-mb2``.

        Non-default schedules append a suffix
        (``pp4-tp8-dp4-mb2-interleaved_1f1b``); the 1F1B default stays
        suffix-free so pre-schedule RNG streams and log lines are
        unchanged.
        """
        tag = f"pp{self.pp}-tp{self.tp}-dp{self.dp}-mb{self.micro_batch}"
        if self.recompute:
            tag = tag + "-rc"
        if self.schedule != DEFAULT_SCHEDULE:
            tag = f"{tag}-{self.schedule}"
        return tag

    def with_recompute(self) -> "ParallelConfig":
        """The same configuration with activation recomputation on."""
        return ParallelConfig(pp=self.pp, tp=self.tp, dp=self.dp,
                              micro_batch=self.micro_batch,
                              global_batch=self.global_batch,
                              recompute=True,
                              schedule=self.schedule)

    def with_schedule(self, schedule: str) -> "ParallelConfig":
        """The same configuration under a different pipeline schedule."""
        return ParallelConfig(pp=self.pp, tp=self.tp, dp=self.dp,
                              micro_batch=self.micro_batch,
                              global_batch=self.global_batch,
                              recompute=self.recompute,
                              schedule=schedule)

    def to_payload(self) -> dict:
        """JSON-serializable form (see :mod:`repro.service.store`)."""
        return {"pp": self.pp, "tp": self.tp, "dp": self.dp,
                "micro_batch": self.micro_batch,
                "global_batch": self.global_batch,
                "recompute": self.recompute,
                "schedule": self.schedule}

    @classmethod
    def from_payload(cls, payload: dict) -> "ParallelConfig":
        """Inverse of :meth:`to_payload`.

        Pre-schedule payloads (schema version 1) carry no
        ``schedule`` key; they rehydrate as 1F1B, which is what that
        era's planner assumed.
        """
        return cls(pp=payload["pp"], tp=payload["tp"], dp=payload["dp"],
                   micro_batch=payload["micro_batch"],
                   global_batch=payload["global_batch"],
                   recompute=payload.get("recompute", False),
                   schedule=payload.get("schedule", DEFAULT_SCHEDULE))


def _way_triples(n_gpus: int, max_tp: int, max_pp: int) -> Iterator[tuple[int, int, int]]:
    """All ``(pp, tp, dp)`` with ``pp * tp * dp == n_gpus`` within bounds."""
    for pp in divisors(n_gpus):
        if pp > max_pp:
            continue
        rest = n_gpus // pp
        for tp in divisors(rest):
            if tp > max_tp:
                continue
            yield pp, tp, rest // tp


def enumerate_parallel_configs(n_gpus: int, global_batch: int,
                               gpus_per_node: int = 8,
                               n_layers: int | None = None,
                               micro_batches: "list[int] | None" = None,
                               max_micro_batch: int = 8,
                               tp_power_of_two: bool = True,
                               schedules: "tuple[str, ...] | list[str] | None" = None,
                               ) -> list[ParallelConfig]:
    """Enumerate the legal configuration space of Algorithm 1.

    Constraints applied (all standard practice, see §II and §VII):

    * ``pp * tp * dp = n_gpus``;
    * ``tp <= gpus_per_node`` — tensor-parallel all-reduces are too
      frequent to cross the inter-node fabric;
    * ``tp`` is a power of two when ``tp_power_of_two`` (Megatron
      kernels require it);
    * ``pp <= n_layers`` when the model is known — a stage needs at
      least one layer;
    * ``dp`` divides ``global_batch`` and the microbatch divides the
      resulting minibatch; the paper sweeps microbatch sizes 1-8;
    * each requested schedule's own feasibility predicate (e.g.
      interleaved 1F1B needs ``n_mb`` divisible by ``pp`` and
      ``pp * degree`` layers) prunes shapes that cannot run it.

    Args:
        micro_batches: explicit microbatch candidates; defaults to the
            divisors of each minibatch capped at ``max_micro_batch``.
        schedules: pipeline-schedule names to cross with the shape
            grid; defaults to 1F1B only, which reproduces the
            pre-schedule search space exactly.
    """
    check_positive_int(n_gpus, "n_gpus")
    check_positive_int(global_batch, "global_batch")
    # Imported lazily: ``repro.sim`` imports the engine, which imports
    # this module.
    from repro.sim.schedule import schedule_type

    schedule_names = tuple(schedules) if schedules is not None \
        else (DEFAULT_SCHEDULE,)
    schedule_types = [(name, schedule_type(name)) for name in schedule_names]
    max_pp = n_layers if n_layers is not None else n_gpus
    configs = []
    for pp, tp, dp in _way_triples(n_gpus, max_tp=gpus_per_node, max_pp=max_pp):
        if tp_power_of_two and tp & (tp - 1) != 0:
            continue
        if global_batch % dp != 0:
            continue
        mini = global_batch // dp
        candidates = micro_batches if micro_batches is not None else divisors(mini)
        for micro in candidates:
            if micro > max_micro_batch or mini % micro != 0:
                continue
            n_mb = mini // micro
            for name, sched_type in schedule_types:
                ok, _ = sched_type.feasible(pp, n_mb, n_layers=n_layers)
                if not ok:
                    continue
                configs.append(ParallelConfig(pp=pp, tp=tp, dp=dp,
                                              micro_batch=micro,
                                              global_batch=global_batch,
                                              schedule=name))
    return configs

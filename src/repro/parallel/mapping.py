"""Logical-worker grids and their 1:1 mapping onto physical GPUs.

The paper formalizes fine-grained worker dedication as finding a
bijection ``f : W -> G`` (Eq. 2) between the logical worker grid
``W = [pp] x [tp] x [dp]`` and the GPUs.

Because tensor-parallel groups communicate every layer, every sane
mapping keeps each TP group inside one node (§II-A).  We therefore
factor the bijection into *blocks*: the GPUs of a node are partitioned
into aligned slots of ``tp`` consecutive GPUs, and the mapping permutes
TP groups over slots.  With ``tp = 8`` (the Megatron default) a block
is a full node and the permutation reorders nodes — exactly the
regrouping of the paper's Fig. 4 example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class WorkerGrid:
    """The logical worker cuboid ``[pp] x [tp] x [dp]``.

    Worker coordinates are ``(x, y, z)`` = (pipeline stage, tensor
    rank, data rank), 0-indexed.  A *block* is one TP group: the
    ``tp`` workers sharing ``(x, z)``.
    """

    pp: int
    tp: int
    dp: int

    def __post_init__(self) -> None:
        check_positive_int(self.pp, "pp")
        check_positive_int(self.tp, "tp")
        check_positive_int(self.dp, "dp")

    @property
    def n_workers(self) -> int:
        """Total logical workers ``|W| = pp * tp * dp``."""
        return self.pp * self.tp * self.dp

    @property
    def n_blocks(self) -> int:
        """Number of TP groups ``pp * dp``."""
        return self.pp * self.dp

    def block_index(self, x: int, z: int) -> int:
        """Index of the TP-group block at stage ``x``, data rank ``z``."""
        self._check(x, 0, z)
        return x * self.dp + z

    def block_coords(self, block: int) -> tuple[int, int]:
        """Inverse of :meth:`block_index`: ``block -> (x, z)``."""
        if not 0 <= block < self.n_blocks:
            raise ValueError(f"block {block} out of range [0, {self.n_blocks})")
        return divmod(block, self.dp)

    def _check(self, x: int, y: int, z: int) -> None:
        if not (0 <= x < self.pp and 0 <= y < self.tp and 0 <= z < self.dp):
            raise ValueError(
                f"worker ({x}, {y}, {z}) outside grid "
                f"[{self.pp}] x [{self.tp}] x [{self.dp}]"
            )

    def stage_blocks(self) -> np.ndarray:
        """Block indices arranged by stage: ``out[x, z] == block_index(x, z)``.

        Row ``x`` of the returned ``(pp, dp)`` array holds the TP-group
        blocks of pipeline stage ``x`` — so for any block permutation
        ``perm``, ``perm.reshape(pp, dp)`` (equivalently
        ``perm[grid.stage_blocks()]``) yields the slots by stage.  The
        vectorized latency kernel
        (:mod:`repro.core.latency_kernel`) leans on this layout to turn
        group loops into reshapes.
        """
        return np.arange(self.n_blocks).reshape(self.pp, self.dp)

    def to_payload(self) -> dict:
        """JSON-serializable form (see :mod:`repro.service.store`)."""
        return {"pp": self.pp, "tp": self.tp, "dp": self.dp}

    @classmethod
    def from_payload(cls, payload: dict) -> "WorkerGrid":
        """Inverse of :meth:`to_payload`."""
        return cls(pp=payload["pp"], tp=payload["tp"], dp=payload["dp"])


class Mapping:
    """A bijection from logical workers to GPUs, in block form.

    Args:
        grid: the worker grid.
        cluster: the physical cluster; ``tp`` must divide its
            ``gpus_per_node`` so blocks never straddle nodes.
        block_to_slot: permutation array; block ``b`` (a TP group)
            occupies GPU slot ``block_to_slot[b]``, i.e. GPUs
            ``[slot*tp, (slot+1)*tp)``.
    """

    def __init__(self, grid: WorkerGrid, cluster: ClusterSpec,
                 block_to_slot: np.ndarray) -> None:
        check_slot_geometry(grid, cluster)
        block_to_slot = np.asarray(block_to_slot, dtype=np.int64)
        if block_to_slot.shape != (grid.n_blocks,):
            raise ValueError(
                f"expected {grid.n_blocks} block slots, got shape "
                f"{block_to_slot.shape}"
            )
        if not np.array_equal(np.sort(block_to_slot), np.arange(grid.n_blocks)):
            raise ValueError("block_to_slot must be a permutation of the slots")
        self.grid = grid
        self.cluster = cluster
        self.block_to_slot = block_to_slot

    # ------------------------------------------------------------- accessors

    def gpu(self, x: int, y: int, z: int) -> int:
        """Physical GPU id of logical worker ``(x, y, z)`` — the ``f`` of Eq. 2."""
        self.grid._check(x, y, z)
        slot = self.block_to_slot[self.grid.block_index(x, z)]
        return int(slot * self.grid.tp + y)

    def worker_of_gpu(self, gpu: int) -> tuple[int, int, int]:
        """Inverse lookup: which worker runs on ``gpu``."""
        tp = self.grid.tp
        slot, y = divmod(int(gpu), tp)
        block = int(np.nonzero(self.block_to_slot == slot)[0][0])
        x, z = self.grid.block_coords(block)
        return x, y, z

    def tp_group(self, x: int, z: int) -> list[int]:
        """GPUs of the tensor-parallel group at stage ``x``, data rank ``z``."""
        return [self.gpu(x, y, z) for y in range(self.grid.tp)]

    def pipeline_chain(self, y: int, z: int) -> list[int]:
        """GPUs along the pipeline for tensor rank ``y``, data rank ``z``."""
        return [self.gpu(x, y, z) for x in range(self.grid.pp)]

    def dp_group(self, x: int, y: int) -> list[int]:
        """GPUs of the data-parallel group at stage ``x``, tensor rank ``y``."""
        return [self.gpu(x, y, z) for z in range(self.grid.dp)]

    def node_of_block(self, x: int, z: int) -> int:
        """Node hosting the TP group of ``(x, z)`` (blocks never straddle)."""
        return self.cluster.node_of(self.gpu(x, 0, z))

    # ------------------------------------------------------------- mutation

    def with_block_permutation(self, block_to_slot: np.ndarray) -> "Mapping":
        """A new mapping with a different block permutation."""
        return Mapping(self.grid, self.cluster, block_to_slot)

    def copy(self) -> "Mapping":
        """Deep copy (the permutation array is duplicated)."""
        return Mapping(self.grid, self.cluster, self.block_to_slot.copy())

    def to_payload(self) -> dict:
        """JSON-serializable form, *without* the cluster.

        Plans are persisted per cluster (the store record carries the
        cluster spec once, not per mapping), so rehydration supplies it
        back through :meth:`from_payload`.
        """
        return {"grid": self.grid.to_payload(),
                "block_to_slot": self.block_to_slot.tolist()}

    @classmethod
    def from_payload(cls, payload: dict, cluster: ClusterSpec) -> "Mapping":
        """Inverse of :meth:`to_payload`, rebinding to ``cluster``."""
        return cls(WorkerGrid.from_payload(payload["grid"]), cluster,
                   np.array(payload["block_to_slot"], dtype=np.int64))

    def __eq__(self, other) -> bool:
        return (isinstance(other, Mapping)
                and self.grid == other.grid
                and np.array_equal(self.block_to_slot, other.block_to_slot))

    def __repr__(self) -> str:
        return (f"Mapping(pp={self.grid.pp}, tp={self.grid.tp}, "
                f"dp={self.grid.dp}, blocks={self.block_to_slot.tolist()})")


def check_slot_geometry(grid: WorkerGrid, cluster: ClusterSpec) -> None:
    """Validate that ``grid`` tiles ``cluster`` into aligned block slots.

    The single source of truth for the two geometry rules every
    block-form consumer (``Mapping``, the index tables below, the
    latency kernel) relies on: worker count matches the GPU count, and
    ``tp`` divides ``gpus_per_node`` so TP groups never straddle nodes.
    """
    if grid.n_workers != cluster.n_gpus:
        raise ValueError(
            f"grid has {grid.n_workers} workers but cluster has "
            f"{cluster.n_gpus} GPUs"
        )
    if cluster.gpus_per_node % grid.tp != 0:
        raise ValueError(
            f"tp={grid.tp} does not divide gpus_per_node="
            f"{cluster.gpus_per_node}; TP groups would straddle nodes"
        )


def slot_gpu_index(grid: WorkerGrid, cluster: ClusterSpec) -> np.ndarray:
    """GPU ids of every block slot: ``out[s, y]`` is GPU ``s*tp + y``.

    A slot is ``tp`` consecutive GPUs (the home of one TP group); the
    ``(n_slots, tp)`` table enumerates them all.  Precomputing it once
    lets permutation-dependent group lookups become NumPy gathers
    instead of per-worker arithmetic.
    """
    check_slot_geometry(grid, cluster)
    n_slots = cluster.n_gpus // grid.tp
    return np.arange(n_slots * grid.tp).reshape(n_slots, grid.tp)


def slot_node_index(grid: WorkerGrid, cluster: ClusterSpec) -> np.ndarray:
    """Node hosting each block slot: ``out[s]`` for slots ``0..n_slots-1``.

    Blocks never straddle nodes (``tp`` divides ``gpus_per_node``), so
    the node of a slot is a permutation-independent fact — the "node-of
    table" the latency kernel gathers through instead of calling
    :meth:`ClusterSpec.node_of` per GPU.
    """
    check_slot_geometry(grid, cluster)
    n_slots = cluster.n_gpus // grid.tp
    slots_per_node = cluster.gpus_per_node // grid.tp
    return np.arange(n_slots) // slots_per_node


def sequential_mapping(grid: WorkerGrid, cluster: ClusterSpec) -> Mapping:
    """The naive rank-order mapping every framework defaults to.

    Block ``(x, z)`` lands on slot ``x * dp + z``: tensor ranks are
    adjacent GPUs, data-parallel peers come next, and pipeline stages
    stride across nodes — Megatron-LM's default order and the paper's
    baseline placement (Fig. 4a).
    """
    return Mapping(grid, cluster, np.arange(grid.n_blocks))


def random_block_mapping(grid: WorkerGrid, cluster: ClusterSpec,
                         seed=None) -> Mapping:
    """A uniformly random block permutation (used by SA restarts and tests)."""
    rng = resolve_rng(seed)
    return Mapping(grid, cluster, rng.permutation(grid.n_blocks))


def compact_mapping_after_failure(mapping: Mapping, failed_nodes,
                                  new_cluster: ClusterSpec,
                                  new_grid: WorkerGrid) -> Mapping:
    """Mapping surgery: project a learned placement onto surviving nodes.

    After ``failed_nodes`` drop out of ``mapping.cluster``, the
    survivors are renumbered compactly into ``new_cluster`` (same node
    hardware, fewer nodes) and the worker grid shrinks to ``new_grid``.
    This keeps what simulated annealing learned: surviving TP-group
    blocks retain their relative placement (each old slot is renumbered
    to its compact position), and blocks that lived on failed nodes
    are re-dealt onto the slots freed by the shrink, in logical order.
    The result seeds a warm-start anneal that converges far faster than
    a cold search (:mod:`repro.service.replan`).

    Args:
        mapping: the previously optimized placement.
        failed_nodes: node indices of ``mapping.cluster`` that died.
        new_cluster: the shrunken cluster (``n_nodes`` reduced by the
            failure count; GPU ids compact).
        new_grid: the re-chosen worker grid; its ``tp`` must equal the
            old grid's so slot geometry carries over.
    """
    old_grid, old_cluster = mapping.grid, mapping.cluster
    if new_grid.tp != old_grid.tp:
        raise ValueError(
            f"warm-start surgery requires matching tp (old {old_grid.tp}, "
            f"new {new_grid.tp}); start from a sequential mapping instead"
        )
    if new_grid.n_workers != new_cluster.n_gpus:
        raise ValueError(
            f"new grid has {new_grid.n_workers} workers but the shrunken "
            f"cluster has {new_cluster.n_gpus} GPUs"
        )
    failed = {int(n) for n in failed_nodes}
    for node in failed:
        if not 0 <= node < old_cluster.n_nodes:
            raise ValueError(f"failed node {node} outside the old cluster")
    slots_per_node = old_cluster.gpus_per_node // old_grid.tp
    surviving_slots = [s for s in range(old_grid.n_blocks)
                       if (s // slots_per_node) not in failed]
    compact = {old_slot: i for i, old_slot in enumerate(surviving_slots)}

    # Surviving blocks, in logical block order, keep their (compacted)
    # slots; displaced and excess blocks fill the remaining slots in
    # increasing order.  When new_cluster is exactly the survivor set
    # (the replan path) the preference list already is the permutation;
    # the truncate/fill below covers callers that shrink further (or
    # less) than the failure alone dictates.
    preferred = [compact[s] for s in mapping.block_to_slot.tolist()
                 if s in compact]
    perm = [p for p in preferred if p < new_grid.n_blocks][:new_grid.n_blocks]
    leftover = sorted(set(range(new_grid.n_blocks)) - set(perm))
    perm.extend(leftover)
    return Mapping(new_grid, new_cluster, np.array(perm, dtype=np.int64))

"""Message sizes of the three parallel dimensions.

These are the ``msg_PP``, ``msg_DP`` and tensor-parallel payloads that
enter the latency model (Eqs. 5-6) and the execution simulator.
"""

from __future__ import annotations

from repro.model.memory import stage_parameter_count
from repro.model.transformer import TransformerConfig
from repro.parallel.collectives import ring_allreduce_time
from repro.utils.validation import check_positive_int

#: Tensor-parallel all-reduces per transformer layer per microbatch:
#: one after attention and one after the MLP, in both forward and
#: backward — 4 in total (Megatron-LM column/row-parallel scheme).
TP_ALLREDUCES_PER_LAYER: int = 4


def pp_message_bytes(model: TransformerConfig, micro_batch: int) -> float:
    """Pipeline-parallel boundary message ``msg_PP`` (fp16 activations).

    Eq. (5) doubles this to account for the forward activation and the
    backward gradient crossing the same boundary; the doubling lives in
    the latency model, not here.
    """
    return model.boundary_activation_bytes(micro_batch)


def dp_message_bytes(model: TransformerConfig, pp: int, tp: int,
                     stage: int = 0) -> float:
    """Data-parallel gradient payload ``msg_DP`` of one GPU of ``stage``.

    Megatron accumulates gradients in fp32, so the all-reduce moves
    4 bytes per locally-hosted parameter.
    """
    check_positive_int(tp, "tp")
    return 4.0 * stage_parameter_count(model, pp, stage) / tp


def tp_allreduce_bytes(model: TransformerConfig, micro_batch: int) -> float:
    """Payload of one tensor-parallel all-reduce (fp16 activations)."""
    check_positive_int(micro_batch, "micro_batch")
    return 2.0 * model.seq_length * micro_batch * model.hidden_size


def tp_comm_time(model: TransformerConfig, n_layers: int, micro_batch: int,
                 tp: int, bandwidth_gb_s: float, alpha_s: float = 0.0) -> float:
    """Tensor-parallel communication ``T_TP_com`` of one microbatch.

    ``n_layers`` is the stage's layer count; each layer performs
    :data:`TP_ALLREDUCES_PER_LAYER` ring all-reduces over the TP group.
    Zero when ``tp == 1``.
    """
    check_positive_int(tp, "tp")
    if tp == 1:
        return 0.0
    if n_layers < 0:
        raise ValueError(f"n_layers must be non-negative, got {n_layers}")
    one = ring_allreduce_time(tp_allreduce_bytes(model, micro_batch), tp,
                              bandwidth_gb_s, alpha_s)
    return n_layers * TP_ALLREDUCES_PER_LAYER * one

"""Alpha-beta cost models of the collectives used by 3D parallelism.

The formulas follow Thakur, Rabenseifner & Gropp (IJHPCA 2005), the
reference the paper cites ([19]) for its data-parallel term (Eq. 6):
a ring all-reduce over ``p`` peers moves ``2 (p-1)/p`` of the message
over the slowest participating link.
"""

from __future__ import annotations

from repro.units import GB
from repro.utils.validation import check_positive_int


def p2p_time(message_bytes: float, bandwidth_gb_s: float,
             alpha_s: float = 0.0) -> float:
    """Point-to-point send of ``message_bytes`` over one link."""
    if message_bytes < 0:
        raise ValueError(f"message size must be non-negative, got {message_bytes}")
    if bandwidth_gb_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_gb_s}")
    return alpha_s + message_bytes / (bandwidth_gb_s * GB)


def ring_allreduce_time(message_bytes: float, n_peers: int,
                        bandwidth_gb_s: float, alpha_s: float = 0.0) -> float:
    """Ring all-reduce of ``message_bytes`` over ``n_peers``.

    ``2 (p-1) alpha + 2 (p-1)/p * n / B``: a reduce-scatter plus an
    all-gather, each of ``p - 1`` steps.  Degenerates to zero for a
    single peer.
    """
    check_positive_int(n_peers, "n_peers")
    if n_peers == 1:
        return 0.0
    if bandwidth_gb_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_gb_s}")
    steps = n_peers - 1
    return 2.0 * steps * alpha_s + 2.0 * (steps / n_peers) * message_bytes / (
        bandwidth_gb_s * GB
    )


def hierarchical_allreduce_time(message_bytes: float,
                                intra_peers: int, inter_peers: int,
                                intra_bandwidth_gb_s: float,
                                inter_bandwidth_gb_s: float,
                                intra_alpha_s: float = 0.0,
                                inter_alpha_s: float = 0.0) -> float:
    """Hierarchical ring all-reduce: intra-node, inter-node, intra-node.

    This is the algorithm Eq. (6) assumes: "two intra-node all-reduces
    and a single inter-node all-reduce".  The intra phases cost
    ``4 (k-1)/k * n / B_intra`` combined and the inter phase
    ``2 (k'-1)/k' * n / B_inter``, each gated by the slowest link of
    its communicator.
    """
    intra = 2.0 * ring_allreduce_time(message_bytes, intra_peers,
                                      intra_bandwidth_gb_s, intra_alpha_s) \
        if intra_peers > 1 else 0.0
    inter = ring_allreduce_time(message_bytes, inter_peers,
                                inter_bandwidth_gb_s, inter_alpha_s) \
        if inter_peers > 1 else 0.0
    return intra + inter

"""3D-parallelism core: configurations, mappings, and communication costs."""

from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.parallel.mapping import (
    WorkerGrid,
    Mapping,
    sequential_mapping,
    random_block_mapping,
    compact_mapping_after_failure,
    check_slot_geometry,
    slot_gpu_index,
    slot_node_index,
)
from repro.parallel.collectives import (
    p2p_time,
    ring_allreduce_time,
    hierarchical_allreduce_time,
)
from repro.parallel.messages import (
    pp_message_bytes,
    dp_message_bytes,
    tp_allreduce_bytes,
    TP_ALLREDUCES_PER_LAYER,
    tp_comm_time,
)

__all__ = [
    "ParallelConfig",
    "enumerate_parallel_configs",
    "WorkerGrid",
    "Mapping",
    "sequential_mapping",
    "random_block_mapping",
    "compact_mapping_after_failure",
    "check_slot_geometry",
    "slot_gpu_index",
    "slot_node_index",
    "p2p_time",
    "ring_allreduce_time",
    "hierarchical_allreduce_time",
    "pp_message_bytes",
    "dp_message_bytes",
    "tp_allreduce_bytes",
    "TP_ALLREDUCES_PER_LAYER",
    "tp_comm_time",
]

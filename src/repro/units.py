"""Physical units and conversion helpers used across the library.

Conventions (see DESIGN.md §6):

* **bandwidth** is expressed in gigabytes per second (``GB/s``, decimal),
* **message and memory sizes** are expressed in bytes,
* **time** is expressed in seconds.

GPU memory capacities are quoted by vendors in binary gibibytes, so the
:data:`GIB` constant is provided alongside the decimal :data:`GB`.
"""

from __future__ import annotations

#: One kibibyte (2**10 bytes).
KIB: int = 1024
#: One mebibyte (2**20 bytes).
MIB: int = 1024**2
#: One gibibyte (2**30 bytes).
GIB: int = 1024**3

#: One decimal kilobyte (10**3 bytes).
KB: int = 10**3
#: One decimal megabyte (10**6 bytes).
MB: int = 10**6
#: One decimal gigabyte (10**9 bytes).
GB: int = 10**9

#: Seconds per microsecond.
USEC: float = 1e-6
#: Seconds per millisecond.
MSEC: float = 1e-3

#: Seconds in one day (used by the long-running profiling trace).
SECONDS_PER_DAY: float = 86400.0


def gbit_to_gbyte_per_s(gbit_per_s: float) -> float:
    """Convert a link speed quoted in Gbit/s into GB/s.

    InfiniBand speeds are marketed in Gbit/s (EDR = 100 Gbit/s,
    HDR = 200 Gbit/s) while NVLink speeds are quoted in GB/s; the
    library stores everything in GB/s.

    >>> gbit_to_gbyte_per_s(100.0)
    12.5
    """
    if gbit_per_s < 0:
        raise ValueError(f"link speed must be non-negative, got {gbit_per_s}")
    return gbit_per_s / 8.0


def bytes_to_gib(n_bytes: float) -> float:
    """Express a byte count in binary gibibytes.

    >>> bytes_to_gib(GIB)
    1.0
    """
    return n_bytes / GIB


def gib_to_bytes(n_gib: float) -> float:
    """Express a gibibyte count in bytes."""
    return n_gib * GIB


def transfer_time(message_bytes: float, bandwidth_gb_s: float,
                  alpha_s: float = 0.0) -> float:
    """Time to push ``message_bytes`` over a link, alpha-beta model.

    ``alpha_s`` is the fixed per-message startup latency and the
    bandwidth term follows the usual :math:`\\alpha + n\\beta` cost
    model of collective-communication literature.

    >>> transfer_time(GB, 10.0)
    0.1
    """
    if message_bytes < 0:
        raise ValueError(f"message size must be non-negative, got {message_bytes}")
    if bandwidth_gb_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_gb_s}")
    return alpha_s + message_bytes / (bandwidth_gb_s * GB)


def mape(estimates, actuals) -> float:
    """Mean absolute percentage error, in percent.

    This is the error metric the paper reports for both the latency
    estimator (Fig. 5a) and the memory estimator (Fig. 7).
    """
    import numpy as np

    est = np.asarray(estimates, dtype=float)
    act = np.asarray(actuals, dtype=float)
    if est.shape != act.shape:
        raise ValueError(f"shape mismatch: {est.shape} vs {act.shape}")
    if est.size == 0:
        raise ValueError("MAPE of an empty sample is undefined")
    if np.any(act == 0):
        raise ValueError("actual values must be non-zero for MAPE")
    return float(np.mean(np.abs(est - act) / np.abs(act)) * 100.0)

"""Structured JSON logging for the planning service.

The JSON-lines transport owns stdout — one planning answer per line,
parsed by machines — so every diagnostic line the service emits must
go elsewhere or it corrupts the protocol.  This module configures the
stdlib :mod:`logging` tree to write one JSON object per record to
**stderr**, carrying the active trace id (when tracing is on) so log
lines and spans of the same request join on one key.
"""

from __future__ import annotations

import json
import logging
import sys
import time

from repro.obs.trace import TRACER

__all__ = ["JsonFormatter", "configure_logging", "get_logger"]

#: Root of the service's logger namespace.
LOGGER_PREFIX = "repro"


class JsonFormatter(logging.Formatter):
    """Render each record as one sorted-key JSON object.

    Fields: ``ts`` (unix seconds), ``level``, ``logger``, ``message``,
    any extras passed via ``logging``'s ``extra=`` mapping, plus
    ``trace_id``/``span_id`` when a span is active on the calling
    context — logs emitted while serving a traced request carry its
    identity automatically.
    """

    #: Attributes of a bare LogRecord; anything else came in via ``extra=``.
    _STANDARD = frozenset(vars(logging.LogRecord(
        "", 0, "", 0, "", (), None)).keys()) | {"message", "asctime",
                                                "taskName"}

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = TRACER.current()
        if span is not None and span.recording:
            payload["trace_id"] = span.trace_id
            payload["span_id"] = span.span_id
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        for key, value in vars(record).items():
            if key in self._STANDARD or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        return json.dumps(payload, sort_keys=True)


def configure_logging(level: str = "info", stream=None) -> logging.Logger:
    """Point the ``repro`` logger tree at stderr with JSON formatting.

    Idempotent: repeated calls replace the handler rather than stack
    one per call (a re-served CLI process must not double-log).

    Args:
        level: standard level name, case-insensitive (``"debug"``,
            ``"info"``, ``"warning"``, ``"error"``).
        stream: destination (tests inject a buffer); default stderr.

    Returns:
        The configured root ``repro`` logger.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    logger = logging.getLogger(LOGGER_PREFIX)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(JsonFormatter())
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    _time_anchor(logger)
    return logger


def _time_anchor(logger: logging.Logger) -> None:
    """Emit one anchor line so relative timestamps can be aligned."""
    logger.debug("logging configured", extra={"monotonic": time.monotonic()})


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if name.startswith(LOGGER_PREFIX + ".") or name == LOGGER_PREFIX:
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_PREFIX}.{name}")

"""The annealer flight recorder: cheap, sampled SA convergence telemetry.

Aggregate metrics say a candidate's anneal took 80 ms; they cannot say
whether it *converged* or merely hit the time limit, nor what the
temperature and acceptance rate looked like on the way down — the
per-iteration telemetry that tuning systems (PipeTune) live on.  A
:class:`FlightRecorder` rides along one :func:`~repro.core.annealing.
anneal_mapping` call and captures a bounded, decimated series of
``(iteration, temperature, best_so_far, acceptance_rate)`` samples
plus run provenance (cold start / warm start / restart index) and the
exit reason.

The recorder must never perturb the search itself:

* it draws nothing from the RNG and never touches the mapping, so the
  accept/reject trajectory is bit-identical with or without it;
* the hot loop pays one ``is not None`` check when recording is off
  (the annealer's default), keeping the PR 5 kernel floor intact;
* when on, sampling is strided and the series is capped: once
  ``max_samples`` is reached the stride doubles and every other stored
  sample is dropped, so a million-iteration run still yields at most
  ``max_samples`` points with even coverage.

Recorders are created inside :func:`repro.core.configurator.
refine_unit` — in the worker process, when candidates fan out over a
process pool — and travel home as the plain-dict
:meth:`FlightRecorder.to_payload`, which the parent attaches to that
candidate's ``search.candidate`` span.
"""

from __future__ import annotations

__all__ = ["FlightRecorder"]

#: Default cap on stored samples (decimation threshold).
DEFAULT_MAX_SAMPLES = 256


class FlightRecorder:
    """Convergence telemetry for one simulated-annealing run.

    Args:
        provenance: where the starting mapping came from — ``"cold"``
            (naive placement), ``"warm-start"`` (elastic re-plan from
            the incumbent), or ``"restart-k"`` for the k-th restart of
            :func:`~repro.core.annealing.anneal_mapping_with_restarts`.
        max_samples: stored-series bound; the stride doubles and the
            series is thinned 2:1 whenever it fills.
        stride: initial sampling stride in iterations.
    """

    __slots__ = ("provenance", "max_samples", "stride", "samples",
                 "exit_reason", "iterations", "evaluations", "accepted",
                 "initial_value", "final_value", "_accept_window",
                 "_window_span", "moves_proposed", "moves_accepted",
                 "delta_evaluations", "full_evaluations")

    def __init__(self, provenance: str = "cold",
                 max_samples: int = DEFAULT_MAX_SAMPLES,
                 stride: int = 16) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.provenance = provenance
        self.max_samples = int(max_samples)
        self.stride = int(stride)
        #: Stored rows: ``(iteration, temperature, best, accept_rate)``.
        self.samples: "list[tuple[int, float, float, float]]" = []
        self.exit_reason: "str | None" = None
        self.iterations = 0
        self.evaluations = 0
        self.accepted = 0
        self.initial_value: "float | None" = None
        self.final_value: "float | None" = None
        self._accept_window = 0   # accepts since the last stored sample
        self._window_span = 0     # iterations since the last stored sample
        #: Per-move-kind proposal / acceptance counters, filled only for
        #: iterations whose move kind the loop reports.
        self.moves_proposed: "dict[str, int]" = {}
        self.moves_accepted: "dict[str, int]" = {}
        #: How :attr:`evaluations` splits between the kernel's
        #: incremental path and full re-scores.
        self.delta_evaluations = 0
        self.full_evaluations = 0

    def start(self, initial_value: float, evaluations: int = 1,
              delta_evaluations: int = 0) -> None:
        """Record the starting objective and evaluations spent so far.

        ``evaluations`` counts objective calls made before iteration 0
        — the initial evaluation plus any temperature probes —
        ``delta_evaluations`` of which went through the incremental
        path (the rest were full re-scores).
        """
        self.initial_value = float(initial_value)
        self.evaluations = int(evaluations)
        self.delta_evaluations = int(delta_evaluations)
        self.full_evaluations = int(evaluations) - int(delta_evaluations)

    def sample(self, iteration: int, temperature: float, best: float,
               accepted_move: bool, move: "str | None" = None,
               delta: bool = False) -> None:
        """Observe one iteration (called from the annealing hot loop).

        Every call is O(1); a row is stored only every ``stride``
        iterations, carrying the acceptance *rate over the window*
        since the previous stored row rather than a point sample.
        ``move`` names the proposed move's kind for the per-kind
        counters; ``delta`` marks the iteration's evaluation as having
        gone through the objective's incremental path.  Both are
        bookkeeping on values the loop already has — no RNG draws.
        """
        self.iterations = iteration + 1
        self.evaluations += 1
        if delta:
            self.delta_evaluations += 1
        else:
            self.full_evaluations += 1
        if move is not None:
            self.moves_proposed[move] = self.moves_proposed.get(move, 0) + 1
            if accepted_move:
                self.moves_accepted[move] = \
                    self.moves_accepted.get(move, 0) + 1
        self._window_span += 1
        if accepted_move:
            self.accepted += 1
            self._accept_window += 1
        if (iteration + 1) % self.stride:
            return
        rate = self._accept_window / self._window_span
        self.samples.append(
            (iteration + 1, float(temperature), float(best), rate))
        self._accept_window = 0
        self._window_span = 0
        if len(self.samples) >= self.max_samples:
            # Thin 2:1 and double the stride: coverage stays even,
            # memory stays bounded, future samples land on the new grid.
            self.samples = self.samples[1::2]
            self.stride *= 2

    def finish(self, exit_reason: str, final_value: float) -> None:
        """Seal the run with its exit reason and best objective."""
        self.exit_reason = exit_reason
        self.final_value = float(final_value)

    def to_payload(self) -> dict:
        """Plain-dict form — picklable, JSON-serializable, and small.

        The series is transposed into parallel arrays (one list per
        field) so a dump reads naturally into plotting code.
        """
        return {
            "provenance": self.provenance,
            "exit_reason": self.exit_reason,
            "iterations": self.iterations,
            "evaluations": self.evaluations,
            "accepted": self.accepted,
            "initial_value": self.initial_value,
            "final_value": self.final_value,
            "delta_evaluations": self.delta_evaluations,
            "full_evaluations": self.full_evaluations,
            "moves": {
                "proposed": dict(self.moves_proposed),
                "accepted": dict(self.moves_accepted),
            },
            "series": {
                "iteration": [row[0] for row in self.samples],
                "temperature": [row[1] for row in self.samples],
                "best_so_far": [row[2] for row in self.samples],
                "acceptance_rate": [row[3] for row in self.samples],
            },
        }

"""Observability: tracing, the annealer flight recorder, JSON logs.

Everything here is stdlib-only and near-free when disabled — see
``docs/OBSERVABILITY.md`` for the span model, the debug endpoints,
and the measured overhead.
"""

from repro.obs.logs import JsonFormatter, configure_logging, get_logger
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TRACER,
    Tracer,
    format_traceparent,
    parse_traceparent,
)

__all__ = [
    "FlightRecorder",
    "JsonFormatter",
    "NULL_SPAN",
    "Span",
    "TRACER",
    "Tracer",
    "configure_logging",
    "format_traceparent",
    "get_logger",
    "parse_traceparent",
]

"""Spans, the tracer, and the trace ring buffer — stdlib only.

Aggregate Prometheus counters (:mod:`repro.service.metrics`) answer
"how many" and "how slow on average"; they cannot answer *"why did
this request take 900 ms"*.  This module supplies the per-request
story: a :class:`Span` is one named, timed step of a plan's life
(queue wait, cache lookup, one candidate's anneal), spans of one
request share a ``trace_id``, and the :class:`Tracer` collects each
finished trace into a bounded in-process ring buffer that the HTTP
front end exposes under ``GET /v1/debug/traces``.

Design constraints, in order:

* **near-free when disabled** — tracing is off by default, and the
  disabled path must cost one attribute read per call site: every
  span-producing entry point returns the singleton :data:`NULL_SPAN`
  whose mutators are no-ops, so instrumented code never branches on
  the switch itself.  The annealer's hot loop is kept out of this
  module entirely (see :mod:`repro.obs.recorder`), preserving the
  PR 5 kernel floor and bit-identical seed trajectories;
* **correct across threads and tasks** — parenting uses a
  ``contextvars.ContextVar`` (asyncio tasks inherit it at creation),
  and call sites that cross an explicit boundary (the gateway's lane
  queue into a drain thread) pass the parent span explicitly;
* **bounded everywhere** — finished traces live in a ring buffer
  (``max_traces``), open traces are capped (``max_open_traces``) and
  the oldest are dropped on overflow, and one trace holds at most
  ``max_spans_per_trace`` spans, so a tracing-enabled server cannot
  grow without bound no matter the traffic;
* **W3C interoperable** — incoming ``traceparent`` request headers
  are honored (the caller's trace id is adopted) and every traced
  HTTP response emits one, so Pipette spans slot into a larger
  distributed trace.

The span model, endpoint schemas, and overhead numbers are documented
in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import threading
import time
from collections import OrderedDict, deque

__all__ = [
    "NULL_SPAN",
    "Span",
    "TRACER",
    "Tracer",
    "format_traceparent",
    "parse_traceparent",
]

#: Finished traces kept for ``/v1/debug/traces`` (ring buffer bound).
DEFAULT_MAX_TRACES = 256

#: Open (root not yet finished) traces tracked at once.
DEFAULT_MAX_OPEN_TRACES = 512

#: Spans recorded per trace before further spans are dropped.
DEFAULT_MAX_SPANS_PER_TRACE = 512

#: Span names whose durations feed the per-phase latency histogram.
#: A fixed set keeps the ``phase`` label cardinality bounded no matter
#: what span names future call sites invent.
PHASE_SPANS = frozenset({
    "http.request", "gateway.plan", "queue.wait", "plan.cache_lookup",
    "plan.search", "search.memory_check", "search.score", "search.refine",
    "search.candidate", "registry.route", "replan", "replan.rerank",
    "replan.warm_anneal", "replan.cold_search", "event.bandwidth",
    "event.failure",
})

#: Buckets for the anneal iteration/evaluation histograms (counts, not
#: seconds — the latency default would collapse everything into +Inf).
ANNEAL_COUNT_BUCKETS = (100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
                        10000.0, 25000.0, 50000.0, 100000.0)


def _new_id(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


def parse_traceparent(header: str) -> "tuple[str, str] | None":
    """``(trace_id, parent_span_id)`` from a W3C ``traceparent`` header.

    Returns ``None`` for malformed or all-zero values rather than
    raising — a bad header from a remote caller must never fail the
    request it rode in on.
    """
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, _flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(version, 16), int(trace_id, 16), int(span_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id


def format_traceparent(span: "Span") -> str:
    """The W3C ``traceparent`` header value naming ``span``."""
    return f"00-{span.trace_id}-{span.span_id}-01"


class Span:
    """One named, timed step of a trace.

    Spans are created through :class:`Tracer` (never directly), carry
    free-form ``attributes``, and are recorded into their trace when
    :meth:`end` fires.  Wall-clock timestamps (``start_ts``) anchor
    the trace in real time; durations come from ``perf_counter`` so
    they survive clock steps.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_ts",
                 "_start", "duration_s", "attributes", "_tracer", "_token",
                 "_local_root")

    def __init__(self, tracer: "Tracer | None", name: str, trace_id: str,
                 span_id: str, parent_id: "str | None",
                 attributes: "dict | None" = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ts = time.time()
        self._start = time.perf_counter()
        self.duration_s: "float | None" = None
        self.attributes: dict = dict(attributes) if attributes else {}
        self._tracer = tracer
        self._token = None
        # The first span of a trace in *this* process: its end finishes
        # the trace even when a remote traceparent gave it a parent id.
        self._local_root = False

    @property
    def recording(self) -> bool:
        """Whether this span lands anywhere (``False`` for the null span)."""
        return self._tracer is not None

    def set_attribute(self, key: str, value) -> "Span":
        """Attach one key/value to the span (chainable)."""
        self.attributes[key] = value
        return self

    def end(self) -> None:
        """Finish the span and record it (idempotent)."""
        if self._tracer is None or self.duration_s is not None:
            return
        self.duration_s = time.perf_counter() - self._start
        self._tracer._record(self)

    def to_payload(self) -> dict:
        """JSON-serializable form of the span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ts": self.start_ts,
            "duration_ms": None if self.duration_s is None
            else round(self.duration_s * 1e3, 6),
            "attributes": self.attributes,
        }


class _NullSpan(Span):
    """The span returned while tracing is disabled: every mutator a no-op.

    One shared instance serves every call site, so the disabled path
    costs a method call that returns immediately — no allocation, no
    lock, no clock read.
    """

    def __init__(self) -> None:
        super().__init__(None, "", "0" * 32, "0" * 16, None)

    def set_attribute(self, key: str, value) -> "Span":
        return self

    def end(self) -> None:
        return


#: The shared disabled-path span.
NULL_SPAN = _NullSpan()

_current_span: "contextvars.ContextVar[Span | None]" = \
    contextvars.ContextVar("repro_obs_current_span", default=None)


class Tracer:
    """Creates spans, assembles traces, owns the ring buffer.

    One process-wide instance (:data:`TRACER`) serves the whole stack;
    tests may build private tracers.  All methods are thread-safe —
    spans finish on the event loop, in gateway drain threads, and in
    executor worker threads concurrently.

    Args:
        max_traces: finished traces kept for the debug endpoints.
        max_open_traces: traces whose root has not finished yet; the
            oldest open trace is dropped beyond this.
        max_spans_per_trace: recorded spans per trace; later spans of
            an over-full trace are counted (``dropped_spans``) but not
            stored.
    """

    def __init__(self, max_traces: int = DEFAULT_MAX_TRACES,
                 max_open_traces: int = DEFAULT_MAX_OPEN_TRACES,
                 max_spans_per_trace: int = DEFAULT_MAX_SPANS_PER_TRACE,
                 ) -> None:
        self.enabled = False
        self.max_traces = int(max_traces)
        self.max_open_traces = int(max_open_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._lock = threading.Lock()
        self._open: "OrderedDict[str, list[Span]]" = OrderedDict()
        self._finished: "OrderedDict[str, dict]" = OrderedDict()
        self._trace_file = None
        self._trace_path: "str | None" = None
        self._phase_histogram = None
        self._anneal_iterations = None
        self._anneal_evaluations = None
        self._anneal_delta_evals = None

    # ----------------------------------------------------------- lifecycle

    def enable(self, trace_file: "str | None" = None) -> None:
        """Turn tracing on, optionally mirroring spans to a file.

        ``trace_file`` appends one JSON line per finished span —
        the durable twin of the in-memory ring buffer, readable by
        ``python -m repro.service trace``.
        """
        with self._lock:
            if trace_file is not None:
                self._close_file_locked()
                self._trace_file = open(trace_file, "a", encoding="utf-8")
                self._trace_path = str(trace_file)
            self.enabled = True

    def disable(self) -> None:
        """Turn tracing off and close the trace file, keeping the buffer."""
        with self._lock:
            self.enabled = False
            self._close_file_locked()

    def reset(self) -> None:
        """Drop every open and finished trace (tests, mostly)."""
        with self._lock:
            self._open.clear()
            self._finished.clear()

    def _close_file_locked(self) -> None:
        if self._trace_file is not None:
            try:
                self._trace_file.close()
            except OSError:
                pass
            self._trace_file = None
            self._trace_path = None

    @property
    def trace_path(self) -> "str | None":
        """Path of the JSON-lines trace file, when one is open."""
        return self._trace_path

    # ------------------------------------------------------------- metrics

    def attach_metrics(self, metrics) -> None:
        """Export span-derived series on a metrics registry.

        ``pipette_phase_latency_seconds{phase=...}`` observes every
        finished span whose name is in :data:`PHASE_SPANS`;
        ``pipette_anneal_iterations`` / ``pipette_anneal_evaluations``
        observe each ``search.candidate`` span's flight-recorder
        counts, and ``pipette_anneal_delta_evals_total`` accumulates
        how many of those evaluations went through the kernel's
        incremental path.  Duck-typed on the registry (no import of
        :mod:`repro.service.metrics` here) to keep ``repro.obs``
        dependency-free.
        """
        self._phase_histogram = metrics.histogram(
            "pipette_phase_latency_seconds",
            "Wall-clock of one traced phase of a plan's life "
            "(span durations, by span name).",
            ("phase",))
        self._anneal_iterations = metrics.histogram(
            "pipette_anneal_iterations",
            "Simulated-annealing iterations per refined candidate.",
            buckets=ANNEAL_COUNT_BUCKETS)
        self._anneal_evaluations = metrics.histogram(
            "pipette_anneal_evaluations",
            "Objective evaluations per refined candidate "
            "(initial + temperature probes + one per iteration).",
            buckets=ANNEAL_COUNT_BUCKETS)
        self._anneal_delta_evals = metrics.counter(
            "pipette_anneal_delta_evals_total",
            "Annealer objective evaluations served by the latency "
            "kernel's incremental (delta) path.")

    # --------------------------------------------------------------- spans

    def current(self) -> "Span | None":
        """The active span of this task/thread, if any."""
        return _current_span.get()

    def start_span(self, name: str, parent: "Span | None" = None,
                   remote: "tuple[str, str] | None" = None,
                   **attributes) -> Span:
        """Start (and return) a span; the caller must :meth:`end` it.

        Parenting, most specific wins: an explicit ``parent`` span, a
        ``remote`` ``(trace_id, span_id)`` pair from a ``traceparent``
        header, then the context-local current span, else a new root.
        Returns :data:`NULL_SPAN` while tracing is disabled.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is not None and parent.recording:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif remote is not None:
            trace_id, parent_id = remote
        else:
            implicit = _current_span.get()
            if implicit is not None and implicit.recording:
                trace_id, parent_id = implicit.trace_id, implicit.span_id
            else:
                trace_id, parent_id = _new_id(16), None
        span = Span(self, name, trace_id, _new_id(8), parent_id, attributes)
        with self._lock:
            span._local_root = self._open_trace_locked(trace_id)
        return span

    @contextlib.contextmanager
    def span(self, name: str, parent: "Span | None" = None, **attributes):
        """Context manager: start a span, make it current, end it.

        The yielded span is installed as the context-local parent for
        the ``with`` body, so nested :meth:`span` calls (and spans
        created in tasks spawned inside the body) form a tree without
        explicit plumbing.
        """
        span = self.start_span(name, parent=parent, **attributes)
        if span is NULL_SPAN:
            yield span
            return
        token = _current_span.set(span)
        try:
            yield span
        finally:
            _current_span.reset(token)
            span.end()

    def activate(self, span: "Span | None"):
        """Install ``span`` as the context-local parent; returns a token.

        For call sites that cannot use the :meth:`span` context
        manager (e.g. re-activating a ticket's span inside a drain
        thread).  Pass the token to :meth:`deactivate`.
        """
        return _current_span.set(span)

    def deactivate(self, token) -> None:
        """Undo :meth:`activate`."""
        _current_span.reset(token)

    def record_span(self, name: str, duration_s: float,
                    parent: "Span | None" = None, **attributes) -> Span:
        """Record an already-measured span (ends immediately).

        For work measured elsewhere — a candidate annealed in a worker
        process reports its elapsed time home, and the parent records
        it as a child span whose start is back-dated by the duration.
        """
        if not self.enabled:
            return NULL_SPAN
        span = self.start_span(name, parent=parent, **attributes)
        if span is not NULL_SPAN:
            span.start_ts -= float(duration_s)
            span._start -= float(duration_s)
            span.end()
        return span

    # ------------------------------------------------------------ assembly

    def _open_trace_locked(self, trace_id: str) -> bool:
        """Ensure ``trace_id`` is tracked; True if this call opened it."""
        if trace_id in self._open or trace_id in self._finished:
            return False
        self._open[trace_id] = []
        while len(self._open) > self.max_open_traces:
            self._open.popitem(last=False)
        return True

    def _record(self, span: Span) -> None:
        """A span finished: store it, export metrics, write the file."""
        self._observe_metrics(span)
        with self._lock:
            bucket = self._open.get(span.trace_id)
            if bucket is not None:
                if len(bucket) < self.max_spans_per_trace:
                    bucket.append(span)
                # A trace finishes when its local root ends — either a
                # true root (no parent) or the first span this process
                # opened under a remote caller's traceparent.
                if span.parent_id is None or span._local_root:
                    self._finish_trace_locked(span.trace_id)
            if self._trace_file is not None:
                try:
                    self._trace_file.write(
                        json.dumps(span.to_payload(), sort_keys=True) + "\n")
                    self._trace_file.flush()
                except (OSError, ValueError):
                    # A full disk (or a closed file racing a late
                    # span) must never fail the traced request.
                    self._close_file_locked()

    def _observe_metrics(self, span: Span) -> None:
        histogram = self._phase_histogram
        if histogram is not None and span.name in PHASE_SPANS:
            histogram.labels(phase=span.name).observe(span.duration_s)
        if span.name == "search.candidate":
            iterations = span.attributes.get("anneal_iterations")
            if self._anneal_iterations is not None and iterations is not None:
                self._anneal_iterations.observe(float(iterations))
            evaluations = span.attributes.get("anneal_evaluations")
            if self._anneal_evaluations is not None \
                    and evaluations is not None:
                self._anneal_evaluations.observe(float(evaluations))
            delta_evals = span.attributes.get("anneal_delta_evaluations")
            if self._anneal_delta_evals is not None and delta_evals:
                self._anneal_delta_evals.inc(float(delta_evals))

    def _finish_trace_locked(self, trace_id: str) -> None:
        spans = self._open.pop(trace_id, [])
        self._finished[trace_id] = _assemble_tree(trace_id, spans)
        while len(self._finished) > self.max_traces:
            self._finished.popitem(last=False)

    # ------------------------------------------------------------- queries

    def traces(self) -> "list[dict]":
        """Summaries of the finished traces, newest last."""
        with self._lock:
            return [{"trace_id": tree["trace_id"],
                     "root": tree["root"]["name"] if tree["root"] else None,
                     "start_ts": tree["root"]["start_ts"]
                     if tree["root"] else None,
                     "duration_ms": tree["root"]["duration_ms"]
                     if tree["root"] else None,
                     "n_spans": tree["n_spans"]}
                    for tree in self._finished.values()]

    def trace(self, trace_id: str) -> "dict | None":
        """The full span tree of one trace (finished or still open).

        An open trace (its root span has not ended yet) is assembled
        from whatever spans have finished so far — this is what lets a
        ``detail`` plan response embed its own ``timing`` block while
        the surrounding HTTP span is still running.
        """
        with self._lock:
            tree = self._finished.get(trace_id)
            if tree is not None:
                return tree
            spans = self._open.get(trace_id)
            if spans is None:
                return None
            return _assemble_tree(trace_id, spans, partial=True)


def _assemble_tree(trace_id: str, spans: "list[Span]",
                   partial: bool = False) -> dict:
    """Nest span payloads by ``parent_id`` into one tree payload."""
    payloads = [span.to_payload() for span in spans]
    by_id = {p["span_id"]: p for p in payloads}
    roots = []
    for payload in payloads:
        payload["children"] = payload.get("children", [])
        parent = by_id.get(payload["parent_id"])
        if parent is None:
            roots.append(payload)
        else:
            parent.setdefault("children", []).append(payload)
    for payload in payloads:
        payload["children"].sort(key=lambda c: c["start_ts"])
    roots.sort(key=lambda r: r["start_ts"])
    root = next((r for r in roots if r["parent_id"] is None),
                roots[0] if roots else None)
    orphans = [r for r in roots if r is not root]
    tree = {"trace_id": trace_id, "root": root, "n_spans": len(payloads)}
    if orphans:
        tree["orphans"] = orphans
    if partial:
        tree["partial"] = True
    return tree


#: The process-wide tracer every instrumented module shares.
TRACER = Tracer()

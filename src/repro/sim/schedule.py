"""Pipeline schedules as abstract per-device instruction sequences.

A schedule is no longer a hard-coded op-list generator: each
:class:`PipeSchedule` declares, per pipeline *device*, an ordered
sequence of instructions (:class:`ForwardPass`, :class:`BackwardPass`,
framed by :class:`SendActivation`/:class:`RecvActivation` and
:class:`SendGrad`/:class:`RecvGrad` transfers) over *virtual stages* —
model chunks.  Readiness is declared as data, not code:
:meth:`PipeSchedule.dependencies` returns the producing instructions a
step waits on (and which device boundary the tensor crosses), so the
discrete-event engine (:mod:`repro.sim.engine`) can execute **any**
registered schedule without pattern-matching F/B lists.

Shipped schedules:

* **1F1B** (``"1f1b"``, memory-efficient, Fig. 2b): after a short
  warmup each device alternates one forward with one backward, so at
  most ``pp - stage`` activations are alive at once.  This is the
  de facto standard (PipeDream-Flush / Megatron-LM) and the schedule
  whose *hidden critical path* motivates Pipette's latency model.
* **GPipe** (``"gpipe"``, memory-unaware, Fig. 2a): all forwards, then
  all backwards; simple but stores every microbatch's activations.
* **Interleaved 1F1B** (``"interleaved_1f1b"``, Megatron virtual
  stages): each device hosts ``degree`` non-contiguous model chunks,
  so the fill/drain bubble shrinks by ``1/degree`` at the cost of
  ``degree`` times the inter-stage traffic.  Requires ``n_mb`` to be a
  multiple of ``pp`` (the Megatron constraint).

New schedules register themselves with :func:`register_schedule`;
:func:`build_schedule` resolves names through that registry and lists
the registered names on a miss.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar

from repro.utils.validation import check_positive_int

#: Forward-pass op kind (used in dependencies and engine timelines).
FORWARD = "F"
#: Backward-pass op kind.
BACKWARD = "B"


# ------------------------------------------------------------- instructions


@dataclass(frozen=True)
class Instruction:
    """One step of a pipeline schedule on one device.

    Attributes:
        stage: pipeline *device* executing the instruction.
        microbatch: microbatch index in ``[0, n_mb)``.
        virtual_stage: global model-chunk index in
            ``[0, pp * degree)``; equals ``stage`` for flat (degree-1)
            schedules.
    """

    stage: int
    microbatch: int
    virtual_stage: int

    def __post_init__(self) -> None:
        if self.stage < 0:
            raise ValueError(f"stage must be non-negative, got {self.stage}")
        if self.microbatch < 0:
            raise ValueError(
                f"microbatch must be non-negative, got {self.microbatch}")
        if self.virtual_stage < 0:
            raise ValueError(
                f"virtual_stage must be non-negative, got {self.virtual_stage}")


@dataclass(frozen=True)
class ForwardPass(Instruction):
    """Run one microbatch forward through one model chunk."""


@dataclass(frozen=True)
class BackwardPass(Instruction):
    """Run one microbatch backward through one model chunk."""


@dataclass(frozen=True)
class CommInstruction(Instruction):
    """A boundary-tensor transfer between two pipeline devices.

    Attributes:
        peer: the device on the other end of the transfer.
    """

    peer: int


@dataclass(frozen=True)
class SendActivation(CommInstruction):
    """Ship this chunk's output activation to the next chunk's device."""


@dataclass(frozen=True)
class RecvActivation(CommInstruction):
    """Receive the previous chunk's output activation."""


@dataclass(frozen=True)
class SendGrad(CommInstruction):
    """Ship this chunk's input gradient to the previous chunk's device."""


@dataclass(frozen=True)
class RecvGrad(CommInstruction):
    """Receive the next chunk's input gradient."""


@dataclass(frozen=True)
class Dependency:
    """One readiness predicate of a compute instruction, as data.

    The instruction may start once the referenced producer has
    finished — plus, when ``transfer_from`` names another device, the
    boundary tensor's transfer time over the actual mapped link.

    Attributes:
        kind: :data:`FORWARD` or :data:`BACKWARD` — which table the
            producer finished into.
        virtual_stage: producing model chunk.
        microbatch: producing microbatch.
        transfer_from: device the tensor crosses from; ``None`` when
            the producer ran on the consuming device (no transfer).
    """

    kind: str
    virtual_stage: int
    microbatch: int
    transfer_from: int | None = None


# ---------------------------------------------------------------- schedules


class PipeSchedule(ABC):
    """A pipeline schedule: per-device instruction sequences.

    Subclasses set :attr:`name` (the registry key), optionally
    :attr:`degree` (model chunks per device; 1 for flat schedules),
    and implement :meth:`compute_steps`.  Everything else — the
    comm-instruction framing of :meth:`steps`, the readiness records
    of :meth:`dependencies`, the peak-activation counter — is derived
    mechanically, so a new schedule is exactly one ordering function.

    Args:
        pp: pipeline-parallel ways (devices).
        n_microbatches: microbatches per iteration.
    """

    #: Registry key of the schedule (``"1f1b"``, ``"gpipe"``, ...).
    name: ClassVar[str]
    #: Model chunks per device (Megatron's virtual-pipeline degree).
    degree: ClassVar[int] = 1

    def __init__(self, pp: int, n_microbatches: int) -> None:
        check_positive_int(pp, "pp")
        check_positive_int(n_microbatches, "n_microbatches")
        ok, why = type(self).feasible(pp, n_microbatches)
        if not ok:
            raise ValueError(
                f"schedule {self.name!r} cannot run with pp={pp}, "
                f"n_microbatches={n_microbatches}: {why}")
        self.pp = pp
        self.n_microbatches = n_microbatches

    # ------------------------------------------------------------ geometry

    @classmethod
    def feasible(cls, pp: int, n_microbatches: int,
                 n_layers: int | None = None) -> tuple[bool, str]:
        """Whether the schedule can run a shape; ``(ok, reason)``.

        The configurator uses this to prune the search space before
        constructing anything; :meth:`__init__` enforces the same
        predicate (minus the model-dependent layer check).
        """
        if n_layers is not None and n_layers < pp * cls.degree:
            return (False,
                    f"needs at least pp * degree = {pp * cls.degree} layers, "
                    f"model has {n_layers}")
        return True, ""

    @property
    def n_virtual_stages(self) -> int:
        """Model chunks across the whole pipeline: ``pp * degree``."""
        return self.pp * self.degree

    def device_of(self, virtual_stage: int) -> int:
        """The device hosting a chunk (Megatron round-robin placement)."""
        return virtual_stage % self.pp

    def virtual_stage(self, stage: int, chunk: int) -> int:
        """Global chunk index of local ``chunk`` on ``stage``."""
        return chunk * self.pp + stage

    def local_chunks(self, stage: int) -> list[int]:
        """Global chunk indices hosted by one device, shallow first."""
        return [self.virtual_stage(stage, k) for k in range(self.degree)]

    # --------------------------------------------------------- instructions

    @abstractmethod
    def compute_steps(self, stage: int) -> list[Instruction]:
        """Ordered :class:`ForwardPass`/:class:`BackwardPass` of a device."""

    def steps(self, stage: int) -> list[Instruction]:
        """The full instruction stream of a device, transfers included.

        Each compute step is framed mechanically: a consumer on
        another device means a :class:`SendActivation`/:class:`SendGrad`
        after it, a producer on another device a
        :class:`RecvActivation`/:class:`RecvGrad` before it.
        """
        n_vs = self.n_virtual_stages
        out: list[Instruction] = []
        for inst in self.compute_steps(stage):
            vs, m = inst.virtual_stage, inst.microbatch
            if isinstance(inst, ForwardPass):
                if vs > 0 and self.device_of(vs - 1) != stage:
                    out.append(RecvActivation(stage, m, vs,
                                              peer=self.device_of(vs - 1)))
                out.append(inst)
                if vs < n_vs - 1 and self.device_of(vs + 1) != stage:
                    out.append(SendActivation(stage, m, vs,
                                              peer=self.device_of(vs + 1)))
            else:
                if vs < n_vs - 1 and self.device_of(vs + 1) != stage:
                    out.append(RecvGrad(stage, m, vs,
                                        peer=self.device_of(vs + 1)))
                out.append(inst)
                if vs > 0 and self.device_of(vs - 1) != stage:
                    out.append(SendGrad(stage, m, vs,
                                        peer=self.device_of(vs - 1)))
        return out

    def dependencies(self, inst: Instruction) -> tuple[Dependency, ...]:
        """The readiness predicates of one compute instruction.

        A forward needs the previous chunk's forward of the same
        microbatch; a backward needs the next chunk's backward *and*
        its own chunk's forward.  ``transfer_from`` is set whenever the
        producer lives on a different device, so the engine charges
        the boundary transfer over the actual mapped link.
        """
        vs, m = inst.virtual_stage, inst.microbatch
        if isinstance(inst, ForwardPass):
            if vs == 0:
                return ()
            up = self.device_of(vs - 1)
            return (Dependency(FORWARD, vs - 1, m,
                               transfer_from=up if up != inst.stage else None),)
        if isinstance(inst, BackwardPass):
            deps = []
            if vs < self.n_virtual_stages - 1:
                down = self.device_of(vs + 1)
                deps.append(Dependency(
                    BACKWARD, vs + 1, m,
                    transfer_from=down if down != inst.stage else None))
            deps.append(Dependency(FORWARD, vs, m))
            return tuple(deps)
        raise TypeError(
            f"dependencies are defined for compute instructions, "
            f"got {type(inst).__name__}")

    # -------------------------------------------------------------- memory

    def peak_activation_chunks(self, stage: int) -> int:
        """Peak simultaneously-live activation *chunks* on one device.

        Counts forwards minus backwards along the device's compute
        sequence.  For flat schedules a chunk is a whole stage's
        activations (1F1B: ``min(pp - stage, n_mb)``; GPipe:
        ``n_mb``); for interleaved schedules each chunk holds
        ``1/degree`` of the device's layers, so the device-stage
        equivalent is this value divided by :attr:`degree`.
        """
        live = peak = 0
        for inst in self.compute_steps(stage):
            if isinstance(inst, ForwardPass):
                live += 1
            elif isinstance(inst, BackwardPass):
                live -= 1
            peak = max(peak, live)
        return peak

    # ------------------------------------------------------------- latency

    @classmethod
    @abstractmethod
    def critical_time(cls, pp: int, n_mb: int, c_tp: float,
                      t_pp: float) -> float:
        """Analytic pipeline critical-path time of the schedule.

        The schedule-aware generalization of the paper's Eqs. (3)-(5)
        bubble + straggler terms: ``c_tp`` is the straggler stage's
        per-microbatch compute + TP time, ``t_pp`` the end-to-end
        pipeline communication path.  The data-parallel term (Eq. 6)
        is schedule-independent and added by the caller.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(pp={self.pp}, "
                f"n_microbatches={self.n_microbatches})")


# ----------------------------------------------------------------- registry


#: Registered schedules by name.  Mutated only by ``register_schedule``.
SCHEDULES: "dict[str, type[PipeSchedule]]" = {}


def register_schedule(cls: "type[PipeSchedule]") -> "type[PipeSchedule]":
    """Class decorator: make a :class:`PipeSchedule` name-resolvable."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"{cls.__name__} needs a non-empty ``name`` class attribute")
    if name in SCHEDULES:
        raise ValueError(f"schedule name {name!r} is already registered "
                         f"(by {SCHEDULES[name].__name__})")
    SCHEDULES[name] = cls
    return cls


def registered_schedules() -> tuple[str, ...]:
    """Names of every registered schedule, sorted."""
    return tuple(sorted(SCHEDULES))


def schedule_type(name: str) -> "type[PipeSchedule]":
    """Resolve a schedule name to its class, or raise listing the names."""
    cls = SCHEDULES.get(name)
    if cls is None:
        known = ", ".join(repr(n) for n in registered_schedules())
        raise ValueError(
            f"unknown schedule {name!r}; registered schedules: {known}")
    return cls


def build_schedule(name: str, pp: int, n_microbatches: int) -> PipeSchedule:
    """Instantiate a registered schedule by name."""
    return schedule_type(name)(pp, n_microbatches)


def pipeline_critical_time(name: str, pp: int, n_mb: int, c_tp: float,
                           t_pp: float) -> float:
    """Analytic critical-path time of schedule ``name`` (see
    :meth:`PipeSchedule.critical_time`)."""
    return schedule_type(name).critical_time(pp, n_mb, c_tp, t_pp)


def max_in_flight(schedule: PipeSchedule, stage: int) -> int:
    """Peak live activation chunks on ``stage`` under a schedule."""
    return schedule.peak_activation_chunks(stage)


# ----------------------------------------------------------- concrete: 1F1B


@register_schedule
class OneFOneBSchedule(PipeSchedule):
    """Memory-efficient 1F1B (PipeDream-Flush / Megatron, Fig. 2b).

    Device ``s`` performs ``min(pp - s - 1, n_mb)`` warmup forwards,
    then alternates forward/backward in the steady state, then drains
    the remaining backwards.
    """

    name = "1f1b"

    def compute_steps(self, stage: int) -> list[Instruction]:
        n_mb = self.n_microbatches
        warmup = min(self.pp - stage - 1, n_mb)
        steps: list[Instruction] = []
        for m in range(warmup):
            steps.append(ForwardPass(stage, m, stage))
        for k in range(n_mb - warmup):
            steps.append(ForwardPass(stage, warmup + k, stage))
            steps.append(BackwardPass(stage, k, stage))
        for k in range(n_mb - warmup, n_mb):
            steps.append(BackwardPass(stage, k, stage))
        return steps

    @classmethod
    def critical_time(cls, pp: int, n_mb: int, c_tp: float,
                      t_pp: float) -> float:
        # Eq. (3)-(4): T = T_bubble * (n_mb / pp) + T_straggler — the
        # hidden critical path re-crosses the pipeline every ``pp``
        # microbatches.  Kept verbatim from the pre-refactor model so
        # 1F1B rankings stay bit-identical.
        t_bubble = pp * c_tp + t_pp
        t_straggler = (pp - 1) * c_tp
        return t_bubble * (n_mb / pp) + t_straggler


# ---------------------------------------------------------- concrete: GPipe


@register_schedule
class GPipeSchedule(PipeSchedule):
    """Memory-unaware GPipe (Fig. 2a): all forwards, then all backwards."""

    name = "gpipe"

    def compute_steps(self, stage: int) -> list[Instruction]:
        n_mb = self.n_microbatches
        steps: list[Instruction] = [ForwardPass(stage, m, stage)
                                    for m in range(n_mb)]
        steps += [BackwardPass(stage, m, stage) for m in range(n_mb)]
        return steps

    @classmethod
    def critical_time(cls, pp: int, n_mb: int, c_tp: float,
                      t_pp: float) -> float:
        # One fill, one drain: the pipeline is crossed once in each
        # direction, so inter-stage communication is paid once and the
        # bubble is the classic ``(pp - 1)`` fill/drain slots.
        return (n_mb + pp - 1) * c_tp + t_pp


# --------------------------------------------- concrete: interleaved 1F1B


@register_schedule
class Interleaved1F1BSchedule(PipeSchedule):
    """Megatron's interleaved 1F1B over virtual stages.

    Each device hosts :attr:`degree` non-contiguous model chunks
    (device ``s`` runs global chunks ``s, s + pp, ...``), so the
    fill/drain bubble shrinks by ``1/degree`` while every microbatch
    crosses device boundaries ``degree`` times as often.  Microbatches
    advance in groups of ``pp``: a device runs ``pp`` microbatches
    through its shallow chunk, the same ``pp`` through the next chunk,
    and so on — which is why ``n_mb`` must be a multiple of ``pp``.
    """

    name = "interleaved_1f1b"
    degree = 2

    @classmethod
    def feasible(cls, pp: int, n_microbatches: int,
                 n_layers: int | None = None) -> tuple[bool, str]:
        if pp < 2:
            return False, "virtual stages need pp >= 2"
        if n_microbatches % pp != 0:
            return (False,
                    f"n_microbatches ({n_microbatches}) must be a multiple "
                    f"of pp ({pp})")
        return super().feasible(pp, n_microbatches, n_layers)

    # Megatron's ordering functions: the f-th forward (b-th backward)
    # of a device maps to a (chunk, microbatch) slot; microbatches
    # advance in groups of ``pp`` per chunk, and backwards visit the
    # chunks deepest-first.

    def _forward_slot(self, stage: int, f: int) -> tuple[int, int]:
        group = self.pp * self.degree
        chunk = (f % group) // self.pp
        microbatch = (f // group) * self.pp + (f % self.pp)
        return self.virtual_stage(stage, chunk), microbatch

    def _backward_slot(self, stage: int, b: int) -> tuple[int, int]:
        group = self.pp * self.degree
        chunk = self.degree - 1 - ((b % group) // self.pp)
        microbatch = (b // group) * self.pp + (b % self.pp)
        return self.virtual_stage(stage, chunk), microbatch

    def compute_steps(self, stage: int) -> list[Instruction]:
        total = self.n_microbatches * self.degree
        warmup = min((self.pp - stage - 1) * 2 + (self.degree - 1) * self.pp,
                     total)
        steps: list[Instruction] = []
        for f in range(warmup):
            vs, m = self._forward_slot(stage, f)
            steps.append(ForwardPass(stage, m, vs))
        for b in range(total - warmup):
            vs, m = self._forward_slot(stage, warmup + b)
            steps.append(ForwardPass(stage, m, vs))
            vs, m = self._backward_slot(stage, b)
            steps.append(BackwardPass(stage, m, vs))
        for b in range(total - warmup, total):
            vs, m = self._backward_slot(stage, b)
            steps.append(BackwardPass(stage, m, vs))
        return steps

    @classmethod
    def critical_time(cls, pp: int, n_mb: int, c_tp: float,
                      t_pp: float) -> float:
        # The hidden critical path still re-crosses the pipeline every
        # ``pp`` microbatches, but each crossing now hops ``degree``
        # chunk boundaries per device pair; the fill/drain straggler
        # bubble shrinks by ``1/degree`` (each warmup slot advances a
        # chunk of ``1/degree`` of a device's layers).
        v = cls.degree
        t_bubble = pp * c_tp + v * t_pp
        return t_bubble * (n_mb / pp) + ((pp - 1) * c_tp) / v

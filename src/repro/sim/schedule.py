"""Pipeline schedules: per-stage operation sequences (Fig. 2).

Two schedules are modeled:

* **1F1B** (memory-efficient, Fig. 2b): after a short warmup each
  stage alternates one forward with one backward, so at most
  ``pp - stage`` activations are alive at once.  This is the de facto
  standard (PipeDream-Flush / Megatron-LM) and the schedule whose
  *hidden critical path* motivates Pipette's latency model.
* **GPipe** (memory-unaware, Fig. 2a): all forwards, then all
  backwards; simple but stores every microbatch's activations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int

#: Forward-pass op kind.
FORWARD = "F"
#: Backward-pass op kind.
BACKWARD = "B"


@dataclass(frozen=True)
class PipelineOp:
    """One unit of pipeline work: a microbatch pass on a stage.

    Attributes:
        stage: pipeline stage executing the op.
        kind: :data:`FORWARD` or :data:`BACKWARD`.
        microbatch: microbatch index in ``[0, n_mb)``.
    """

    stage: int
    kind: str
    microbatch: int

    def __post_init__(self) -> None:
        if self.kind not in (FORWARD, BACKWARD):
            raise ValueError(f"kind must be 'F' or 'B', got {self.kind!r}")
        if self.stage < 0:
            raise ValueError(f"stage must be non-negative, got {self.stage}")
        if self.microbatch < 0:
            raise ValueError(f"microbatch must be non-negative, got {self.microbatch}")


def one_f_one_b_schedule(pp: int, n_microbatches: int) -> list[list[PipelineOp]]:
    """Per-stage op sequences of the 1F1B schedule.

    Stage ``s`` performs ``min(pp - s - 1, n_mb)`` warmup forwards,
    then alternates forward/backward in the steady state, then drains
    the remaining backwards.
    """
    check_positive_int(pp, "pp")
    check_positive_int(n_microbatches, "n_microbatches")
    schedule = []
    for s in range(pp):
        ops: list[PipelineOp] = []
        warmup = min(pp - s - 1, n_microbatches)
        for m in range(warmup):
            ops.append(PipelineOp(s, FORWARD, m))
        for k in range(n_microbatches - warmup):
            ops.append(PipelineOp(s, FORWARD, warmup + k))
            ops.append(PipelineOp(s, BACKWARD, k))
        for k in range(n_microbatches - warmup, n_microbatches):
            ops.append(PipelineOp(s, BACKWARD, k))
        schedule.append(ops)
    return schedule


def gpipe_schedule(pp: int, n_microbatches: int) -> list[list[PipelineOp]]:
    """Per-stage op sequences of the memory-unaware (GPipe) schedule."""
    check_positive_int(pp, "pp")
    check_positive_int(n_microbatches, "n_microbatches")
    schedule = []
    for s in range(pp):
        ops = [PipelineOp(s, FORWARD, m) for m in range(n_microbatches)]
        ops += [PipelineOp(s, BACKWARD, m) for m in range(n_microbatches)]
        schedule.append(ops)
    return schedule


def build_schedule(name: str, pp: int, n_microbatches: int) -> list[list[PipelineOp]]:
    """Dispatch on schedule name: ``"1f1b"`` or ``"gpipe"``."""
    if name == "1f1b":
        return one_f_one_b_schedule(pp, n_microbatches)
    if name == "gpipe":
        return gpipe_schedule(pp, n_microbatches)
    raise ValueError(f"unknown schedule {name!r}; expected '1f1b' or 'gpipe'")


def max_in_flight(schedule: list[list[PipelineOp]], stage: int) -> int:
    """Peak number of live activations on ``stage`` under a schedule.

    Counts forwards minus backwards along the stage's op sequence;
    the peak is what sizes the activation memory term.
    """
    live = peak = 0
    for op in schedule[stage]:
        live += 1 if op.kind == FORWARD else -1
        peak = max(peak, live)
    return peak

"""Convenience facade: "launch this configuration on the cluster".

On the real system, evaluating a recommendation means submitting a
Megatron-LM job and reading back the iteration time and the peak
memory (or an OOM crash).  :class:`ClusterRunner` bundles the
execution engine and the memory ground truth behind exactly that
interface, so experiment code reads like the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.fabric import Fabric
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.mapping import Mapping, WorkerGrid, sequential_mapping
from repro.profiling.compute import ComputeTimeModel
from repro.sim.engine import simulate_iteration
from repro.sim.memory_sim import (
    FrameworkOverheadModel,
    simulated_max_memory_bytes,
)
from repro.units import GIB


@dataclass(frozen=True)
class MeasuredRun:
    """What launching one configuration on the cluster reports back.

    Attributes:
        config: the configuration that ran.
        time_per_iter_s: measured iteration latency; ``inf`` if the
            run crashed with OOM.
        max_memory_bytes: measured peak per-GPU memory.
        oom: whether the run exceeded the memory limit.
    """

    config: ParallelConfig
    time_per_iter_s: float
    max_memory_bytes: float
    oom: bool

    @property
    def max_memory_gib(self) -> float:
        """Peak memory in GiB, as a dashboard would display it."""
        return self.max_memory_bytes / GIB


class ClusterRunner:
    """Executes configurations against one fabric draw.

    Args:
        fabric: the heterogeneous cluster instance.
        model: architecture to train.
        schedule: pipeline schedule every run uses; ``None`` (the
            default) honors each configuration's own ``schedule``
            field.  The paper's runs are all memory-efficient 1F1B.
        overhead: framework memory-overhead model of this software
            stack.
        seed: run-to-run measurement noise seed.
    """

    def __init__(self, fabric: Fabric, model: TransformerConfig,
                 schedule: str | None = None,
                 overhead: FrameworkOverheadModel | None = None,
                 seed: int = 0) -> None:
        self.fabric = fabric
        self.model = model
        self.schedule = schedule
        self.overhead = overhead or FrameworkOverheadModel()
        self.seed = int(seed)
        self._bandwidth = fabric.bandwidth()
        self._compute = ComputeTimeModel(gpu=fabric.spec.node.gpu)

    def default_mapping(self, config: ParallelConfig) -> Mapping:
        """The framework's rank-order placement for a configuration."""
        grid = WorkerGrid(pp=config.pp, tp=config.tp, dp=config.dp)
        return sequential_mapping(grid, self.fabric.spec)

    def run(self, config: ParallelConfig,
            mapping: Mapping | None = None) -> MeasuredRun:
        """Launch a configuration; OOM runs crash (infinite latency)."""
        if config.n_gpus != self.fabric.spec.n_gpus:
            raise ValueError(
                f"config uses {config.n_gpus} GPUs but cluster has "
                f"{self.fabric.spec.n_gpus}"
            )
        if mapping is None:
            mapping = self.default_mapping(config)
        memory = simulated_max_memory_bytes(
            self.model, config, self.fabric.spec,
            overhead=self.overhead, schedule=self.schedule, seed=self.seed,
        )
        oom = memory > self.fabric.spec.gpu_memory_bytes
        if oom:
            return MeasuredRun(config=config, time_per_iter_s=float("inf"),
                               max_memory_bytes=memory, oom=True)
        result = simulate_iteration(
            self.model, config, mapping, self._bandwidth,
            compute=self._compute, schedule=self.schedule, seed=self.seed,
        )
        return MeasuredRun(config=config, time_per_iter_s=result.time_s,
                           max_memory_bytes=memory, oom=False)

"""Execution simulator: the stand-in for the paper's physical clusters.

The paper validates its estimators against real Megatron-LM runs on
V100/A100 clusters.  Lacking the hardware, this package provides a
strictly finer-grained ground truth than any of the analytic models
under study:

* :mod:`repro.sim.schedule` expresses pipeline schedules as abstract
  per-device instruction sequences (``ForwardPass``/``BackwardPass``
  framed by activation/gradient transfers) with declarative readiness
  predicates; 1F1B and GPipe (Fig. 2) and Megatron's interleaved
  1F1B ship as registered schedules;
* :mod:`repro.sim.engine` executes any registered schedule's
  instruction stream as a dependency DAG over the heterogeneous
  fabric, so straggler links, the hidden critical path, and exposed
  data-parallel syncs emerge rather than being assumed;
* :mod:`repro.sim.memory_sim` reports the max per-GPU memory a run
  would use — with per-schedule peak-activation accounting — including
  the framework/library overheads the paper's baseline estimator
  famously misses.
"""

from repro.sim.schedule import (
    BackwardPass,
    ForwardPass,
    Instruction,
    PipeSchedule,
    RecvActivation,
    RecvGrad,
    SendActivation,
    SendGrad,
    build_schedule,
    max_in_flight,
    pipeline_critical_time,
    register_schedule,
    registered_schedules,
    schedule_type,
)
from repro.sim.engine import IterationResult, simulate_iteration
from repro.sim.memory_sim import (
    FrameworkOverheadModel,
    simulated_max_memory_bytes,
    simulated_memory_by_stage,
    is_oom,
)
from repro.sim.runner import ClusterRunner, MeasuredRun

__all__ = [
    "Instruction",
    "ForwardPass",
    "BackwardPass",
    "SendActivation",
    "RecvActivation",
    "SendGrad",
    "RecvGrad",
    "PipeSchedule",
    "build_schedule",
    "schedule_type",
    "register_schedule",
    "registered_schedules",
    "pipeline_critical_time",
    "max_in_flight",
    "IterationResult",
    "simulate_iteration",
    "FrameworkOverheadModel",
    "simulated_max_memory_bytes",
    "simulated_memory_by_stage",
    "is_oom",
    "ClusterRunner",
    "MeasuredRun",
]

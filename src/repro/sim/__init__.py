"""Execution simulator: the stand-in for the paper's physical clusters.

The paper validates its estimators against real Megatron-LM runs on
V100/A100 clusters.  Lacking the hardware, this package provides a
strictly finer-grained ground truth than any of the analytic models
under study:

* :mod:`repro.sim.schedule` builds the actual per-stage operation
  sequences of the memory-efficient (1F1B) and memory-unaware (GPipe)
  pipeline schedules of Fig. 2;
* :mod:`repro.sim.engine` executes those sequences op-by-op as a
  dependency DAG over the heterogeneous fabric, so straggler links,
  the hidden critical path, and exposed data-parallel syncs emerge
  rather than being assumed;
* :mod:`repro.sim.memory_sim` reports the max per-GPU memory a run
  would use, including the framework/library overheads the paper's
  baseline estimator famously misses.
"""

from repro.sim.schedule import PipelineOp, one_f_one_b_schedule, gpipe_schedule, build_schedule
from repro.sim.engine import IterationResult, simulate_iteration
from repro.sim.memory_sim import (
    FrameworkOverheadModel,
    simulated_max_memory_bytes,
    simulated_memory_by_stage,
    is_oom,
)
from repro.sim.runner import ClusterRunner, MeasuredRun

__all__ = [
    "PipelineOp",
    "one_f_one_b_schedule",
    "gpipe_schedule",
    "build_schedule",
    "IterationResult",
    "simulate_iteration",
    "FrameworkOverheadModel",
    "simulated_max_memory_bytes",
    "simulated_memory_by_stage",
    "is_oom",
    "ClusterRunner",
    "MeasuredRun",
]

"""Discrete-event execution of one training iteration.

The engine plays the per-stage op sequences of a pipeline schedule as
a dependency DAG:

* a forward op needs the previous stage's forward of the same
  microbatch, plus the activation transfer over the *actual* link
  between the two mapped GPUs;
* a backward op needs the next stage's backward (gradient transfer)
  and its own stage's forward;
* ops on one GPU execute in schedule order;
* after its last backward, each stage joins its data-parallel
  hierarchical all-reduce, whose speed is gated by the slowest
  participating link.

Nothing here assumes the analytic latency model: the hidden critical
path of §V, straggler effects of slow links, and the exposure of the
first stage's DP communication all *emerge* from the event ordering.
This is the "actual time/iter" oracle of Figs. 5-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.fabric import BandwidthMatrix
from repro.model.transformer import TransformerConfig
from repro.parallel.collectives import ring_allreduce_time
from repro.parallel.config import ParallelConfig
from repro.parallel.mapping import Mapping
from repro.parallel.messages import dp_message_bytes, pp_message_bytes, tp_comm_time
from repro.model.memory import stage_layer_count
from repro.profiling.compute import ComputeTimeModel
from repro.sim.schedule import BACKWARD, FORWARD, build_schedule
from repro.utils.rng import spawn_rng

#: Fraction of the alpha-beta ring-all-reduce model NCCL attains on the
#: data-parallel collective (protocol overheads, chunking, stream
#: scheduling).  The engine applies it as ground truth; Pipette's
#: latency estimator learns the same value by profiling the collective
#: (NCCL-tests), while the prior-art model ignores it.
DEFAULT_DP_EFFICIENCY: float = 0.88


@dataclass
class IterationResult:
    """Outcome of simulating one training iteration.

    Attributes:
        time_s: end-to-end iteration latency (the paper's time/iter).
        compute_end_s: when the last pipeline op finished.
        dp_end_s: when the last data-parallel all-reduce finished
            (zero when ``dp == 1``).
        optimizer_s: optimizer-step tail included in ``time_s``.
        stage_dp_exposed_s: per-stage seconds of DP communication not
            hidden behind other stages' compute — the first stage's
            value dominates, which is the paper's §IV observation.
        timeline: optional per-op records ``(gpu, stage, kind,
            microbatch, start_s, end_s)`` for visualization.
    """

    time_s: float
    compute_end_s: float
    dp_end_s: float
    optimizer_s: float
    stage_dp_exposed_s: list[float] = field(default_factory=list)
    timeline: list[tuple] | None = None


def _chain_link_times(model: TransformerConfig, config: ParallelConfig,
                      mapping: Mapping, bandwidth: BandwidthMatrix,
                      z: int) -> tuple[list[float], list[float]]:
    """Boundary-crossing times per hop of data-rank ``z``'s pipeline.

    Every tensor rank sends its boundary tensor to its peer in the
    next stage concurrently; the hop completes when the slowest rank's
    transfer lands.  Forward (``x -> x+1``) and backward (``x+1 -> x``)
    directions are computed separately: real links are only *almost*
    symmetric.
    """
    msg = pp_message_bytes(model, config.micro_batch)
    fwd, bwd = [], []
    for x in range(config.pp - 1):
        worst_f = worst_b = 0.0
        for y in range(config.tp):
            g1 = mapping.gpu(x, y, z)
            g2 = mapping.gpu(x + 1, y, z)
            worst_f = max(worst_f, bandwidth.transfer_time(msg, g1, g2))
            worst_b = max(worst_b, bandwidth.transfer_time(msg, g2, g1))
        fwd.append(worst_f)
        bwd.append(worst_b)
    return fwd, bwd


def _stage_tp_time(model: TransformerConfig, config: ParallelConfig,
                   mapping: Mapping, bandwidth: BandwidthMatrix,
                   x: int, z: int) -> float:
    """Per-microbatch tensor-parallel time of stage ``x``, data rank ``z``."""
    if config.tp == 1:
        return 0.0
    group = mapping.tp_group(x, z)
    bw = bandwidth.min_over_group(group)
    alpha = bandwidth.max_alpha_over_group(group)
    layers = stage_layer_count(model.n_layers, config.pp, x)
    return tp_comm_time(model, layers, config.micro_batch, config.tp, bw, alpha)


def _dp_allreduce_time(model: TransformerConfig, config: ParallelConfig,
                       mapping: Mapping, bandwidth: BandwidthMatrix,
                       stage: int, efficiency: float) -> float:
    """Hierarchical all-reduce duration of one stage's DP group.

    The lockstep TP ranks each run their own DP ring; the stage is
    done when the slowest tensor rank's ring finishes.
    """
    if config.dp == 1:
        return 0.0
    msg = dp_message_bytes(model, config.pp, config.tp, stage)
    cluster = mapping.cluster
    worst = 0.0
    for y in range(config.tp):
        group = mapping.dp_group(stage, y)
        by_node: dict[int, list[int]] = {}
        for g in group:
            by_node.setdefault(cluster.node_of(g), []).append(g)
        intra_time = 0.0
        for members in by_node.values():
            if len(members) > 1:
                bw = bandwidth.min_over_group(members)
                alpha = bandwidth.max_alpha_over_group(members)
                intra_time = max(
                    intra_time,
                    2.0 * ring_allreduce_time(msg, len(members), bw, alpha),
                )
        inter_time = 0.0
        nodes = sorted(by_node)
        if len(nodes) > 1:
            leaders = [by_node[n][0] for n in nodes]
            bw = bandwidth.min_over_group(leaders)
            alpha = bandwidth.max_alpha_over_group(leaders)
            inter_time = ring_allreduce_time(msg, len(nodes), bw, alpha)
        worst = max(worst, intra_time + inter_time)
    return worst / efficiency


def simulate_iteration(model: TransformerConfig, config: ParallelConfig,
                       mapping: Mapping, bandwidth: BandwidthMatrix,
                       compute: ComputeTimeModel | None = None,
                       schedule: str = "1f1b",
                       jitter_sigma: float = 0.01,
                       dp_efficiency: float = DEFAULT_DP_EFFICIENCY,
                       seed: int = 0,
                       record_timeline: bool = False) -> IterationResult:
    """Simulate one training iteration and return its latency.

    Args:
        model: architecture being trained.
        config: parallelization configuration (defines the schedule
            shape through ``pp`` and ``n_microbatches``).
        mapping: worker-to-GPU bijection under test.
        bandwidth: *attained* bandwidth matrix of the fabric (ground
            truth, not the profiled observation).
        compute: compute-time model; defaults to the mapped cluster's
            GPU with default curve parameters.
        schedule: ``"1f1b"`` (default, memory-efficient) or ``"gpipe"``.
        jitter_sigma: per-op log-normal compute jitter (real kernels
            are not perfectly repeatable).
        dp_efficiency: attained fraction of the alpha-beta model for
            the data-parallel collective.
        seed: jitter seed.
        record_timeline: keep per-op records (costs memory; for the
            visualizer example).
    """
    if mapping.grid.pp != config.pp or mapping.grid.tp != config.tp \
            or mapping.grid.dp != config.dp:
        raise ValueError(
            f"mapping grid ({mapping.grid.pp},{mapping.grid.tp},"
            f"{mapping.grid.dp}) does not match config {config.describe()}"
        )
    if compute is None:
        compute = ComputeTimeModel(gpu=mapping.cluster.node.gpu)

    rng = spawn_rng(seed, f"engine-{config.describe()}")
    run_skew = float(rng.lognormal(0.0, 0.01)) if jitter_sigma > 0 else 1.0
    pp, n_mb = config.pp, config.n_microbatches
    ops_by_stage = build_schedule(schedule, pp, n_mb)
    timeline: list[tuple] | None = [] if record_timeline else None

    # Per-stage split of the profiled fwd+bwd cost: backward does the
    # two matmul passes, forward one.
    stage_c = [compute.stage_compute_time(model, pp, s, config.tp,
                                          config.micro_batch)
               for s in range(pp)]

    compute_end = 0.0
    last_backward_end = np.zeros((config.dp, pp))

    for z in range(config.dp):
        hops_fwd, hops_bwd = _chain_link_times(model, config, mapping,
                                               bandwidth, z)
        tp_t = [_stage_tp_time(model, config, mapping, bandwidth, x, z)
                for x in range(pp)]
        dur_f = [stage_c[x] / 3.0 + tp_t[x] / 2.0 for x in range(pp)]
        if config.recompute:
            # Backward re-runs the forward pass (compute and its TP
            # all-reduces) before computing gradients.
            dur_b = [stage_c[x] + tp_t[x] for x in range(pp)]
        else:
            dur_b = [2.0 * stage_c[x] / 3.0 + tp_t[x] / 2.0 for x in range(pp)]

        fwd_end: dict[tuple[int, int], float] = {}
        bwd_end: dict[tuple[int, int], float] = {}
        gpu_free = [0.0] * pp
        pos = [0] * pp
        remaining = sum(len(ops) for ops in ops_by_stage)

        while remaining > 0:
            progressed = False
            for s in range(pp):
                ops = ops_by_stage[s]
                while pos[s] < len(ops):
                    op = ops[pos[s]]
                    if op.kind == FORWARD:
                        if s > 0 and (s - 1, op.microbatch) not in fwd_end:
                            break
                        arrival = 0.0 if s == 0 else (
                            fwd_end[(s - 1, op.microbatch)] + hops_fwd[s - 1]
                        )
                        dur = dur_f[s]
                    else:
                        if s < pp - 1 and (s + 1, op.microbatch) not in bwd_end:
                            break
                        if (s, op.microbatch) not in fwd_end:
                            break
                        arrival = 0.0 if s == pp - 1 else (
                            bwd_end[(s + 1, op.microbatch)] + hops_bwd[s]
                        )
                        arrival = max(arrival, fwd_end[(s, op.microbatch)])
                        dur = dur_b[s]
                    start = max(gpu_free[s], arrival)
                    jitter = float(rng.lognormal(0.0, jitter_sigma)) \
                        if jitter_sigma > 0 else 1.0
                    end = start + dur * jitter * run_skew
                    gpu_free[s] = end
                    if op.kind == FORWARD:
                        fwd_end[(s, op.microbatch)] = end
                    else:
                        bwd_end[(s, op.microbatch)] = end
                    if timeline is not None:
                        timeline.append((mapping.gpu(s, 0, z), s, op.kind,
                                         op.microbatch, start, end))
                    pos[s] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                raise RuntimeError(
                    f"schedule deadlock at positions {pos} for {config.describe()}"
                )
        for s in range(pp):
            last_backward_end[z, s] = gpu_free[s]
            compute_end = max(compute_end, gpu_free[s])

    # Data-parallel gradient synchronization: each stage starts its
    # all-reduce once every replica finished that stage's backwards.
    dp_end = 0.0
    stage_dp_exposed = [0.0] * pp
    for s in range(pp):
        dur = _dp_allreduce_time(model, config, mapping, bandwidth, s,
                                 dp_efficiency)
        if dur == 0.0:
            continue
        start = float(np.max(last_backward_end[:, s]))
        end = start + dur
        dp_end = max(dp_end, end)
        stage_dp_exposed[s] = max(0.0, end - compute_end)

    # Optimizer step: streams the parameter state through HBM.
    params_per_gpu = max(
        dp_message_bytes(model, pp, config.tp, s) / 4.0 for s in range(pp)
    )
    optimizer = 3.0 * 18.0 * params_per_gpu / (compute.gpu.hbm_gb_s * 1e9)

    total = max(compute_end, dp_end) + optimizer
    return IterationResult(
        time_s=total,
        compute_end_s=compute_end,
        dp_end_s=dp_end,
        optimizer_s=optimizer,
        stage_dp_exposed_s=stage_dp_exposed,
        timeline=timeline,
    )

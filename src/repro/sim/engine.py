"""Discrete-event execution of one training iteration.

The engine executes the compute-instruction stream of any registered
:class:`~repro.sim.schedule.PipeSchedule` as a dependency DAG:

* each instruction's readiness comes from the schedule's own
  :meth:`~repro.sim.schedule.PipeSchedule.dependencies` records — a
  forward waits on the previous chunk's forward, a backward on the
  next chunk's backward plus its own chunk's forward;
* a dependency whose ``transfer_from`` names another device charges
  the boundary-tensor transfer over the *actual* link between the two
  mapped GPUs;
* instructions on one device execute in schedule order;
* after its last backward, each stage joins its data-parallel
  hierarchical all-reduce, whose speed is gated by the slowest
  participating link.

Nothing here assumes the analytic latency model — nor a particular
schedule: the hidden critical path of §V, straggler effects of slow
links, interleaved-1F1B's extra chunk-boundary traffic, and the
exposure of the first stage's DP communication all *emerge* from the
event ordering.  This is the "actual time/iter" oracle of Figs. 5-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.fabric import BandwidthMatrix
from repro.model.transformer import TransformerConfig
from repro.parallel.collectives import ring_allreduce_time
from repro.parallel.config import ParallelConfig
from repro.parallel.mapping import Mapping
from repro.parallel.messages import dp_message_bytes, pp_message_bytes, tp_comm_time
from repro.model.memory import stage_layer_count
from repro.profiling.compute import ComputeTimeModel
from repro.sim.schedule import (
    BACKWARD,
    FORWARD,
    ForwardPass,
    PipeSchedule,
    build_schedule,
)
from repro.utils.rng import spawn_rng

#: Fraction of the alpha-beta ring-all-reduce model NCCL attains on the
#: data-parallel collective (protocol overheads, chunking, stream
#: scheduling).  The engine applies it as ground truth; Pipette's
#: latency estimator learns the same value by profiling the collective
#: (NCCL-tests), while the prior-art model ignores it.
DEFAULT_DP_EFFICIENCY: float = 0.88


@dataclass
class IterationResult:
    """Outcome of simulating one training iteration.

    Attributes:
        time_s: end-to-end iteration latency (the paper's time/iter).
        compute_end_s: when the last pipeline op finished.
        dp_end_s: when the last data-parallel all-reduce finished
            (zero when ``dp == 1``).
        optimizer_s: optimizer-step tail included in ``time_s``.
        stage_dp_exposed_s: per-stage seconds of DP communication not
            hidden behind other stages' compute — the first stage's
            value dominates, which is the paper's §IV observation.
        timeline: optional per-op records ``(gpu, stage, kind,
            microbatch, start_s, end_s)`` for visualization; ``stage``
            is the executing *device* (interleaved schedules emit one
            record per chunk).
    """

    time_s: float
    compute_end_s: float
    dp_end_s: float
    optimizer_s: float
    stage_dp_exposed_s: list[float] = field(default_factory=list)
    timeline: list[tuple] | None = None


def _boundary_hop_times(model: TransformerConfig, config: ParallelConfig,
                        mapping: Mapping, bandwidth: BandwidthMatrix,
                        pairs: "frozenset[tuple[int, int]]",
                        z: int) -> dict[tuple[int, int], float]:
    """Boundary-crossing time of each needed device pair, data rank ``z``.

    Every tensor rank sends its boundary tensor to its peer on the
    other device concurrently; the hop completes when the slowest
    rank's transfer lands.  Each direction is computed separately:
    real links are only *almost* symmetric.  ``pairs`` comes from the
    schedule's dependency records, so flat schedules pay adjacent hops
    only while interleaved schedules also pay the ``pp-1 -> 0``
    chunk-boundary wrap.
    """
    msg = pp_message_bytes(model, config.micro_batch)
    out: dict[tuple[int, int], float] = {}
    for a, b in pairs:
        worst = 0.0
        for y in range(config.tp):
            worst = max(worst, bandwidth.transfer_time(
                msg, mapping.gpu(a, y, z), mapping.gpu(b, y, z)))
        out[(a, b)] = worst
    return out


def _virtual_tp_time(model: TransformerConfig, config: ParallelConfig,
                     mapping: Mapping, bandwidth: BandwidthMatrix,
                     n_virtual: int, k: int, device: int, z: int) -> float:
    """Per-microbatch tensor-parallel time of chunk ``k`` on ``device``.

    The chunk holds ``1 / degree`` of the device's layers but runs on
    the device's own TP group, so link speeds come from the device and
    layer counts from the chunk.
    """
    if config.tp == 1:
        return 0.0
    group = mapping.tp_group(device, z)
    bw = bandwidth.min_over_group(group)
    alpha = bandwidth.max_alpha_over_group(group)
    layers = stage_layer_count(model.n_layers, n_virtual, k)
    return tp_comm_time(model, layers, config.micro_batch, config.tp, bw, alpha)


def _dp_allreduce_time(model: TransformerConfig, config: ParallelConfig,
                       mapping: Mapping, bandwidth: BandwidthMatrix,
                       stage: int, efficiency: float) -> float:
    """Hierarchical all-reduce duration of one stage's DP group.

    The lockstep TP ranks each run their own DP ring; the stage is
    done when the slowest tensor rank's ring finishes.
    """
    if config.dp == 1:
        return 0.0
    msg = dp_message_bytes(model, config.pp, config.tp, stage)
    cluster = mapping.cluster
    worst = 0.0
    for y in range(config.tp):
        group = mapping.dp_group(stage, y)
        by_node: dict[int, list[int]] = {}
        for g in group:
            by_node.setdefault(cluster.node_of(g), []).append(g)
        intra_time = 0.0
        for members in by_node.values():
            if len(members) > 1:
                bw = bandwidth.min_over_group(members)
                alpha = bandwidth.max_alpha_over_group(members)
                intra_time = max(
                    intra_time,
                    2.0 * ring_allreduce_time(msg, len(members), bw, alpha),
                )
        inter_time = 0.0
        nodes = sorted(by_node)
        if len(nodes) > 1:
            leaders = [by_node[n][0] for n in nodes]
            bw = bandwidth.min_over_group(leaders)
            alpha = bandwidth.max_alpha_over_group(leaders)
            inter_time = ring_allreduce_time(msg, len(nodes), bw, alpha)
        worst = max(worst, intra_time + inter_time)
    return worst / efficiency


def simulate_iteration(model: TransformerConfig, config: ParallelConfig,
                       mapping: Mapping, bandwidth: BandwidthMatrix,
                       compute: ComputeTimeModel | None = None,
                       schedule: str | None = None,
                       jitter_sigma: float = 0.01,
                       dp_efficiency: float = DEFAULT_DP_EFFICIENCY,
                       seed: int = 0,
                       record_timeline: bool = False) -> IterationResult:
    """Simulate one training iteration and return its latency.

    Args:
        model: architecture being trained.
        config: parallelization configuration (defines the schedule
            shape through ``pp`` and ``n_microbatches``).
        mapping: worker-to-GPU bijection under test.
        bandwidth: *attained* bandwidth matrix of the fabric (ground
            truth, not the profiled observation).
        compute: compute-time model; defaults to the mapped cluster's
            GPU with default curve parameters.
        schedule: name of a registered pipeline schedule (``"1f1b"``,
            ``"gpipe"``, ``"interleaved_1f1b"``, ...); defaults to
            ``config.schedule``.
        jitter_sigma: per-op log-normal compute jitter (real kernels
            are not perfectly repeatable).
        dp_efficiency: attained fraction of the alpha-beta model for
            the data-parallel collective.
        seed: jitter seed.
        record_timeline: keep per-op records (costs memory; for the
            visualizer example).
    """
    if mapping.grid.pp != config.pp or mapping.grid.tp != config.tp \
            or mapping.grid.dp != config.dp:
        raise ValueError(
            f"mapping grid ({mapping.grid.pp},{mapping.grid.tp},"
            f"{mapping.grid.dp}) does not match config {config.describe()}"
        )
    if compute is None:
        compute = ComputeTimeModel(gpu=mapping.cluster.node.gpu)

    rng = spawn_rng(seed, f"engine-{config.describe()}")
    run_skew = float(rng.lognormal(0.0, 0.01)) if jitter_sigma > 0 else 1.0
    pp, n_mb = config.pp, config.n_microbatches
    name = config.schedule if schedule is None else schedule
    sched: PipeSchedule = build_schedule(name, pp, n_mb)
    n_vs = sched.n_virtual_stages
    timeline: list[tuple] | None = [] if record_timeline else None

    # The engine executes each device's *compute* instructions in
    # order; the framing Send/Recv transfers are charged through the
    # ``transfer_from`` field of the dependency records instead of as
    # separate events, so flat schedules keep the exact event ordering
    # of the pre-instruction engine.
    steps_by_device = [sched.compute_steps(s) for s in range(pp)]
    deps_by_device = [[sched.dependencies(inst) for inst in steps]
                      for steps in steps_by_device]
    hop_pairs = frozenset(
        (dep.transfer_from, device)
        for device in range(pp)
        for deps in deps_by_device[device]
        for dep in deps
        if dep.transfer_from is not None
    )

    # Per-chunk split of the profiled fwd+bwd cost: backward does the
    # two matmul passes, forward one.
    chunk_c = [compute.stage_compute_time(model, n_vs, k, config.tp,
                                          config.micro_batch)
               for k in range(n_vs)]

    compute_end = 0.0
    last_backward_end = np.zeros((config.dp, pp))

    for z in range(config.dp):
        hop = _boundary_hop_times(model, config, mapping, bandwidth,
                                  hop_pairs, z)
        tp_t = [_virtual_tp_time(model, config, mapping, bandwidth,
                                 n_vs, k, sched.device_of(k), z)
                for k in range(n_vs)]
        dur_f = [chunk_c[k] / 3.0 + tp_t[k] / 2.0 for k in range(n_vs)]
        if config.recompute:
            # Backward re-runs the forward pass (compute and its TP
            # all-reduces) before computing gradients.
            dur_b = [chunk_c[k] + tp_t[k] for k in range(n_vs)]
        else:
            dur_b = [2.0 * chunk_c[k] / 3.0 + tp_t[k] / 2.0
                     for k in range(n_vs)]

        fwd_end: dict[tuple[int, int], float] = {}
        bwd_end: dict[tuple[int, int], float] = {}
        gpu_free = [0.0] * pp
        pos = [0] * pp
        remaining = sum(len(steps) for steps in steps_by_device)

        while remaining > 0:
            progressed = False
            for s in range(pp):
                steps = steps_by_device[s]
                deps_list = deps_by_device[s]
                while pos[s] < len(steps):
                    inst = steps[pos[s]]
                    deps = deps_list[pos[s]]
                    is_forward = isinstance(inst, ForwardPass)
                    arrival = 0.0
                    ready = True
                    for dep in deps:
                        table = fwd_end if dep.kind == FORWARD else bwd_end
                        done = table.get((dep.virtual_stage, dep.microbatch))
                        if done is None:
                            ready = False
                            break
                        if dep.transfer_from is not None:
                            done = done + hop[(dep.transfer_from, s)]
                        arrival = max(arrival, done)
                    if not ready:
                        break
                    dur = dur_f[inst.virtual_stage] if is_forward \
                        else dur_b[inst.virtual_stage]
                    start = max(gpu_free[s], arrival)
                    jitter = float(rng.lognormal(0.0, jitter_sigma)) \
                        if jitter_sigma > 0 else 1.0
                    end = start + dur * jitter * run_skew
                    gpu_free[s] = end
                    key = (inst.virtual_stage, inst.microbatch)
                    if is_forward:
                        fwd_end[key] = end
                    else:
                        bwd_end[key] = end
                    if timeline is not None:
                        timeline.append((mapping.gpu(s, 0, z), s,
                                         FORWARD if is_forward else BACKWARD,
                                         inst.microbatch, start, end))
                    pos[s] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                raise RuntimeError(
                    f"schedule deadlock at positions {pos} for {config.describe()}"
                )
        for s in range(pp):
            last_backward_end[z, s] = gpu_free[s]
            compute_end = max(compute_end, gpu_free[s])

    # Data-parallel gradient synchronization: each stage starts its
    # all-reduce once every replica finished that stage's backwards.
    dp_end = 0.0
    stage_dp_exposed = [0.0] * pp
    for s in range(pp):
        dur = _dp_allreduce_time(model, config, mapping, bandwidth, s,
                                 dp_efficiency)
        if dur == 0.0:
            continue
        start = float(np.max(last_backward_end[:, s]))
        end = start + dur
        dp_end = max(dp_end, end)
        stage_dp_exposed[s] = max(0.0, end - compute_end)

    # Optimizer step: streams the parameter state through HBM.
    params_per_gpu = max(
        dp_message_bytes(model, pp, config.tp, s) / 4.0 for s in range(pp)
    )
    optimizer = 3.0 * 18.0 * params_per_gpu / (compute.gpu.hbm_gb_s * 1e9)

    total = max(compute_end, dp_end) + optimizer
    return IterationResult(
        time_s=total,
        compute_end_s=compute_end,
        dp_end_s=dp_end,
        optimizer_s=optimizer,
        stage_dp_exposed_s=stage_dp_exposed,
        timeline=timeline,
    )

"""Ground-truth per-GPU memory of a training run.

Real Megatron-LM runs use considerably more memory than the sum of
weights, optimizer state and activations: the CUDA context, library
workspaces, NCCL communicator buffers, gradient-bucket staging and
allocator fragmentation all add up (Gao et al. [21]).  The paper's
§VI shows that an analytic estimator ignoring those terms
underestimates real usage by ~60% MAPE, which is why Pipette learns
the mapping with an MLP instead.

:class:`FrameworkOverheadModel` adds exactly those terms on top of the
first-principles breakdown of :mod:`repro.model.memory`.  It plays the
role of ``nvidia-smi`` on the real cluster: the memory estimator is
trained against *its* outputs and never sees its internals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.topology import ClusterSpec
from repro.model.memory import analytic_memory_breakdown
from repro.model.transformer import TransformerConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.messages import dp_message_bytes, pp_message_bytes
from repro.sim.schedule import build_schedule
from repro.utils.rng import spawn_rng
from repro.units import MIB


@dataclass(frozen=True)
class FrameworkOverheadModel:
    """The memory the framework and libraries use beyond the math.

    Attributes:
        context_bytes: CUDA context + driver allocations.
        context_memory_fraction: additional context share growing with
            device memory (larger GPUs map more BAR/reserved space).
        workspace_base_bytes: cuBLAS/cuDNN/attention workspace floor.
        workspace_activation_factor: workspace bytes per byte of one
            microbatch's boundary activation (temporary buffers track
            tensor shapes).
        nccl_base_bytes: fixed cost of each active communicator.
        nccl_per_rank_bytes: communicator cost growth per log2(ranks).
        pp_staging_factor: send/recv double-buffers as a multiple of
            the boundary message.
        dp_staging_factor: gradient-bucket staging as a fraction of
            the DP payload.
        optimizer_temp_fraction: transient optimizer-step temporaries
            as a fraction of static parameter state.
        fragmentation_base: allocator fragmentation floor
            (multiplicative on dynamic memory).
        fragmentation_per_log_mb: extra fragmentation per log2 of the
            microbatch count (more in-flight shapes, more bins).
        noise_sigma: run-to-run variation of the measured peak.
    """

    context_bytes: float = 0.75e9
    context_memory_fraction: float = 0.012
    workspace_base_bytes: float = 128 * MIB
    workspace_activation_factor: float = 3.0
    nccl_base_bytes: float = 48 * MIB
    nccl_per_rank_bytes: float = 16 * MIB
    pp_staging_factor: float = 4.0
    dp_staging_factor: float = 0.25
    optimizer_temp_fraction: float = 0.25
    fragmentation_base: float = 1.07
    fragmentation_per_log_mb: float = 0.012
    noise_sigma: float = 0.015

    def overhead_bytes(self, model: TransformerConfig, config: ParallelConfig,
                       cluster: ClusterSpec, stage: int,
                       static_bytes: float, dynamic_bytes: float) -> float:
        """Framework bytes of one GPU of ``stage`` (before fragmentation)."""
        total = self.context_bytes
        total += self.context_memory_fraction * cluster.gpu_memory_bytes
        boundary = pp_message_bytes(model, config.micro_batch)
        total += self.workspace_base_bytes
        total += self.workspace_activation_factor * boundary
        if config.tp > 1:
            total += self.nccl_base_bytes \
                + self.nccl_per_rank_bytes * math.log2(config.tp)
        if config.dp > 1:
            total += self.nccl_base_bytes \
                + self.nccl_per_rank_bytes * math.log2(config.dp)
            total += self.dp_staging_factor * dp_message_bytes(
                model, config.pp, config.tp, stage)
        if config.pp > 1:
            total += self.pp_staging_factor * boundary
        total += self.optimizer_temp_fraction * static_bytes
        return total

    def fragmentation(self, config: ParallelConfig) -> float:
        """Multiplicative fragmentation factor on dynamic allocations."""
        return self.fragmentation_base + self.fragmentation_per_log_mb * \
            math.log2(1 + config.n_microbatches)


def simulated_memory_by_stage(model: TransformerConfig, config: ParallelConfig,
                              cluster: ClusterSpec,
                              overhead: FrameworkOverheadModel | None = None,
                              schedule: str | None = None,
                              seed: int = 0) -> list[float]:
    """Measured peak memory (bytes) of one GPU of each pipeline stage.

    The returned values include framework overhead, fragmentation, and
    measurement noise — this is what ``nvidia-smi`` would report on
    the real cluster, and what the MLP estimator is trained against.
    Peak live activations come from the schedule's own instruction
    stream (:meth:`~repro.sim.schedule.PipeSchedule.peak_activation_chunks`);
    interleaved schedules count chunks of ``1 / degree`` of a device's
    layers, so their effective in-flight factor is fractional.

    Args:
        schedule: registered schedule name; defaults to
            ``config.schedule``.
    """
    if overhead is None:
        overhead = FrameworkOverheadModel()
    name = config.schedule if schedule is None else schedule
    sched = build_schedule(name, config.pp, config.n_microbatches)
    usages = []
    for stage in range(config.pp):
        peak_chunks = sched.peak_activation_chunks(stage)
        in_flight = peak_chunks if sched.degree == 1 \
            else peak_chunks / sched.degree
        parts = analytic_memory_breakdown(model, config.pp, config.tp, stage,
                                          config.micro_batch, in_flight,
                                          recompute=config.recompute)
        dynamic = parts.activation_bytes + parts.logits_bytes
        extra = overhead.overhead_bytes(model, config, cluster, stage,
                                        parts.static_bytes, dynamic)
        frag = overhead.fragmentation(config)
        raw = parts.static_bytes + frag * dynamic + extra
        rng = spawn_rng(seed, f"mem-{model.name}-{config.describe()}-s{stage}")
        noisy = raw * float(rng.lognormal(0.0, overhead.noise_sigma)) \
            if overhead.noise_sigma > 0 else raw
        usages.append(noisy)
    return usages


def simulated_max_memory_bytes(model: TransformerConfig, config: ParallelConfig,
                               cluster: ClusterSpec,
                               overhead: FrameworkOverheadModel | None = None,
                               schedule: str | None = None,
                               seed: int = 0) -> float:
    """Peak memory of the most-loaded GPU — the quantity of Eq. (7)."""
    return max(simulated_memory_by_stage(model, config, cluster,
                                         overhead=overhead, schedule=schedule,
                                         seed=seed))


def is_oom(model: TransformerConfig, config: ParallelConfig,
           cluster: ClusterSpec,
           overhead: FrameworkOverheadModel | None = None,
           schedule: str | None = None, seed: int = 0) -> bool:
    """Whether the configuration exceeds the per-GPU memory limit.

    This is the oracle the paper obtains by actually launching the
    job; the baselines' top recommendations failing this check is the
    Fig. 5b result.
    """
    usage = simulated_max_memory_bytes(model, config, cluster,
                                       overhead=overhead, schedule=schedule,
                                       seed=seed)
    return usage > cluster.gpu_memory_bytes

"""Reproduction of *Pipette* (DATE 2024): an automatic fine-grained
LLM-training configurator for real-world clusters.

Quickstart::

    from repro import (
        mid_range_cluster, make_fabric, get_model, profile_compute,
        NetworkProfiler, PipetteConfigurator,
    )

    cluster = mid_range_cluster()
    fabric = make_fabric(cluster, seed=0)           # the "real" cluster
    model = get_model("gpt-3.1b")
    network = NetworkProfiler().profile(fabric)     # Algorithm 1, line 1
    profile = profile_compute(model, cluster)
    pipette = PipetteConfigurator(cluster, model, network.bandwidth, profile)
    best = pipette.search(global_batch=512).best
    print(best.config.describe(), best.estimated_latency_s)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.cluster` — hardware presets, heterogeneous fabric,
  network profiler, 40-day traces;
* :mod:`repro.model` — GPT architectures and resource formulas;
* :mod:`repro.parallel` — 3D-parallel configurations, worker
  mappings, collective cost models;
* :mod:`repro.sim` — the execution/memory ground truth standing in
  for the paper's physical clusters;
* :mod:`repro.core` — Pipette itself: latency model, SA worker
  dedication, MLP memory estimator, Algorithm 1;
* :mod:`repro.baselines` — AMP, Varuna, manually-tuned Megatron-LM;
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.cluster import (
    ClusterSpec,
    Fabric,
    HeterogeneityModel,
    NetworkProfiler,
    high_end_cluster,
    make_fabric,
    mid_range_cluster,
)
from repro.core import (
    MemoryEstimator,
    PipetteConfigurator,
    PipetteOptions,
    SAOptions,
    anneal_mapping,
    build_memory_dataset,
    pipette_l,
    pipette_latency,
    pipette_lf,
    prior_art_latency,
)
from repro.model import MODEL_CATALOG, TransformerConfig, get_model
from repro.parallel import (
    Mapping,
    ParallelConfig,
    WorkerGrid,
    enumerate_parallel_configs,
    sequential_mapping,
)
from repro.profiling import ComputeTimeModel, profile_compute
from repro.service import (
    CandidateExecutor,
    ClusterEvent,
    ClusterRegistry,
    DurablePlanCache,
    PlanCache,
    PlanRequest,
    PlanStore,
    PlanningService,
)
from repro.sim import ClusterRunner, simulate_iteration, simulated_max_memory_bytes

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "Fabric",
    "HeterogeneityModel",
    "NetworkProfiler",
    "high_end_cluster",
    "make_fabric",
    "mid_range_cluster",
    "MemoryEstimator",
    "PipetteConfigurator",
    "PipetteOptions",
    "SAOptions",
    "anneal_mapping",
    "build_memory_dataset",
    "pipette_l",
    "pipette_latency",
    "pipette_lf",
    "prior_art_latency",
    "MODEL_CATALOG",
    "TransformerConfig",
    "get_model",
    "Mapping",
    "ParallelConfig",
    "WorkerGrid",
    "enumerate_parallel_configs",
    "sequential_mapping",
    "ComputeTimeModel",
    "profile_compute",
    "CandidateExecutor",
    "ClusterEvent",
    "ClusterRegistry",
    "DurablePlanCache",
    "PlanCache",
    "PlanRequest",
    "PlanStore",
    "PlanningService",
    "ClusterRunner",
    "simulate_iteration",
    "simulated_max_memory_bytes",
    "__version__",
]

"""Fig. 6: training time and speedup of Pipette vs the baselines.

The paper's headline experiment: on 128 GPUs, compare iteration time
of the configurations chosen by manually-tuned Megatron-LM (MLM),
Varuna (VR), AMP, Pipette's latency-estimator-only ablation (PPT-L),
and full Pipette with fine-grained worker dedication (PPT-LF).
Speedups are normalized to MLM.  Mid-range trains GPT-3.1B, high-end
GPT-11.1B.

Methodology notes carried over from §VII: AMP's and Varuna's
recommendations are launched one by one from the top until a runnable
one is found (their configurators do not reliably screen memory);
Varuna falls back to its activation-recomputation mode when nothing
fits without it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import MegatronLmTuner
from repro.core import MemoryEstimator
from repro.experiments.common import (
    ExperimentContext,
    fit_memory_estimator,
    format_table,
)


@dataclass
class MethodResult:
    """One bar of Fig. 6."""

    method: str
    config_label: str
    time_per_iter_s: float
    speedup_vs_mlm: float


@dataclass
class Fig6Result:
    """All bars of one cluster's panel."""

    cluster: str
    model: str
    global_batch: int
    methods: list[MethodResult]

    def by_method(self, name: str) -> MethodResult:
        """Look one bar up by method label."""
        for m in self.methods:
            if m.method == name:
                return m
        raise KeyError(f"no method {name!r} in results")

    def speedup(self, method: str, over: str) -> float:
        """Ratio of two methods' iteration times (e.g. PPT-LF over AMP)."""
        return self.by_method(over).time_per_iter_s / \
            self.by_method(method).time_per_iter_s


def run_fig6(cluster_name: str = "mid-range", global_batch: int = 512,
             seed: int = 2,
             memory_estimator: MemoryEstimator | None = None,
             estimator_iterations: int = 16_000,
             sa_iterations: int = 4_000) -> Fig6Result:
    """Run the Fig. 6 comparison on one cluster.

    Args:
        memory_estimator: fitted estimator for the Pipette variants;
            trained on the spot when omitted.
        sa_iterations: annealing budget per refined candidate.
    """
    ctx = ExperimentContext.create(cluster_name, seed=seed)
    if memory_estimator is None:
        memory_estimator = fit_memory_estimator(
            ctx.cluster, seed=seed, iterations=estimator_iterations)

    methods: list[MethodResult] = []

    mlm_run, _ = MegatronLmTuner(ctx.runner).tune(global_batch)
    base = mlm_run.time_per_iter_s
    methods.append(MethodResult("MLM", mlm_run.config.describe(), base, 1.0))

    vr_pick = ctx.varuna().search_with_fallback(global_batch, ctx.is_runnable)
    if vr_pick is not None:
        vr_run = ctx.measure(vr_pick.config)
        methods.append(MethodResult("VR", vr_run.config.describe(),
                                    vr_run.time_per_iter_s,
                                    base / vr_run.time_per_iter_s))

    amp_pick = ctx.amp().first_runnable(global_batch, ctx.is_runnable)
    amp_run = ctx.measure(amp_pick.config) if amp_pick is not None else None
    if amp_run is not None:
        methods.append(MethodResult("AMP", amp_run.config.describe(),
                                    amp_run.time_per_iter_s,
                                    base / amp_run.time_per_iter_s))

    for label, dedication in (("PPT-L", False), ("PPT-LF", True)):
        configurator = ctx.pipette(memory_estimator,
                                   worker_dedication=dedication,
                                   sa_iterations=sa_iterations)
        result = configurator.search(global_batch)
        if result.best is None:
            raise RuntimeError(f"{label} found no feasible configuration")
        run = ctx.runner.run(result.best.config, result.best.mapping)
        methods.append(MethodResult(label, run.config.describe(),
                                    run.time_per_iter_s,
                                    base / run.time_per_iter_s))

    return Fig6Result(cluster=cluster_name, model=ctx.model.name,
                      global_batch=global_batch, methods=methods)


def main() -> None:
    """Print both panels of Fig. 6."""
    for cluster in ("mid-range", "high-end"):
        result = run_fig6(cluster)
        rows = [{
            "method": m.method,
            "config": m.config_label,
            "time_per_iter_s": m.time_per_iter_s,
            "speedup_vs_MLM": m.speedup_vs_mlm,
        } for m in result.methods]
        print(format_table(
            rows, title=f"Fig. 6 {cluster} ({result.model}, "
                        f"global batch {result.global_batch})"))
        print(f"PPT-LF over AMP: {result.speedup('PPT-LF', 'AMP'):.2f}x  "
              f"(paper: 1.12x mid-range / 1.46x high-end)")
        print()


if __name__ == "__main__":
    main()

"""Fig. 5: latency-estimation accuracy and top-10 recommendation quality.

* **Fig. 5a** scatters estimated vs actual time/iter for Pipette's
  latency estimator and AMP's (Eq. 1, nominal bandwidth).  The paper
  reports 5.87% vs 23.18% MAPE.
* **Fig. 5b** runs each tool's top-10 recommendations on the cluster:
  most of AMP's and Varuna's crash with OOM while Pipette's are
  runnable and faster.  Conducted on the mid-range cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import MemoryEstimator
from repro.experiments.common import (
    ExperimentContext,
    fit_memory_estimator,
    format_table,
)
from repro.units import mape


@dataclass
class EstimationPoint:
    """One Fig. 5a scatter point."""

    config: "object"
    actual_s: float
    pipette_estimate_s: float
    amp_estimate_s: float


@dataclass
class Fig5aResult:
    """Scatter points plus the headline MAPE pair."""

    points: list[EstimationPoint]
    pipette_mape: float
    amp_mape: float


def run_fig5a(cluster_name: str = "mid-range", global_batch: int = 512,
              min_points: int = 25, seed: int = 0) -> Fig5aResult:
    """Estimated-vs-actual latency over the configurations the tools consider.

    The sample walks each configurator's ranking (what the authors
    could realistically launch on a shared cluster) until at least
    ``min_points`` runnable configurations are collected; crashed runs
    report no latency and are skipped.
    """
    ctx = ExperimentContext.create(cluster_name, seed=seed)
    amp = ctx.amp()
    pipette = ctx.pipette(None, worker_dedication=False)
    varuna = ctx.varuna()

    rankings = [
        [r.config for r in amp.search(global_batch)],
        [r.config for r in pipette.search(global_batch).ranked],
        [r.config for r in varuna.search(global_batch)],
    ]
    sample: list = []
    seen: set = set()
    depth = 0
    while len(sample) < min_points and depth < max(map(len, rankings)):
        for ranking in rankings:
            if depth < len(ranking):
                config = ranking[depth]
                if config not in seen:
                    seen.add(config)
                    if ctx.is_runnable(config):
                        sample.append(config)
        depth += 1

    points = []
    for config in sample:
        run = ctx.measure(config)
        points.append(EstimationPoint(
            config=config,
            actual_s=run.time_per_iter_s,
            pipette_estimate_s=pipette.estimate_latency(config),
            amp_estimate_s=amp.estimate_latency(config),
        ))
    return Fig5aResult(
        points=points,
        pipette_mape=mape([p.pipette_estimate_s for p in points],
                          [p.actual_s for p in points]),
        amp_mape=mape([p.amp_estimate_s for p in points],
                      [p.actual_s for p in points]),
    )


@dataclass
class RecommendationOutcome:
    """One ranked recommendation and what launching it reported."""

    rank: int
    config: "object"
    estimated_s: float
    actual_s: float
    oom: bool


@dataclass
class Fig5bResult:
    """Top-10 outcomes per tool."""

    outcomes: dict = field(default_factory=dict)

    def oom_count(self, tool: str) -> int:
        """OOM entries in a tool's top-10 (the paper's headline count)."""
        return sum(1 for o in self.outcomes[tool] if o.oom)


def run_fig5b(cluster_name: str = "mid-range", global_batch: int = 512,
              top_k: int = 10, seed: int = 2,
              memory_estimator: MemoryEstimator | None = None,
              estimator_iterations: int = 16_000) -> Fig5bResult:
    """Launch each tool's top-10 recommendations (Fig. 5b).

    Args:
        memory_estimator: a fitted estimator for Pipette; trained on
            the spot when omitted (slow but faithful).
    """
    ctx = ExperimentContext.create(cluster_name, seed=seed)
    if memory_estimator is None:
        memory_estimator = fit_memory_estimator(
            ctx.cluster, seed=seed, iterations=estimator_iterations)

    outcomes: dict = {"varuna": [], "amp": [], "pipette": []}
    for rank, rec in enumerate(ctx.varuna().search(global_batch, top_k=top_k), 1):
        run = ctx.measure(rec.config)
        outcomes["varuna"].append(RecommendationOutcome(
            rank=rank, config=rec.config, estimated_s=rec.estimated_latency_s,
            actual_s=run.time_per_iter_s, oom=run.oom))
    for rank, rec in enumerate(ctx.amp().search(global_batch, top_k=top_k), 1):
        run = ctx.measure(rec.config)
        outcomes["amp"].append(RecommendationOutcome(
            rank=rank, config=rec.config, estimated_s=rec.estimated_latency_s,
            actual_s=run.time_per_iter_s, oom=run.oom))
    pipette = ctx.pipette(memory_estimator, worker_dedication=False)
    for rank, entry in enumerate(pipette.search(global_batch).ranked[:top_k], 1):
        run = ctx.measure(entry.config)
        outcomes["pipette"].append(RecommendationOutcome(
            rank=rank, config=entry.config,
            estimated_s=entry.estimated_latency_s,
            actual_s=run.time_per_iter_s, oom=run.oom))
    return Fig5bResult(outcomes=outcomes)


def main() -> None:
    """Print both panels of Fig. 5."""
    from repro.experiments.report import ascii_scatter

    a = run_fig5a()
    rows = [{
        "config": p.config.describe(),
        "actual_s": p.actual_s,
        "pipette_est_s": p.pipette_estimate_s,
        "amp_est_s": p.amp_estimate_s,
    } for p in a.points]
    print(format_table(rows, title="Fig. 5a estimated vs actual time/iter"))
    xs = [p.actual_s for p in a.points] * 2
    ys = [p.pipette_estimate_s for p in a.points] \
        + [p.amp_estimate_s for p in a.points]
    marks = "P" * len(a.points) + "A" * len(a.points)
    print("\n" + ascii_scatter(xs, ys, title="Fig. 5a (P=Pipette, A=AMP)",
                               xlabel="actual s/iter",
                               ylabel="estimated s/iter", marks=marks))
    print(f"\nPipette MAPE: {a.pipette_mape:.2f}%  (paper: 5.87%)")
    print(f"AMP MAPE:     {a.amp_mape:.2f}%  (paper: 23.18%)\n")

    b = run_fig5b()
    for tool in ("varuna", "amp", "pipette"):
        rows = [{
            "rank": o.rank,
            "config": o.config.describe(),
            "estimated_s": o.estimated_s,
            "actual_s": None if o.oom else o.actual_s,
            "OOM": "OOM" if o.oom else "",
        } for o in b.outcomes[tool]]
        print(format_table(rows, title=f"Fig. 5b {tool} top-10"))
        print(f"{tool}: {b.oom_count(tool)}/10 OOM\n")


if __name__ == "__main__":
    main()

"""Terminal plotting: ASCII scatter and bar charts for the figures.

The paper's figures are scatter plots (Figs. 5a, 7) and bar charts
(Figs. 6, 8, 9).  These helpers render the same data in a terminal so
``python -m repro.experiments.<fig>`` shows the figure, not just its
table.
"""

from __future__ import annotations

import math


def ascii_scatter(xs, ys, width: int = 56, height: int = 18,
                  title: str = "", xlabel: str = "actual",
                  ylabel: str = "estimated", marks: str | None = None) -> str:
    """Scatter plot with an R=1 diagonal, like Figs. 5a and 7.

    Args:
        xs, ys: point coordinates (equal length).
        marks: optional per-point glyphs (defaults to ``o``); later
            points overwrite earlier ones on collisions.
    """
    xs = [float(v) for v in xs]
    ys = [float(v) for v in ys]
    if len(xs) != len(ys):
        raise ValueError(f"{len(xs)} xs but {len(ys)} ys")
    if not xs:
        return f"{title}\n(no points)"
    if marks is not None and len(marks) != len(xs):
        raise ValueError("marks must align with the points")

    lo = min(0.0, min(xs + ys))
    hi = max(xs + ys) * 1.05
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]

    def cell(x, y):
        col = int((x - lo) / span * (width - 1))
        row = height - 1 - int((y - lo) / span * (height - 1))
        return min(max(row, 0), height - 1), min(max(col, 0), width - 1)

    # R = 1 reference line.
    for i in range(max(width, height) * 2):
        v = lo + span * i / (max(width, height) * 2 - 1)
        r, c = cell(v, v)
        grid[r][c] = "."
    for i, (x, y) in enumerate(zip(xs, ys)):
        r, c = cell(x, y)
        grid[r][c] = marks[i] if marks else "o"

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = f"{hi:8.1f} |" if r == 0 else (
            f"{lo:8.1f} |" if r == height - 1 else "         |")
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"{ylabel} vs {xlabel}; '.' marks the R=1 line")
    return "\n".join(lines)


def ascii_bars(labels, values, width: int = 48, title: str = "",
               unit: str = "") -> str:
    """Horizontal bar chart, like the Fig. 6/8/9 panels."""
    labels = [str(x) for x in labels]
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if not values:
        return f"{title}\n(no bars)"
    top = max(values) or 1.0
    pad = max(len(s) for s in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / top * width)))
        lines.append(f"{label.rjust(pad)} |{bar} {value:.2f}{unit}")
    return "\n".join(lines)


def log_ticks(lo: float, hi: float) -> list[float]:
    """Decade tick positions covering [lo, hi] (for log-scaled axes)."""
    if lo <= 0 or hi <= 0 or hi < lo:
        raise ValueError("need 0 < lo <= hi")
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0 ** e for e in range(first, last + 1)]

"""Fig. 7: memory-estimation accuracy of Pipette vs the analytic baseline.

215 profiled configurations per cluster; the analytic estimator [20]
underestimates (65.71% / 59.49% MAPE on mid-range / high-end in the
paper) because it is blind to framework and library overhead, while
Pipette's MLP reaches 7.39% / 6.42%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import analytic_memory_estimate_bytes
from repro.core import MemoryEstimator
from repro.experiments.common import (
    cluster_by_name,
    fit_memory_estimator,
    format_table,
)
from repro.model import get_model, model_for_gpus
from repro.parallel import enumerate_parallel_configs
from repro.sim.memory_sim import simulated_max_memory_bytes
from repro.units import GIB, mape
from repro.utils.rng import derive_seed, spawn_rng


@dataclass
class MemoryPointResult:
    """One Fig. 7 scatter point (all values in GiB)."""

    config_label: str
    n_gpus: int
    actual_gib: float
    pipette_gib: float
    baseline_gib: float


@dataclass
class Fig7Result:
    """Scatter points plus headline MAPEs for one cluster."""

    cluster: str
    points: list[MemoryPointResult]
    pipette_mape: float
    baseline_mape: float
    baseline_underestimates: int

    @property
    def n_points(self) -> int:
        """Number of validation configurations (215 in the paper)."""
        return len(self.points)


def run_fig7(cluster_name: str = "mid-range", n_points: int = 215,
             seed: int = 0,
             memory_estimator: MemoryEstimator | None = None,
             estimator_iterations: int = 16_000) -> Fig7Result:
    """Collect the Fig. 7 validation set and score both estimators.

    Validation points span sub-clusters from 2 to 16 nodes — the
    >4-node points exercise exactly the extrapolation the paper
    validates ("up to 128 GPUs").
    """
    cluster = cluster_by_name(cluster_name)
    if memory_estimator is None:
        memory_estimator = fit_memory_estimator(
            cluster, seed=seed, iterations=estimator_iterations)

    rng = spawn_rng(derive_seed(seed, "fig7"), "sample")
    node_counts = [2, 4, 8, 16]
    per_bucket = -(-n_points // len(node_counts))  # ceil division
    points: list[MemoryPointResult] = []
    for n_nodes in node_counts:
        sub = cluster.scaled_to(n_nodes)
        try:
            model = model_for_gpus(cluster_name, sub.n_gpus)
        except KeyError:
            model = get_model("gpt-small")
        configs = enumerate_parallel_configs(
            sub.n_gpus, 256, gpus_per_node=sub.gpus_per_node,
            n_layers=model.n_layers)
        take = min(per_bucket, len(configs))
        picks = rng.choice(len(configs), size=take, replace=False)
        for i in sorted(picks):
            config = configs[i]
            actual = simulated_max_memory_bytes(
                model, config, sub, seed=derive_seed(seed, "fig7-actual"))
            points.append(MemoryPointResult(
                config_label=f"{model.name}:{config.describe()}",
                n_gpus=sub.n_gpus,
                actual_gib=actual / GIB,
                pipette_gib=memory_estimator.predict_bytes(
                    model, config, sub.n_gpus) / GIB,
                baseline_gib=analytic_memory_estimate_bytes(model, config) / GIB,
            ))
    points = points[:n_points]
    actuals = [p.actual_gib for p in points]
    return Fig7Result(
        cluster=cluster_name,
        points=points,
        pipette_mape=mape([p.pipette_gib for p in points], actuals),
        baseline_mape=mape([p.baseline_gib for p in points], actuals),
        baseline_underestimates=sum(
            1 for p in points if p.baseline_gib < p.actual_gib),
    )


def main() -> None:
    """Print both panels of Fig. 7."""
    from repro.experiments.report import ascii_scatter

    for cluster in ("mid-range", "high-end"):
        result = run_fig7(cluster)
        xs = [p.actual_gib for p in result.points] * 2
        ys = [p.pipette_gib for p in result.points] \
            + [p.baseline_gib for p in result.points]
        marks = "P" * len(result.points) + "B" * len(result.points)
        print(ascii_scatter(xs, ys,
                            title=f"Fig. 7 {cluster} (P=Pipette MLP, "
                                  "B=analytic baseline)",
                            xlabel="actual GiB", ylabel="estimated GiB",
                            marks=marks))
        sample_rows = [{
            "config": p.config_label,
            "gpus": p.n_gpus,
            "actual_GiB": p.actual_gib,
            "pipette_GiB": p.pipette_gib,
            "baseline_GiB": p.baseline_gib,
        } for p in result.points[:12]]
        print(format_table(sample_rows,
                           title=f"Fig. 7 {cluster} (first 12 of "
                                 f"{result.n_points} points)"))
        print(f"Pipette MAPE:  {result.pipette_mape:.2f}%  "
              "(paper: 7.39% mid / 6.42% high)")
        print(f"baseline MAPE: {result.baseline_mape:.2f}%  "
              "(paper: 65.71% mid / 59.49% high); underestimates "
              f"{result.baseline_underestimates}/{result.n_points}\n")


if __name__ == "__main__":
    main()

"""Table I: the experimental environments."""

from __future__ import annotations

from repro.cluster.presets import table1_rows
from repro.experiments.common import format_table


def run_table1() -> list[dict]:
    """The Table I rows (cluster hardware summary)."""
    return table1_rows()


def main() -> None:
    """Print Table I."""
    print(format_table(run_table1(), title="Table I experimental environment"))


if __name__ == "__main__":
    main()

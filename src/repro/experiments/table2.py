"""Table II: configuration overhead of Pipette.

Pipette's extra machinery — bandwidth profiling, simulated annealing,
memory estimation — costs minutes, which the paper shows is <= 0.05%
of a 300K-iteration training run, while the better configuration saves
0.97-10.97 days over AMP's.

The annealing budget is configurable: the paper gives each candidate
10 seconds (640-790 s total); the default here is scaled down so the
benchmark finishes quickly, and the row reports both the measured
seconds and the projection onto the paper's 10 s-per-candidate
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import MegatronLmTuner
from repro.cluster import NetworkProfiler
from repro.core import MemoryEstimator
from repro.experiments.common import (
    ExperimentContext,
    cluster_by_name,
    fit_memory_estimator,
    format_table,
)

#: Training length the paper's overhead percentages refer to.
TRAINING_ITERATIONS: int = 300_000

#: Per-candidate annealing budget of the paper's protocol, in seconds.
PAPER_SA_SECONDS_PER_CANDIDATE: float = 10.0


@dataclass
class OverheadRow:
    """One column of Table II.

    Attributes:
        cluster: environment name.
        n_nodes: cluster size of this column.
        model: weak-scaled model trained at this size.
        profiling_s: bandwidth-profiling wall clock.
        annealing_s: measured SA wall clock of this run.
        annealing_paper_protocol_s: projection onto the paper's
            10 s/candidate budget.
        memory_estimation_s: wall clock spent in the memory estimator.
        total_s: measured end-to-end configuration time.
        overhead_percent: total vs the full 300K-iteration training.
        amp_days: AMP's configuration trained for 300K iterations.
        pipette_days: Pipette's configuration, same budget.
        time_saving_days: difference.
    """

    cluster: str
    n_nodes: int
    model: str
    profiling_s: float
    annealing_s: float
    annealing_paper_protocol_s: float
    memory_estimation_s: float
    total_s: float
    overhead_percent: float
    amp_days: float
    pipette_days: float
    time_saving_days: float


def run_table2_row(cluster_name: str, n_nodes: int, seed: int = 2,
                   global_batch: int = 512,
                   memory_estimator: MemoryEstimator | None = None,
                   estimator_iterations: int = 16_000,
                   sa_iterations: int = 2_000) -> OverheadRow:
    """Measure one Table II column.

    The memory estimator is trained per *cluster* (not per size) and
    its training time is excluded, as in the paper ("required for each
    cluster only once ... can be used afterward").
    """
    full_cluster = cluster_by_name(cluster_name)
    if memory_estimator is None:
        memory_estimator = fit_memory_estimator(
            full_cluster, seed=seed, iterations=estimator_iterations)

    ctx = ExperimentContext.create(cluster_name, n_nodes=n_nodes, seed=seed)
    # The paper sweeps more message sizes on the faster HDR fabric,
    # roughly doubling the profiling cost per node (Table II).
    profiler = NetworkProfiler(n_rounds=8 if cluster_name == "high-end" else 4)
    profiling_s = profiler.profiling_cost(ctx.cluster)

    pipette = ctx.pipette(memory_estimator, worker_dedication=True,
                          sa_iterations=sa_iterations)
    result = pipette.search(global_batch)
    if result.best is None:
        raise RuntimeError("Pipette found no feasible configuration")
    n_candidates = len(result.ranked) + result.rejected_oom
    paper_sa = PAPER_SA_SECONDS_PER_CANDIDATE * len(result.ranked)

    ppt_run = ctx.runner.run(result.best.config, result.best.mapping)
    amp_pick = ctx.amp().first_runnable(global_batch, ctx.is_runnable)
    amp_time = ctx.measure(amp_pick.config).time_per_iter_s \
        if amp_pick is not None else float("nan")

    total = profiling_s + result.annealing_s + result.memory_check_s
    training_s = TRAINING_ITERATIONS * ppt_run.time_per_iter_s
    amp_days = TRAINING_ITERATIONS * amp_time / 86400.0
    ppt_days = training_s / 86400.0
    return OverheadRow(
        cluster=cluster_name,
        n_nodes=n_nodes,
        model=ctx.model.name,
        profiling_s=profiling_s,
        annealing_s=result.annealing_s,
        annealing_paper_protocol_s=paper_sa,
        memory_estimation_s=result.memory_check_s,
        total_s=total,
        overhead_percent=100.0 * total / training_s,
        amp_days=amp_days,
        pipette_days=ppt_days,
        time_saving_days=amp_days - ppt_days,
    )


def run_table2(seed: int = 2, sa_iterations: int = 2_000,
               estimator_iterations: int = 16_000) -> list[OverheadRow]:
    """All four Table II columns."""
    rows = []
    for cluster_name in ("mid-range", "high-end"):
        estimator = fit_memory_estimator(
            cluster_by_name(cluster_name), seed=seed,
            iterations=estimator_iterations)
        for n_nodes in (8, 16):
            rows.append(run_table2_row(
                cluster_name, n_nodes, seed=seed,
                memory_estimator=estimator,
                estimator_iterations=estimator_iterations,
                sa_iterations=sa_iterations))
    return rows


def main() -> None:
    """Print Table II."""
    rows = [{
        "cluster": r.cluster,
        "nodes": r.n_nodes,
        "model": r.model,
        "profiling_s": r.profiling_s,
        "SA_s (measured)": r.annealing_s,
        "SA_s (paper protocol)": r.annealing_paper_protocol_s,
        "mem_est_s": r.memory_estimation_s,
        "total_s": r.total_s,
        "overhead_%": r.overhead_percent,
        "AMP_days": r.amp_days,
        "Pipette_days": r.pipette_days,
        "saving_days": r.time_saving_days,
    } for r in run_table2()]
    print(format_table(rows, title="Table II configuration overhead "
                                   "(300K iterations)"))


if __name__ == "__main__":
    main()

"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning plain-data result
objects plus a ``main()`` that prints the same rows/series the paper
reports.  The benchmarks under ``benchmarks/`` wrap these functions;
see EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.experiments.common import ExperimentContext, format_table
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig5 import run_fig5a, run_fig5b
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9_microbatch, run_fig9_minibatch
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

__all__ = [
    "ExperimentContext",
    "format_table",
    "run_fig3",
    "run_fig5a",
    "run_fig5b",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9_microbatch",
    "run_fig9_minibatch",
    "run_table1",
    "run_table2",
]

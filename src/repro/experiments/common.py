"""Shared experiment plumbing: contexts, caching, and table printing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import AmpConfigurator, VarunaConfigurator
from repro.cluster import (
    Fabric,
    NetworkProfiler,
    ProfiledNetwork,
    high_end_cluster,
    make_fabric,
    mid_range_cluster,
)
from repro.cluster.topology import ClusterSpec
from repro.core import (
    MemoryEstimator,
    PipetteConfigurator,
    PipetteOptions,
    SAOptions,
    build_memory_dataset,
)
from repro.model import TransformerConfig, get_model, model_for_gpus
from repro.profiling import ComputeProfile, profile_compute
from repro.sim import ClusterRunner
from repro.utils.rng import derive_seed


def cluster_by_name(name: str, n_nodes: int = 16) -> ClusterSpec:
    """Look up a Table I preset by name."""
    if name == "mid-range":
        return mid_range_cluster(n_nodes)
    if name == "high-end":
        return high_end_cluster(n_nodes)
    raise ValueError(f"unknown cluster {name!r}; use 'mid-range' or 'high-end'")


#: Module-level cache of fitted memory estimators, keyed by
#: (cluster name, node count, seed, iterations).  Fitting takes tens of
#: seconds, and several experiments share one estimator per cluster —
#: exactly like the paper, which trains the MLP "for each cluster only
#: once".
_ESTIMATOR_CACHE: dict = {}


def fit_memory_estimator(cluster: ClusterSpec, seed: int = 0,
                         iterations: int = 16_000,
                         extra_models: "list[TransformerConfig] | None" = None,
                         ) -> MemoryEstimator:
    """Train (or fetch the cached) memory estimator for a cluster.

    Profiles all configurations on up-to-4-node sub-clusters across
    the cluster's model ladder plus small models, then trains the
    Eq. (7) MLP.
    """
    key = (cluster.name, cluster.n_nodes, seed, iterations)
    if key in _ESTIMATOR_CACHE:
        return _ESTIMATOR_CACHE[key]
    ladder_sizes = (32, 64, 128)
    models: dict[str, TransformerConfig] = {}
    for n_gpus in ladder_sizes:
        try:
            m = model_for_gpus(cluster.name, n_gpus)
            models[m.name] = m
        except KeyError:
            pass
    models.setdefault("gpt-small", get_model("gpt-small"))
    for m in extra_models or []:
        models[m.name] = m
    dataset = build_memory_dataset(
        cluster, list(models.values()), global_batches=[128, 256, 512],
        node_counts=[n for n in (1, 2, 3, 4) if n <= cluster.n_nodes],
        seed=derive_seed(seed, "memory-dataset"),
    )
    estimator = MemoryEstimator(seed=derive_seed(seed, "memory-estimator"))
    estimator.fit(dataset, iterations=iterations)
    _ESTIMATOR_CACHE[key] = estimator
    return estimator


@dataclass
class ExperimentContext:
    """Everything one evaluation scenario needs, built once.

    Bundles the cluster, one fabric draw, the model, the profiled
    network and compute times, the cluster runner (ground truth), and
    lazily-built configurators.
    """

    cluster: ClusterSpec
    fabric: Fabric
    model: TransformerConfig
    network: ProfiledNetwork
    profile: ComputeProfile
    runner: ClusterRunner
    seed: int
    _run_cache: dict = field(default_factory=dict, repr=False)

    @staticmethod
    def create(cluster_name: str, model_name: str | None = None,
               n_nodes: int = 16, seed: int = 0) -> "ExperimentContext":
        """Build a context for a preset cluster and (ladder) model.

        Cluster sizes off the published weak-scaling ladder fall back
        to the nearest smaller ladder model (or the smallest one).
        """
        cluster = cluster_by_name(cluster_name, n_nodes)
        fabric = make_fabric(cluster, seed=derive_seed(seed, "fabric"))
        if model_name:
            model = get_model(model_name)
        else:
            try:
                model = model_for_gpus(cluster_name, cluster.n_gpus)
            except KeyError:
                fitting = [n for n in (32, 64, 128) if n <= cluster.n_gpus]
                pick = max(fitting) if fitting else 32
                model = model_for_gpus(cluster_name, pick)
        network = NetworkProfiler().profile(
            fabric, seed=derive_seed(seed, "profiler"))
        profile = profile_compute(model, cluster,
                                  seed=derive_seed(seed, "compute"))
        runner = ClusterRunner(fabric, model, seed=derive_seed(seed, "runner"))
        return ExperimentContext(cluster=cluster, fabric=fabric, model=model,
                                 network=network, profile=profile,
                                 runner=runner, seed=seed)

    # ------------------------------------------------------------- builders

    def amp(self) -> AmpConfigurator:
        """AMP baseline bound to this context."""
        return AmpConfigurator(self.cluster, self.model,
                               self.fabric.nominal_bandwidth(), self.profile)

    def varuna(self) -> VarunaConfigurator:
        """Varuna baseline bound to this context."""
        return VarunaConfigurator(self.cluster, self.model,
                                  self.fabric.nominal_bandwidth(), self.profile)

    def pipette(self, memory_estimator: MemoryEstimator | None,
                worker_dedication: bool = True,
                sa_iterations: int = 4000,
                sa_time_limit_s: float | None = None,
                sa_top_k: int = 4) -> PipetteConfigurator:
        """Pipette (PPT-LF by default, PPT-L with dedication off)."""
        options = PipetteOptions(
            use_worker_dedication=worker_dedication,
            sa=SAOptions(max_iterations=sa_iterations,
                         time_limit_s=sa_time_limit_s,
                         seed=derive_seed(self.seed, "sa")),
            sa_top_k=sa_top_k,
            seed=derive_seed(self.seed, "pipette"),
        )
        return PipetteConfigurator(self.cluster, self.model,
                                   self.network.bandwidth, self.profile,
                                   memory_estimator, options)

    # ------------------------------------------------------------ measuring

    def measure(self, config, mapping=None):
        """Launch a configuration on the ground-truth cluster (cached
        for the default mapping)."""
        if mapping is None:
            if config not in self._run_cache:
                self._run_cache[config] = self.runner.run(config)
            return self._run_cache[config]
        return self.runner.run(config, mapping)

    def is_runnable(self, config) -> bool:
        """Whether a launch of ``config`` fits in memory."""
        return not self.measure(config).oom


def format_table(rows: list[dict], title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c)) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells))
              for i, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0.0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)

"""Fig. 3: 40-day inter-stage communication latency of a real cluster.

The paper profiles a commercial (high-end) cluster daily for 40 days
with mpiGraph and plots latency quantiles over 8-node order
combinations.  The figure's message: nominally equal links are
persistently unequal — the separation between the Q(0%) and Q(100%)
lines survives the whole campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import LatencyTrace, collect_latency_trace, make_fabric
from repro.experiments.common import cluster_by_name, format_table
from repro.utils.rng import derive_seed


@dataclass
class Fig3Result:
    """Trace plus the headline statistics of the figure.

    Attributes:
        trace: per-day quantile series (the plotted lines).
        spread_ratio: mean slowest/fastest ordering ratio per day; 1.0
            would mean a homogeneous fabric.
        rank_stability: Spearman correlation of ordering latencies
            between the first and last day; high values show the
            heterogeneity is persistent rather than noise.
    """

    trace: LatencyTrace
    spread_ratio: float
    rank_stability: float


def run_fig3(cluster_name: str = "high-end", n_days: int = 40,
             n_nodes_in_chain: int = 8, n_orderings: int = 64,
             seed: int = 0) -> Fig3Result:
    """Reproduce the Fig. 3 measurement campaign.

    Args:
        cluster_name: fabric to profile (the paper used the high-end
            environment).
        n_days: campaign length.
        n_nodes_in_chain: nodes per measured pipeline chain.
        n_orderings: node-order combinations sampled per day.
    """
    cluster = cluster_by_name(cluster_name)
    fabric = make_fabric(cluster, seed=derive_seed(seed, "fabric"))
    trace = collect_latency_trace(
        fabric, n_days=n_days, n_nodes_in_chain=n_nodes_in_chain,
        n_orderings=n_orderings, seed=derive_seed(seed, "trace"),
    )

    # Persistence: rerun the first/last day over the same orderings and
    # rank-correlate.  The quantile series itself cannot provide this,
    # so recompute per-ordering latencies directly.
    from repro.cluster.trace import chain_latency_s
    from repro.utils.rng import spawn_rng

    rng = spawn_rng(derive_seed(seed, "trace"), "trace-orderings")
    orders = [rng.permutation(cluster.n_nodes)[:n_nodes_in_chain]
              for _ in range(n_orderings)]
    k = cluster.gpus_per_node
    msg = 128 * 2**20
    first = np.array([chain_latency_s(fabric.bandwidth_at_day(0.0), o, msg, k)
                      for o in orders])
    last = np.array([chain_latency_s(fabric.bandwidth_at_day(float(n_days - 1)),
                                     o, msg, k) for o in orders])
    rank_first = np.argsort(np.argsort(first))
    rank_last = np.argsort(np.argsort(last))
    stability = float(np.corrcoef(rank_first, rank_last)[0, 1])

    return Fig3Result(trace=trace, spread_ratio=trace.spread_ratio(),
                      rank_stability=stability)


def main() -> None:
    """Print the Fig. 3 series and summary statistics."""
    result = run_fig3()
    rows = result.trace.rows()
    print(format_table(rows[:10] + rows[-2:],
                       title="Fig. 3 inter-stage latency quantiles (ms), "
                             "first 10 and last 2 days"))
    print(f"\nslowest/fastest ordering ratio: {result.spread_ratio:.2f}x "
          "(1.0 = homogeneous)")
    print(f"day-0 vs day-39 ordering rank correlation: "
          f"{result.rank_stability:.3f}")


if __name__ == "__main__":
    main()

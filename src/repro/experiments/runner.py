"""Run every paper experiment in sequence and write a report.

``python -m repro.experiments.runner [--fast]`` regenerates all tables
and figures (the same content as the benchmark harness, without the
timing instrumentation) into one text report.
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from contextlib import redirect_stdout

from repro.experiments import fig3, fig5, fig6, fig7, fig8, fig9, table1, table2

#: The experiments in paper order.
ALL_EXPERIMENTS = {
    "table1": table1.main,
    "fig3": fig3.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "table2": table2.main,
}


def run_all(names: list[str] | None = None, output=sys.stdout) -> dict:
    """Run the selected experiments; returns name -> elapsed seconds."""
    chosen = names or list(ALL_EXPERIMENTS)
    unknown = set(chosen) - set(ALL_EXPERIMENTS)
    if unknown:
        raise ValueError(
            f"unknown experiments {sorted(unknown)}; "
            f"available: {sorted(ALL_EXPERIMENTS)}"
        )
    timings = {}
    for name in chosen:
        print(f"\n{'=' * 70}\n== {name}\n{'=' * 70}", file=output)
        buffer = io.StringIO()
        start = time.perf_counter()
        with redirect_stdout(buffer):
            ALL_EXPERIMENTS[name]()
        timings[name] = time.perf_counter() - start
        print(buffer.getvalue(), file=output)
        print(f"[{name} took {timings[name]:.1f} s]", file=output)
    return timings


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help=f"subset to run (default: all of "
                             f"{sorted(ALL_EXPERIMENTS)})")
    parser.add_argument("--output", default=None,
                        help="write the report to a file instead of stdout")
    args = parser.parse_args()
    if args.output:
        with open(args.output, "w") as handle:
            run_all(args.experiments or None, output=handle)
    else:
        run_all(args.experiments or None)


if __name__ == "__main__":
    main()

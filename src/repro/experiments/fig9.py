"""Fig. 9: micro/minibatch size sensitivity of Pipette over AMP.

Two sweeps with the batch dimension pinned, per §VII-E:

* **Fig. 9a**: microbatch in {1, 2, 4, 8} at total batch 256;
* **Fig. 9b**: total batch in {64 ... 1024} at microbatch 8 — at the
  largest batch AMP's recommendations all OOM (marked in the paper's
  figure), while Pipette still finds a runnable configuration.

The paper reports a stable 1.14-1.44x speedup across the sweeps.  The
paper does not state which cluster Fig. 9 used; this reproduction
runs the high-end cluster, whose memory envelope supports microbatch
8 at every swept batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import MemoryEstimator
from repro.experiments.common import (
    ExperimentContext,
    fit_memory_estimator,
    format_table,
)


@dataclass
class SensitivityPoint:
    """One x-position of a Fig. 9 panel."""

    swept_value: int
    amp_time_s: float | None
    pipette_time_s: float | None
    amp_oom: bool = False

    @property
    def speedup(self) -> float | None:
        """Pipette's speedup over AMP (``None`` when AMP OOMs)."""
        if self.amp_oom or self.amp_time_s is None \
                or self.pipette_time_s is None:
            return None
        return self.amp_time_s / self.pipette_time_s


def _sweep_point(ctx: ExperimentContext, memory_estimator: MemoryEstimator,
                 global_batch: int, micro_batch: int,
                 sa_iterations: int) -> SensitivityPoint:
    """Evaluate AMP and Pipette with the microbatch pinned."""
    micro = [micro_batch]
    amp_pick = ctx.amp().first_runnable(global_batch, ctx.is_runnable,
                                        micro_batches=micro)
    amp_time = ctx.measure(amp_pick.config).time_per_iter_s \
        if amp_pick is not None else None

    pipette = ctx.pipette(memory_estimator, worker_dedication=True,
                          sa_iterations=sa_iterations)
    result = pipette.search(global_batch, micro_batches=micro)
    ppt_time = None
    if result.best is not None:
        ppt_time = ctx.runner.run(result.best.config,
                                  result.best.mapping).time_per_iter_s
    return SensitivityPoint(
        swept_value=0,  # caller overwrites
        amp_time_s=amp_time,
        pipette_time_s=ppt_time,
        amp_oom=amp_pick is None,
    )


def run_fig9_microbatch(cluster_name: str = "high-end",
                        global_batch: int = 256,
                        micro_batches: tuple[int, ...] = (1, 2, 4, 8),
                        seed: int = 2,
                        memory_estimator: MemoryEstimator | None = None,
                        estimator_iterations: int = 16_000,
                        sa_iterations: int = 3_000) -> list[SensitivityPoint]:
    """Fig. 9a: sweep the microbatch size at a fixed total batch."""
    ctx = ExperimentContext.create(cluster_name, seed=seed)
    if memory_estimator is None:
        memory_estimator = fit_memory_estimator(
            ctx.cluster, seed=seed, iterations=estimator_iterations)
    points = []
    for mb in micro_batches:
        point = _sweep_point(ctx, memory_estimator, global_batch, mb,
                             sa_iterations)
        point.swept_value = mb
        points.append(point)
    return points


def run_fig9_minibatch(cluster_name: str = "high-end",
                       global_batches: tuple[int, ...] = (64, 128, 256, 512, 1024),
                       micro_batch: int = 8,
                       seed: int = 2,
                       memory_estimator: MemoryEstimator | None = None,
                       estimator_iterations: int = 16_000,
                       sa_iterations: int = 3_000) -> list[SensitivityPoint]:
    """Fig. 9b: sweep the total batch size at a fixed microbatch."""
    ctx = ExperimentContext.create(cluster_name, seed=seed)
    if memory_estimator is None:
        memory_estimator = fit_memory_estimator(
            ctx.cluster, seed=seed, iterations=estimator_iterations)
    points = []
    for gb in global_batches:
        point = _sweep_point(ctx, memory_estimator, gb, micro_batch,
                             sa_iterations)
        point.swept_value = gb
        points.append(point)
    return points


def main() -> None:
    """Print both panels of Fig. 9."""
    a = run_fig9_microbatch()
    rows = [{
        "microbatch": p.swept_value,
        "AMP_s": "OOM" if p.amp_oom else p.amp_time_s,
        "Pipette_s": p.pipette_time_s,
        "speedup": p.speedup,
    } for p in a]
    print(format_table(rows, title="Fig. 9a microbatch sensitivity "
                                   "(total batch 256)"))
    b = run_fig9_minibatch()
    rows = [{
        "total_batch": p.swept_value,
        "AMP_s": "OOM" if p.amp_oom else p.amp_time_s,
        "Pipette_s": p.pipette_time_s,
        "speedup": p.speedup,
    } for p in b]
    print(format_table(rows, title="Fig. 9b minibatch sensitivity "
                                   "(microbatch 8; paper marks AMP OOM at "
                                   "the largest batch)"))


if __name__ == "__main__":
    main()

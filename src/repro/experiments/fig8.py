"""Fig. 8: cluster- and model-size scalability of Pipette over AMP.

The paper weak-scales the model with the GPU count (32 -> 774M/2.2B,
64 -> 1.1B/8.1B, 128 -> 3.1B/11.1B) and finds Pipette's speedup grows
with cluster size — smaller clusters expose less heterogeneity —
but stays >= 1.02x everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import MemoryEstimator
from repro.experiments.common import (
    ExperimentContext,
    cluster_by_name,
    fit_memory_estimator,
    format_table,
)


@dataclass
class ScalePoint:
    """One (cluster size, model) bar pair of Fig. 8."""

    cluster: str
    n_gpus: int
    model: str
    amp_time_s: float
    pipette_time_s: float

    @property
    def speedup(self) -> float:
        """Pipette's speedup over AMP at this scale."""
        return self.amp_time_s / self.pipette_time_s


def run_fig8(cluster_name: str = "mid-range",
             gpu_counts: tuple[int, ...] = (32, 64, 128),
             global_batch: int = 256, seed: int = 2,
             memory_estimator: MemoryEstimator | None = None,
             estimator_iterations: int = 16_000,
             sa_iterations: int = 4_000) -> list[ScalePoint]:
    """Weak-scaling sweep of one cluster (one Fig. 8 half).

    The memory estimator is trained once on the full cluster's
    profile and reused at every scale, exactly as the paper
    prescribes.
    """
    full_cluster = cluster_by_name(cluster_name)
    if memory_estimator is None:
        memory_estimator = fit_memory_estimator(
            full_cluster, seed=seed, iterations=estimator_iterations)

    points: list[ScalePoint] = []
    for n_gpus in gpu_counts:
        n_nodes = n_gpus // full_cluster.gpus_per_node
        ctx = ExperimentContext.create(cluster_name, n_nodes=n_nodes,
                                       seed=seed)
        amp_pick = ctx.amp().first_runnable(global_batch, ctx.is_runnable)
        if amp_pick is None:
            raise RuntimeError(
                f"AMP found no runnable configuration at {n_gpus} GPUs")
        amp_time = ctx.measure(amp_pick.config).time_per_iter_s

        pipette = ctx.pipette(memory_estimator, worker_dedication=True,
                              sa_iterations=sa_iterations)
        result = pipette.search(global_batch)
        if result.best is None:
            raise RuntimeError(
                f"Pipette found no feasible configuration at {n_gpus} GPUs")
        ppt_time = ctx.runner.run(result.best.config,
                                  result.best.mapping).time_per_iter_s
        points.append(ScalePoint(cluster=cluster_name, n_gpus=n_gpus,
                                 model=ctx.model.name, amp_time_s=amp_time,
                                 pipette_time_s=ppt_time))
    return points


def main() -> None:
    """Print both halves of Fig. 8."""
    rows = []
    for cluster in ("mid-range", "high-end"):
        for p in run_fig8(cluster):
            rows.append({
                "cluster": p.cluster,
                "gpus": p.n_gpus,
                "model": p.model,
                "AMP_s": p.amp_time_s,
                "Pipette_s": p.pipette_time_s,
                "speedup": p.speedup,
            })
    print(format_table(rows, title="Fig. 8 cluster/model size scalability "
                                   "(paper: 1.02-1.17x at small scales, "
                                   "growing with size)"))


if __name__ == "__main__":
    main()

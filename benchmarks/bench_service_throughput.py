"""Planning-service throughput: cache, parallel search, elastic re-plan.

Three claims, one per test:

* a cache hit answers a repeated request >= 10x faster than the cold
  search that produced it (in practice: microseconds vs seconds);
* fanning candidate evaluation over a process pool beats the serial
  search wall-clock on a multi-candidate search — while returning the
  *identical* ranking under fixed seeds (asserted on every host; the
  wall-clock claim is skipped where only one CPU is usable, since no
  pool can beat serial there);
* after a single-node failure, warm-started re-planning reaches within
  5% of the cold search's estimated latency in less search time.
"""

import time

import pytest
from conftest import run_once

from repro.cluster import NetworkProfiler, make_fabric
from repro.cluster.presets import mid_range_cluster
from repro.core import PipetteConfigurator, PipetteOptions, SAOptions
from repro.model import get_model
from repro.service import (
    CandidateExecutor,
    ClusterEvent,
    PlanningService,
    available_workers,
)

#: One concrete fabric draw, like the other macro-benchmarks.
SEED = 2

#: Search shape: enough candidates to keep a pool busy, annealing
#: budget large enough that the refinement dominates.
N_NODES = 4
GLOBAL_BATCH = 64
OPTIONS = PipetteOptions(sa=SAOptions(max_iterations=1200), sa_top_k=4,
                         seed=SEED)


def _world():
    cluster = mid_range_cluster(n_nodes=N_NODES)
    fabric = make_fabric(cluster, seed=SEED)
    network = NetworkProfiler().profile(fabric, seed=SEED)
    model = get_model("gpt-1.1b")
    return cluster, network.bandwidth, model


def _ranking_signature(result):
    return [(r.config, r.estimated_latency_s,
             r.mapping.block_to_slot.tolist()) for r in result.ranked]


def test_cache_hit_speedup(benchmark):
    """A repeated request is served from cache >= 10x faster than cold."""
    cluster, bandwidth, model = _world()

    def collect():
        service = PlanningService(cluster, bandwidth, profile_seed=SEED)
        request = service.request(model, GLOBAL_BATCH, options=OPTIONS)
        cold = service.plan(request)
        hot = service.plan(request)
        return cold, hot, service.stats

    cold, hot, stats = run_once(benchmark, collect)
    print(f"\ncold search: {cold.elapsed_s * 1e3:10.1f} ms  [{cold.status}]")
    print(f"cache hit:   {hot.elapsed_s * 1e3:10.3f} ms  [{hot.status}]")
    print(f"speedup:     {cold.elapsed_s / hot.elapsed_s:10.0f}x")
    print(f"stats: {stats}")
    assert cold.status == "miss" and hot.status == "hit"
    assert hot.result is cold.result
    assert cold.elapsed_s >= 10 * hot.elapsed_s


def test_parallel_candidate_evaluation(benchmark):
    """Pooled search returns the serial ranking; faster on multi-core."""
    cluster, bandwidth, model = _world()

    def collect():
        t0 = time.perf_counter()
        serial = PipetteConfigurator(
            cluster, model, bandwidth,
            _profile(model, cluster), None,
            options=OPTIONS).search(GLOBAL_BATCH)
        serial_s = time.perf_counter() - t0
        with CandidateExecutor(kind="process") as executor:
            t0 = time.perf_counter()
            parallel = PipetteConfigurator(
                cluster, model, bandwidth,
                _profile(model, cluster), None,
                options=OPTIONS).search(GLOBAL_BATCH, executor=executor)
            parallel_s = time.perf_counter() - t0
            workers = executor.n_workers
        return serial, serial_s, parallel, parallel_s, workers

    serial, serial_s, parallel, parallel_s, workers = run_once(benchmark,
                                                               collect)
    print(f"\ncandidates ranked: {len(serial.ranked)}, "
          f"SA-refined: {min(OPTIONS.sa_top_k, len(serial.ranked))}")
    print(f"serial:   {serial_s:7.2f} s")
    print(f"parallel: {parallel_s:7.2f} s  ({workers} process workers, "
          f"{serial_s / parallel_s:.2f}x)")
    # Identity holds regardless of host parallelism — that is the
    # determinism contract of the per-candidate seeds.
    assert _ranking_signature(parallel) == _ranking_signature(serial)
    if workers < 2:
        pytest.skip("single usable CPU: a pool cannot beat serial here")
    assert parallel_s < serial_s


def test_warm_replan_vs_cold_search(benchmark):
    """Warm re-plan after one node failure: <= 5% latency, less time."""
    cluster, bandwidth, model = _world()

    def collect():
        service = PlanningService(cluster, bandwidth, profile_seed=SEED)
        request = service.request(model, GLOBAL_BATCH, options=OPTIONS)
        return service.replan(request, ClusterEvent.node_failure(1))

    report = run_once(benchmark, collect)
    print(f"\nprevious:  {report.previous.config.describe():<24} "
          f"{report.previous.estimated_latency_s:7.3f} s/iter "
          f"on {N_NODES} nodes")
    print(f"warm:      {report.warm.config.describe():<24} "
          f"{report.warm.estimated_latency_s:7.3f} s/iter "
          f"in {report.warm_search_s:6.2f} s "
          f"(start was {report.warm_start_latency_s:.3f})")
    print(f"cold:      {report.cold.config.describe():<24} "
          f"{report.cold.estimated_latency_s:7.3f} s/iter "
          f"in {report.cold_search_s:6.2f} s")
    print(f"latency gap: {report.latency_gap * 100:+.2f}%   "
          f"search speedup: {report.search_speedup:.1f}x")
    assert report.cluster.n_nodes == N_NODES - 1
    assert report.latency_gap <= 0.05
    assert report.warm_search_s < report.cold_search_s


def _profile(model, cluster):
    from repro.profiling import profile_compute
    return profile_compute(model, cluster, seed=SEED)

"""Micro-benchmarks of the library's hot paths.

These are true pytest-benchmark measurements (multiple rounds): the
latency-estimator evaluation drives the annealer's throughput, the
engine drives every "actual" measurement, and the configurator's full
search is Table II's dominant cost.
"""

import pytest
from conftest import BENCH_SEED

from repro.core.latency_model import pipette_latency
from repro.experiments.common import ExperimentContext
from repro.parallel import ParallelConfig, WorkerGrid, sequential_mapping
from repro.sim import simulate_iteration, simulated_max_memory_bytes


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.create("high-end", seed=BENCH_SEED)


@pytest.fixture(scope="module")
def config():
    return ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4, global_batch=512)


@pytest.fixture(scope="module")
def mapping(ctx, config):
    return sequential_mapping(WorkerGrid(config.pp, config.tp, config.dp),
                              ctx.cluster)


def test_perf_latency_estimator_eval(benchmark, ctx, config, mapping):
    """One Eq. (3)-(6) evaluation — the SA objective call."""
    result = benchmark(pipette_latency, ctx.model, config, mapping,
                       ctx.network.bandwidth, ctx.profile)
    assert result > 0


def test_perf_engine_iteration(benchmark, ctx, config, mapping):
    """One discrete-event simulation of a 128-GPU training iteration."""
    result = benchmark(simulate_iteration, ctx.model, config, mapping,
                       ctx.fabric.bandwidth())
    assert result.time_s > 0


def test_perf_memory_ground_truth(benchmark, ctx, config):
    """One max-memory evaluation of a configuration."""
    result = benchmark(simulated_max_memory_bytes, ctx.model, config,
                       ctx.cluster)
    assert result > 0


def test_perf_bandwidth_profiling(benchmark, ctx):
    """One mpiGraph-style profiling campaign over the 128-GPU fabric."""
    from repro.cluster import NetworkProfiler
    profiler = NetworkProfiler(n_rounds=2)
    result = benchmark(profiler.profile, ctx.fabric)
    assert result.bandwidth.n_gpus == 128


def test_perf_configuration_enumeration(benchmark, ctx):
    """Enumerating the Algorithm 1 search space at 128 GPUs."""
    from repro.parallel import enumerate_parallel_configs
    configs = benchmark(enumerate_parallel_configs, 128, 512,
                        8, ctx.model.n_layers)
    assert len(configs) > 20

"""Fig. 3: 40-day inter-stage latency trace of the high-end fabric."""

from conftest import BENCH_SEED, run_once

from repro.experiments import format_table, run_fig3


def test_fig3_latency_trace(benchmark):
    result = run_once(benchmark, run_fig3, n_days=40, n_orderings=64,
                      seed=BENCH_SEED)
    rows = result.trace.rows()
    print("\n" + format_table(
        rows[:5] + rows[-3:],
        title="Fig. 3 latency quantiles over node orderings (ms), "
              "first 5 / last 3 of 40 days"))
    print(f"spread Q(100%)/Q(0%): {result.spread_ratio:.2f}x; "
          f"day-0 vs day-39 rank correlation: {result.rank_stability:.3f}")
    # Paper shape: links are persistently unequal.
    assert result.spread_ratio > 1.1
    assert result.rank_stability > 0.8
    # Quantile lines never cross.
    for row in result.trace.latencies_ms:
        assert all(a >= b for a, b in zip(row, row[1:]))

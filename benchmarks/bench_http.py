"""HTTP front end: bounded transport overhead, fairness-bounded tails.

Two claims, one per test:

* **HTTP is a transport, not a tax.**  The same cached request is
  answered directly through :meth:`PlanGateway.plan` and over
  ``POST /v1/plan`` on a keep-alive connection.  The plans are
  byte-identical (``to_payload``, net of stopwatch fields — the HTTP
  body carries the full result under ``"detail": true``), and the
  median HTTP round trip adds only a bounded constant over the direct
  call (request parsing + JSON framing; no search, both sides hit the
  plan cache).
* **Weighted-fair lanes bound a starved client's tail.**  A hostile
  client floods one cluster's lane with 40 distinct requests at 10:1
  against a victim client's 4.  Under FIFO draining the victim's
  worst answer waits for (nearly) the whole hostile backlog; under
  the default weighted round-robin with bounded batches, the victim
  rides the next batch and its p99 drops by multiples.  Search cost
  is pinned to a constant per request (a stubbed search of known
  duration) so the measured difference is pure queueing policy.
"""

import asyncio
import json
import statistics
import time

from conftest import run_once

from repro.cluster import NetworkProfiler, make_fabric
from repro.cluster.presets import mid_range_cluster
from repro.core import PipetteOptions, SAOptions
from repro.model import get_model
from repro.service import (
    ClusterRegistry,
    HttpPlanServer,
    MetricsRegistry,
    PlanGateway,
)

SEED = 2
OPTIONS = PipetteOptions(use_worker_dedication=False,
                         sa=SAOptions(max_iterations=300), seed=SEED)

#: Stubbed per-search duration for the fairness experiment: long
#: enough that queueing dominates scheduling noise, short enough that
#: 44 searches stay a CI-sized benchmark.
SEARCH_S = 0.05

#: ``to_payload`` fields that time the search instead of describing
#: the plan; equal plans time differently run to run.
_STOPWATCH_FIELDS = ("memory_check_s", "annealing_s", "total_s")


def _plan_bytes(payload: dict) -> str:
    payload = dict(payload)
    for field in _STOPWATCH_FIELDS:
        payload.pop(field, None)
    return json.dumps(payload, sort_keys=True)


def _one_cluster_registry():
    cluster = mid_range_cluster(n_nodes=1)
    network = NetworkProfiler().profile(make_fabric(cluster, seed=SEED),
                                        seed=SEED)
    registry = ClusterRegistry()
    registry.add_cluster("mid", cluster, network.bandwidth,
                         profile_seed=SEED)
    return registry


async def _http_round_trip(reader, writer, body: bytes):
    writer.write((f"POST /v1/plan HTTP/1.1\r\nHost: bench\r\n"
                  f"Content-Length: {len(body)}\r\n\r\n").encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers["content-length"]))
    assert status_line.split()[1] == b"200", status_line
    return json.loads(payload.decode("utf-8"))


def test_http_overhead_is_bounded(benchmark):
    """Cache-hit round trips: HTTP adds a bounded constant, same bytes."""
    registry = _one_cluster_registry()
    model = get_model("gpt-toy")
    rounds = 40

    def collect():
        metrics = MetricsRegistry()
        registry.attach_metrics(metrics)
        service = registry.service("mid")
        request = service.request(model, 32, options=OPTIONS)

        async def scenario():
            async with PlanGateway(registry, metrics=metrics) as gateway:
                front = HttpPlanServer(gateway, OPTIONS, metrics=metrics)
                server = await asyncio.start_server(front.handle,
                                                    "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                warm = await gateway.plan(request)  # miss: pays the search

                direct = []
                for _ in range(rounds):
                    t0 = time.perf_counter()
                    answer = await gateway.plan(request)
                    direct.append(time.perf_counter() - t0)
                    assert answer.status == "hit"

                body = json.dumps({"model": "gpt-toy", "global_batch": 32,
                                   "cluster": "mid",
                                   "detail": True}).encode()
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                http = []
                last = None
                for _ in range(rounds):
                    t0 = time.perf_counter()
                    last = await _http_round_trip(reader, writer, body)
                    http.append(time.perf_counter() - t0)
                    assert last["status"] == "hit"
                writer.close()
                server.close()
                await server.wait_closed()
                return warm, direct, http, last

        warm, direct, http, last = asyncio.run(scenario())
        return (_plan_bytes(warm.result.to_payload()),
                _plan_bytes(last["result"]), direct, http)

    warm_bytes, http_bytes, direct, http = run_once(benchmark, collect)
    direct_ms = statistics.median(direct) * 1e3
    http_ms = statistics.median(http) * 1e3
    print(f"\ndirect gateway hit:  {direct_ms:7.3f} ms median "
          f"({len(direct)} rounds)")
    print(f"HTTP /v1/plan hit:   {http_ms:7.3f} ms median "
          f"(keep-alive, full result body)")
    print(f"transport overhead:  {http_ms - direct_ms:7.3f} ms")

    # The transport must not change answers...
    assert http_bytes == warm_bytes, \
        "HTTP plan diverged from the direct gateway answer"
    # ...and its cost is parsing + framing, not another search: a
    # generous 50 ms bound that still catches an accidental re-search
    # (or an accidental per-request connection) by an order of
    # magnitude.
    assert http_ms <= direct_ms + 50.0, \
        f"HTTP overhead {http_ms - direct_ms:.1f} ms is not bounded"


def test_fair_lanes_bound_hostile_client_tail(benchmark):
    """10:1 hostile flood: weighted-fair victim p99 beats FIFO by >= 2x."""
    registry_template = _one_cluster_registry()
    model = get_model("gpt-toy")
    source = registry_template.service("mid")
    seed_result = source.plan(source.request(model, 8,
                                             options=OPTIONS)).result

    def run_policy(fairness):
        cluster = source.cluster
        registry = ClusterRegistry()
        registry.add_cluster("mid", cluster, source.bandwidth,
                             profile_seed=SEED)
        service = registry.service("mid")

        def stub_search(request):
            time.sleep(SEARCH_S)
            return seed_result

        service._search = stub_search
        hostile_requests = [service.request(model, 16 + 8 * i,
                                            options=OPTIONS)
                            for i in range(40)]
        victim_requests = [service.request(model, 4096 + 8 * i,
                                           options=OPTIONS)
                           for i in range(4)]

        async def scenario():
            async with PlanGateway(registry, fairness=fairness,
                                   max_batch=4,
                                   max_queue_depth=256) as gateway:
                flood = [asyncio.ensure_future(
                    gateway.plan(request, client_id="hostile"))
                    for request in hostile_requests]

                await asyncio.sleep(2 * SEARCH_S)  # flood is in flight
                waits = []
                for request in victim_requests:
                    t0 = time.perf_counter()
                    answer = await gateway.plan(request,
                                                client_id="victim")
                    waits.append(time.perf_counter() - t0)
                    assert answer.best is not None
                await asyncio.gather(*flood)
                return waits

        return asyncio.run(scenario())

    def collect():
        return run_policy("fifo"), run_policy("fair")

    fifo, fair = run_once(benchmark, collect)
    fifo_p99 = max(fifo)
    fair_p99 = max(fair)
    print(f"\nhostile flood: 40 requests vs 4 victim requests, "
          f"{SEARCH_S * 1e3:.0f} ms/search, batches of 4")
    print(f"FIFO  victim waits: " +
          " ".join(f"{w * 1e3:6.0f}" for w in fifo) + " ms")
    print(f"fair  victim waits: " +
          " ".join(f"{w * 1e3:6.0f}" for w in fair) + " ms")
    print(f"victim p99: fifo {fifo_p99 * 1e3:.0f} ms, "
          f"fair {fair_p99 * 1e3:.0f} ms "
          f"({fifo_p99 / fair_p99:.1f}x better)")

    # FIFO parks the victim behind (most of) the hostile backlog;
    # weighted round-robin with bounded batches answers it within a
    # couple of batch times.  2x is far under the typical gap (>= 4x)
    # but robust to a noisy CI host.
    assert fifo_p99 >= 2 * fair_p99, \
        (f"fair lanes should bound the starved client's tail: "
         f"fifo {fifo_p99:.3f}s vs fair {fair_p99:.3f}s")

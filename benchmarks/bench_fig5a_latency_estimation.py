"""Fig. 5a: latency-estimation accuracy of Pipette vs AMP."""

import pytest
from conftest import BENCH_SEED, run_once

from repro.experiments import format_table, run_fig5a


@pytest.mark.parametrize("cluster", ["mid-range", "high-end"])
def test_fig5a_latency_estimation(benchmark, cluster):
    result = run_once(benchmark, run_fig5a, cluster_name=cluster,
                      seed=BENCH_SEED)
    rows = [{
        "config": p.config.describe(),
        "actual_s": p.actual_s,
        "pipette_est_s": p.pipette_estimate_s,
        "amp_est_s": p.amp_estimate_s,
    } for p in result.points[:12]]
    print("\n" + format_table(
        rows, title=f"Fig. 5a {cluster}: estimated vs actual "
                    f"(12 of {len(result.points)} points)"))
    print(f"Pipette MAPE {result.pipette_mape:.2f}% (paper 5.87%), "
          f"AMP MAPE {result.amp_mape:.2f}% (paper 23.18%)")
    # Paper shape: Pipette is accurate; AMP errs much more and
    # systematically underestimates.
    assert result.pipette_mape < 10.0
    assert result.amp_mape > 1.7 * result.pipette_mape
    under = sum(1 for p in result.points if p.amp_estimate_s < p.actual_s)
    assert under > len(result.points) * 0.7

"""Fig. 9: micro/minibatch size sensitivity of Pipette over AMP."""

from conftest import BENCH_SEED, run_once

from repro.experiments import (
    format_table,
    run_fig9_microbatch,
    run_fig9_minibatch,
)


def test_fig9a_microbatch_sensitivity(benchmark, high_estimator):
    points = run_once(benchmark, run_fig9_microbatch, seed=BENCH_SEED,
                      memory_estimator=high_estimator)
    rows = [{
        "microbatch": p.swept_value,
        "AMP_s": "OOM" if p.amp_oom else p.amp_time_s,
        "Pipette_s": p.pipette_time_s,
        "speedup": p.speedup,
    } for p in points]
    print("\n" + format_table(rows, title="Fig. 9a microbatch sensitivity "
                                          "(total batch 256, high-end)"))
    # Pipette always returns a runnable configuration; time/iter drops
    # as the microbatch grows (better utilization) and Pipette never
    # loses badly.
    times = [p.pipette_time_s for p in points]
    assert all(t is not None for t in times)
    assert times[-1] < times[0]
    speedups = [p.speedup for p in points if p.speedup is not None]
    assert speedups and max(speedups) > 1.1
    assert all(s > 0.9 for s in speedups)


def test_fig9b_minibatch_sensitivity(benchmark, high_estimator):
    points = run_once(benchmark, run_fig9_minibatch, seed=BENCH_SEED,
                      memory_estimator=high_estimator)
    rows = [{
        "total_batch": p.swept_value,
        "AMP_s": "OOM" if p.amp_oom else p.amp_time_s,
        "Pipette_s": p.pipette_time_s,
        "speedup": p.speedup,
    } for p in points]
    print("\n" + format_table(rows, title="Fig. 9b minibatch sensitivity "
                                          "(microbatch 8, high-end)"))
    # Paper shape: AMP cannot configure the largest batch (marked OOM
    # in the figure) while Pipette still can.
    largest = points[-1]
    assert largest.amp_oom
    assert largest.pipette_time_s is not None
    assert all(p.pipette_time_s is not None for p in points)

"""Fig. 7: memory-estimation accuracy of Pipette vs the analytic baseline."""

import pytest
from conftest import BENCH_SEED, run_once

from repro.experiments import format_table, run_fig7


@pytest.mark.parametrize("cluster", ["mid-range", "high-end"])
def test_fig7_memory_estimation(benchmark, cluster, mid_estimator,
                                high_estimator):
    estimator = mid_estimator if cluster == "mid-range" else high_estimator
    result = run_once(benchmark, run_fig7, cluster_name=cluster,
                      seed=BENCH_SEED, memory_estimator=estimator)
    rows = [{
        "config": p.config_label,
        "gpus": p.n_gpus,
        "actual_GiB": p.actual_gib,
        "pipette_GiB": p.pipette_gib,
        "baseline_GiB": p.baseline_gib,
    } for p in result.points[:10]]
    print("\n" + format_table(
        rows, title=f"Fig. 7 {cluster} (10 of {result.n_points} points)"))
    print(f"Pipette MAPE {result.pipette_mape:.2f}% "
          "(paper 7.39% mid / 6.42% high); "
          f"baseline MAPE {result.baseline_mape:.2f}% "
          "(paper 65.71% / 59.49%); baseline underestimates "
          f"{result.baseline_underestimates}/{result.n_points}")
    # Paper shape: the MLP is close, the analytic baseline far off and
    # always under.
    assert result.n_points >= 200
    assert result.pipette_mape < 15.0
    assert result.baseline_mape > 3 * result.pipette_mape
    assert result.baseline_underestimates == result.n_points

"""Ablation benches for the design choices DESIGN.md §5 calls out.

* SA move sets (the paper motivates the *reverse* move).
* The hidden-critical-path term of the latency model (Eq. 3 vs Eq. 1).
* Profiled vs nominal bandwidth in the latency model.
* The memory-estimator soft margin vs the OOM rate of recommendations.
"""

import pytest
from conftest import BENCH_SEED, run_once

from repro.core import SAOptions, anneal_mapping
from repro.core.latency_model import LatencyModelOptions, latency_with_options
from repro.experiments import format_table
from repro.experiments.common import ExperimentContext
from repro.parallel import ParallelConfig, WorkerGrid, sequential_mapping
from repro.units import mape


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.create("high-end", seed=BENCH_SEED)


@pytest.fixture(scope="module")
def sa_setup(ctx):
    config = ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4,
                            global_batch=512)
    mapping = sequential_mapping(WorkerGrid(4, 8, 4), ctx.cluster)

    def objective(m):
        from repro.core.latency_model import pipette_latency
        return pipette_latency(ctx.model, config, m, ctx.network.bandwidth,
                               ctx.profile)

    return config, mapping, objective


def test_ablation_sa_move_sets(benchmark, sa_setup):
    config, mapping, objective = sa_setup

    def sweep():
        results = {}
        for moves in (("swap",), ("migrate",), ("reverse",),
                      ("migrate", "swap"), ("migrate", "swap", "reverse")):
            r = anneal_mapping(mapping, objective,
                               SAOptions(max_iterations=4000, moves=moves,
                                         seed=BENCH_SEED))
            results["+".join(moves)] = r
        return results

    results = run_once(benchmark, sweep)
    rows = [{
        "moves": k,
        "final_estimate_s": r.value,
        "improvement_%": r.improvement * 100,
        "accepted": r.accepted,
    } for k, r in results.items()]
    print("\n" + format_table(rows, title="SA move-set ablation "
                                          f"({config.describe()})"))
    full = results["migrate+swap+reverse"]
    # The full move set must not lose to any single-move subset.
    for k, r in results.items():
        assert full.value <= r.value * 1.01, k
    # Every move set must at least not regress from the naive mapping.
    assert all(r.value <= r.initial_value for r in results.values())


def test_ablation_hidden_critical_path(benchmark, ctx):
    """Eq. (3)'s hidden-path term vs Eq. (1), scored against the engine.

    The hidden term charges inter-stage communication once per 1F1B
    round instead of once per iteration.  Its effect is a *bias*
    correction: without it the model can only underestimate.  The
    assertion therefore checks signed bias, and on the deep-pipeline
    configurations where the term matters most it must close the gap.
    """

    def run():
        ranked = ctx.pipette(None, worker_dedication=False).search(512).ranked
        est_with, est_without, actual, deep = [], [], [], []
        for entry in ranked:
            config = entry.config
            run_ = ctx.measure(config)
            if run_.oom:
                continue
            mapping = sequential_mapping(
                WorkerGrid(config.pp, config.tp, config.dp), ctx.cluster)
            base = dict(hidden_critical_path=True, per_link_bandwidth=True,
                        collective_efficiency=0.88, dp_exposure_aware=True)
            est_with.append(latency_with_options(
                ctx.model, config, mapping, ctx.network.bandwidth,
                ctx.profile, LatencyModelOptions(**base)))
            est_without.append(latency_with_options(
                ctx.model, config, mapping, ctx.network.bandwidth,
                ctx.profile,
                LatencyModelOptions(**{**base,
                                       "hidden_critical_path": False})))
            actual.append(run_.time_per_iter_s)
            deep.append(config.pp >= 8 and config.n_microbatches >= 2 * config.pp)
            if len(actual) >= 12:
                break
        return est_with, est_without, actual, deep

    est_with, est_without, actual, deep = run_once(benchmark, run)
    bias_with = sum((e - a) / a for e, a in zip(est_with, actual)) / len(actual)
    bias_without = sum((e - a) / a
                       for e, a in zip(est_without, actual)) / len(actual)
    print(f"\nhidden-path ablation over {len(actual)} runnable configs: "
          f"signed bias with={bias_with * 100:+.2f}%  "
          f"without={bias_without * 100:+.2f}%")
    # Dropping the term can only lower estimates: strictly more
    # negative bias, i.e. systematic underestimation.
    assert bias_without < bias_with
    assert all(w >= wo for w, wo in zip(est_with, est_without))


def test_ablation_profiled_vs_nominal_bandwidth(benchmark, ctx):
    def run():
        sample = [r.config for r in
                  ctx.pipette(None, worker_dedication=False)
                  .search(512).ranked[:18]]
        est_prof, est_nom, actual = [], [], []
        nominal = ctx.fabric.nominal_bandwidth()
        for config in sample:
            run_ = ctx.measure(config)
            if run_.oom:
                continue
            mapping = sequential_mapping(
                WorkerGrid(config.pp, config.tp, config.dp), ctx.cluster)
            opts = LatencyModelOptions(collective_efficiency=0.88,
                                       dp_exposure_aware=True)
            est_prof.append(latency_with_options(
                ctx.model, config, mapping, ctx.network.bandwidth,
                ctx.profile, opts))
            est_nom.append(latency_with_options(
                ctx.model, config, mapping, nominal, ctx.profile, opts))
            actual.append(run_.time_per_iter_s)
        return est_prof, est_nom, actual

    est_prof, est_nom, actual = run_once(benchmark, run)
    prof_mape = mape(est_prof, actual)
    nom_mape = mape(est_nom, actual)
    print(f"\nbandwidth ablation over {len(actual)} configs: "
          f"MAPE profiled={prof_mape:.2f}%  nominal={nom_mape:.2f}%")
    assert prof_mape < nom_mape


def test_ablation_soft_margin(benchmark, ctx, high_estimator):
    """Margin sweep: OOM rate and quality of the top recommendation."""

    def sweep():
        rows = []
        for margin in (0.85, 0.90, 0.95, 1.0):
            high_estimator.soft_margin = margin
            try:
                result = ctx.pipette(high_estimator,
                                     worker_dedication=False).search(512)
            finally:
                high_estimator.soft_margin = 0.95
            top = result.ranked[:10]
            ooms = sum(1 for r in top if not ctx.is_runnable(r.config))
            best_time = None
            for r in result.ranked:
                run_ = ctx.measure(r.config)
                if not run_.oom:
                    best_time = run_.time_per_iter_s
                    break
            rows.append({"margin": margin, "top10_oom": ooms,
                         "best_runnable_s": best_time,
                         "feasible": len(result.ranked)})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n" + format_table(rows, title="soft-margin ablation (high-end)"))
    by_margin = {r["margin"]: r for r in rows}
    # Tighter margins admit fewer configurations and surface fewer OOMs.
    assert by_margin[0.85]["feasible"] <= by_margin[1.0]["feasible"]
    assert by_margin[0.85]["top10_oom"] <= by_margin[1.0]["top10_oom"]

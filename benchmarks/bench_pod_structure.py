"""Extension bench: worker dedication on a pod-structured fabric.

Oversubscribed fat-trees give the annealer *systematic* headroom: the
naive rank-order placement strides pipelines across pods, while
dedication pulls each chain and the critical data-parallel group
inside one pod.  The gain should grow with the oversubscription
factor.
"""

from conftest import BENCH_SEED, run_once

from repro.cluster import Fabric, PoddedHeterogeneityModel
from repro.core import SAOptions, anneal_mapping
from repro.core.latency_model import pipette_latency
from repro.cluster import NetworkProfiler
from repro.experiments import format_table
from repro.experiments.common import cluster_by_name
from repro.model import get_model
from repro.parallel import ParallelConfig, WorkerGrid, sequential_mapping
from repro.profiling import profile_compute
from repro.sim import simulate_iteration


def test_pod_structure_dedication(benchmark):
    def sweep():
        cluster = cluster_by_name("mid-range")
        model = get_model("gpt-3.1b")
        profile = profile_compute(model, cluster, seed=BENCH_SEED)
        config = ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4,
                                global_batch=256)
        grid = WorkerGrid(config.pp, config.tp, config.dp)
        rows = []
        for oversub in (1.0, 2.0, 4.0):
            het = PoddedHeterogeneityModel(nodes_per_pod=4,
                                           oversubscription=oversub)
            fabric = Fabric(cluster, heterogeneity=het, seed=BENCH_SEED)
            network = NetworkProfiler().profile(fabric, seed=BENCH_SEED)
            naive = sequential_mapping(grid, cluster)
            result = anneal_mapping(
                naive,
                lambda m: pipette_latency(model, config, m,
                                          network.bandwidth, profile),
                SAOptions(max_iterations=4000, seed=BENCH_SEED),
            )
            truth = fabric.bandwidth()
            t_naive = simulate_iteration(model, config, naive, truth,
                                         seed=BENCH_SEED).time_s
            t_tuned = simulate_iteration(model, config, result.mapping,
                                         truth, seed=BENCH_SEED).time_s
            rows.append({
                "oversubscription": oversub,
                "naive_s": t_naive,
                "dedicated_s": t_tuned,
                "gain_%": (t_naive / t_tuned - 1) * 100,
            })
        return rows

    rows = run_once(benchmark, sweep)
    print("\n" + format_table(
        rows, title="pod-structure ablation (mid-range, pp4-tp8-dp4-mb4)"))
    # Dedication never hurts, and structure amplifies its value.
    assert all(r["gain_%"] > -1.0 for r in rows)
    assert rows[-1]["gain_%"] > rows[0]["gain_%"]
    assert rows[-1]["gain_%"] > 3.0
"""Template-hit failover: precomputed elasticity vs the cold search.

The claim of :mod:`repro.core.templates`: a warmed
:class:`~repro.core.templates.TemplateLibrary` turns single-node
failover into a lookup + slot-assignment polish, because the expensive
Algorithm-1 work (enumeration, memory filtering, candidate scoring,
SA refinement) was paid *before* the failure, per surviving node
count.  On both Table-1 cluster shapes (16 nodes x 8 GPUs):

* re-planning a node failure with a library hit answers >= 10x faster
  than the cold search on the survivors (``report.search_speedup``);
* the template-sourced plan's estimated latency is equal or better
  than the cold search's — template generation runs the *same*
  enumeration, scoring, and per-rank annealing seeds as the cold
  search, so the stored best matches the cold best bit-for-bit and
  the warm polish can only improve on it;
* the recovery is attributed end to end: ``warm_source="template"``
  on the report.

The failed node is the *last* one so the survivors are exactly the
first ``n-1`` nodes — the same prefix restriction template generation
scored against — making the equal-or-better bound exact rather than
approximate.
"""

import pytest
from conftest import run_once

from repro.cluster import NetworkProfiler, make_fabric
from repro.cluster.presets import high_end_cluster, mid_range_cluster
from repro.core import PipetteOptions, SAOptions
from repro.model import get_model
from repro.service import ClusterEvent, PlanningService

#: One concrete fabric draw, like the other macro-benchmarks.
SEED = 2

#: Table-1 environment: 16 nodes x 8 GPUs per cluster preset.
N_NODES = 16
GLOBAL_BATCH = 512
PRESETS = {"mid-range": mid_range_cluster, "high-end": high_end_cluster}
OPTIONS = PipetteOptions(sa=SAOptions(max_iterations=1000), sa_top_k=4,
                         seed=SEED)


def _world(preset):
    cluster = PRESETS[preset](n_nodes=N_NODES)
    fabric = make_fabric(cluster, seed=SEED)
    network = NetworkProfiler().profile(fabric, seed=SEED)
    model = get_model("gpt-1.1b")
    return cluster, network.bandwidth, model


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_template_failover_speedup(benchmark, preset):
    """A library hit recovers >= 10x faster, at equal-or-better latency."""
    cluster, bandwidth, model = _world(preset)

    def collect():
        service = PlanningService(cluster, bandwidth, profile_seed=SEED)
        # Warm the library for the pre- and post-failure node counts —
        # the work a production deployment runs off the request path
        # (TemplateWarmer) long before any node fails.
        library = service.warm_templates(
            model, GLOBAL_BATCH, min_nodes=N_NODES - 1, max_nodes=N_NODES,
            options=OPTIONS)
        request = service.request(model, GLOBAL_BATCH, options=OPTIONS)
        report = service.replan(
            request, ClusterEvent.node_failure(N_NODES - 1), run_cold=True)
        return library, report, service.stats

    library, report, stats = run_once(benchmark, collect)
    print(f"\n[{preset}] library: {library.size} templates over nodes "
          f"{library.min_nodes}..{library.max_nodes}")
    print(f"previous:  {report.previous.config.describe():<24} "
          f"{report.previous.estimated_latency_s:7.3f} s/iter "
          f"on {N_NODES} nodes")
    print(f"template:  {report.warm.config.describe():<24} "
          f"{report.warm.estimated_latency_s:7.3f} s/iter "
          f"in {report.warm_search_s:6.3f} s "
          f"(source {report.warm_source})")
    print(f"cold:      {report.cold.config.describe():<24} "
          f"{report.cold.estimated_latency_s:7.3f} s/iter "
          f"in {report.cold_search_s:6.3f} s")
    print(f"latency gap: {report.latency_gap * 100:+.2f}%   "
          f"search speedup: {report.search_speedup:.1f}x")
    print(f"template lookups: {stats['template_lookups']}")

    assert report.cluster.n_nodes == N_NODES - 1
    assert report.warm_source == "template"
    assert stats["template_lookups"]["hit"] >= 1

    # The recovery-speed claim: template-hit failover skips the whole
    # re-rank search, leaving only instantiate + polish.
    assert report.search_speedup >= 10

    # The quality claim: generation ranks with the cold search's own
    # enumeration, scoring, and annealing seeds, and the polish keeps
    # best-so-far — so a template hit never costs plan quality.
    assert report.warm.estimated_latency_s <= report.cold.estimated_latency_s

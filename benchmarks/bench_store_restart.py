"""Durable plan store: a restarted service keeps its cache.

The claim of :mod:`repro.service.store`: persistence makes Algorithm-1
searches a *campaign-lifetime* investment, not a process-lifetime one.

* a planning service built over a durable store, after a simulated
  process restart (new service object, new cache, same store path),
  answers a previously planned request as a cache ``"hit"``;
* the rehydrated plan is byte-identical to the one the first process
  searched (same serialized payload: best config, mapping, latency);
* the restart hit is >= 10x faster than the cold search was —
  the same bar the in-memory cache meets within one process.
"""

import json
import time

from conftest import run_once

from repro.cluster import NetworkProfiler, make_fabric
from repro.cluster.presets import mid_range_cluster
from repro.core import PipetteOptions, SAOptions
from repro.model import get_model
from repro.service import (
    DurablePlanCache,
    HashRing,
    PlanningService,
    PlanStore,
    shard_segment_path,
)

#: One concrete fabric draw, like the other macro-benchmarks.
SEED = 2

N_NODES = 4
GLOBAL_BATCH = 64
OPTIONS = PipetteOptions(sa=SAOptions(max_iterations=1200), sa_top_k=4,
                         seed=SEED)


def _world():
    cluster = mid_range_cluster(n_nodes=N_NODES)
    fabric = make_fabric(cluster, seed=SEED)
    network = NetworkProfiler().profile(fabric, seed=SEED)
    model = get_model("gpt-1.1b")
    return cluster, network.bandwidth, model


def test_restart_answers_from_store(benchmark, tmp_path):
    """Plan, kill the service, rehydrate: the answer is a cached hit."""
    cluster, bandwidth, model = _world()
    store_path = tmp_path / "plans.jsonl"

    def collect():
        # First life: pay the search, persist the plan.
        first = PlanningService(cluster, bandwidth,
                                cache=DurablePlanCache(store_path),
                                profile_seed=SEED)
        cold = first.plan(first.request(model, GLOBAL_BATCH,
                                        options=OPTIONS))
        del first  # the process "dies"; only the store remains

        # Second life: a fresh service over the same store.
        reborn = PlanningService(cluster, bandwidth,
                                 cache=DurablePlanCache(store_path),
                                 profile_seed=SEED)
        hot = reborn.plan(reborn.request(model, GLOBAL_BATCH,
                                         options=OPTIONS))
        return cold, hot, reborn.cache.rehydrated

    cold, hot, rehydrated = run_once(benchmark, collect)
    print(f"\ncold search:   {cold.elapsed_s * 1e3:10.1f} ms  "
          f"[{cold.status}]")
    print(f"restart hit:   {hot.elapsed_s * 1e3:10.3f} ms  "
          f"[{hot.status}], {rehydrated} plans rehydrated")
    print(f"speedup:       {cold.elapsed_s / hot.elapsed_s:10.0f}x")
    assert cold.status == "miss" and hot.status == "hit"
    assert rehydrated == 1

    # Byte-identical plan: the serialized payloads match exactly.
    cold_payload = json.dumps(cold.result.to_payload(), sort_keys=True)
    hot_payload = json.dumps(hot.result.to_payload(), sort_keys=True)
    assert hot_payload == cold_payload
    assert hot.best.config == cold.best.config
    assert hot.best.mapping == cold.best.mapping
    assert hot.best.estimated_latency_s == cold.best.estimated_latency_s

    assert cold.elapsed_s >= 10 * hot.elapsed_s


def test_store_compaction_bounds_log(benchmark, tmp_path):
    """Churning the cache does not grow the log past the live set."""
    cluster, bandwidth, model = _world()
    store_path = tmp_path / "plans.jsonl"
    batches = [16, 32, 64, 128]

    def collect():
        service = PlanningService(cluster, bandwidth,
                                  cache=DurablePlanCache(store_path,
                                                         max_entries=2),
                                  profile_seed=SEED)
        fast = PipetteOptions(use_worker_dedication=False, seed=SEED)
        for batch in batches:
            service.plan(service.request(model, batch, options=fast))
        churn_lines = len(store_path.read_text().splitlines())
        # Restart compacts: tombstones and overwritten puts collapse.
        reborn = DurablePlanCache(store_path, max_entries=2)
        compact_lines = len(store_path.read_text().splitlines())
        return churn_lines, compact_lines, reborn.rehydrated

    churn_lines, compact_lines, rehydrated = run_once(benchmark, collect)
    print(f"\nlog after churn:      {churn_lines} lines "
          f"({len(batches)} searches, capacity 2)")
    print(f"log after rehydrate:  {compact_lines} lines "
          f"({rehydrated} live plans)")
    assert rehydrated == 2  # LRU bound survived persistence
    assert compact_lines == 1 + rehydrated  # header + one put per plan
    assert churn_lines > compact_lines


def test_sharded_segments_restart_cost(benchmark, tmp_path):
    """Splitting one cluster's log into 4 fleet shard segments does
    not make restart rehydration slower per record.

    The fleet writes ``<cluster>.shard-<k>.jsonl`` instead of one
    ``<cluster>.jsonl``; a restarted worker only replays its own
    segment.  Per-record, 4 segments must cost no more than the single
    log (2x slack for small-file constants), or sharding would tax
    every fleet restart.
    """
    cluster, bandwidth, model = _world()
    n_shards, n_records = 4, 256

    # One real plan, reused as the payload of every synthetic record:
    # rehydration cost is dominated by parse + result decode, so the
    # records must be real-sized.
    service = PlanningService(cluster, bandwidth, profile_seed=SEED)
    fast = PipetteOptions(use_worker_dedication=False, seed=SEED)
    result = service.plan(service.request(model, GLOBAL_BATCH,
                                          options=fast)).result
    keys = [f"plan:synthetic-{index}" for index in range(n_records)]
    ring = HashRing(range(n_shards))

    def collect():
        # Single-log layout (standalone server, shard_index=None).
        single_path = shard_segment_path(str(tmp_path / "single"),
                                         "bench", None)
        (tmp_path / "single").mkdir(exist_ok=True)
        single = DurablePlanCache(single_path, max_entries=n_records)
        for key in keys:
            single.put(key, "fp", result)
        started = time.perf_counter()
        single_reborn = DurablePlanCache(single_path,
                                         max_entries=n_records)
        single_s = time.perf_counter() - started

        # Sharded layout: the same records, placed by the fleet ring.
        (tmp_path / "sharded").mkdir(exist_ok=True)
        segment_paths = [shard_segment_path(str(tmp_path / "sharded"),
                                            "bench", shard)
                         for shard in range(n_shards)]
        segments = [DurablePlanCache(path, max_entries=n_records)
                    for path in segment_paths]
        for key in keys:
            segments[ring.lookup(key)].put(key, "fp", result)
        started = time.perf_counter()
        reborn = [DurablePlanCache(path, max_entries=n_records)
                  for path in segment_paths]
        sharded_s = time.perf_counter() - started

        return (single_s, single_reborn.rehydrated, sharded_s,
                [segment.rehydrated for segment in reborn])

    single_s, single_n, sharded_s, per_shard = run_once(benchmark,
                                                        collect)
    print(f"\n{n_records} records, one real {model.name} plan each")
    print(f"single log:    {single_s * 1e3:8.1f} ms  "
          f"({single_s / n_records * 1e6:6.1f} us/record, "
          f"{single_n} rehydrated)")
    print(f"{n_shards} segments:    {sharded_s * 1e3:8.1f} ms  "
          f"({sharded_s / n_records * 1e6:6.1f} us/record, "
          f"shards {per_shard})")
    assert single_n == n_records
    assert sum(per_shard) == n_records
    assert all(count > 0 for count in per_shard)  # ring actually spread
    # Per-record parity: 2x slack plus a constant for 4x file opens.
    assert sharded_s <= 2.0 * single_s + 0.05

"""Shared benchmark fixtures: trained estimators, reused per session.

The memory-estimator MLP takes tens of seconds to train; the paper
trains it "for each cluster only once", so the session does too.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import cluster_by_name, fit_memory_estimator

#: Seed used by all macro-benchmarks (one concrete fabric draw, like
#: the paper's one physical cluster).
BENCH_SEED = 2

#: Estimator training budget for the benchmark session.
ESTIMATOR_ITERATIONS = 16_000


@pytest.fixture(scope="session")
def mid_estimator():
    """Memory estimator trained on the mid-range cluster's profiles."""
    return fit_memory_estimator(cluster_by_name("mid-range"),
                                seed=BENCH_SEED,
                                iterations=ESTIMATOR_ITERATIONS)


@pytest.fixture(scope="session")
def high_estimator():
    """Memory estimator trained on the high-end cluster's profiles."""
    return fit_memory_estimator(cluster_by_name("high-end"),
                                seed=BENCH_SEED,
                                iterations=ESTIMATOR_ITERATIONS)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a macro-experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

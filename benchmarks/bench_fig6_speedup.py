"""Fig. 6: end-to-end speedup of Pipette over MLM / Varuna / AMP."""

import pytest
from conftest import BENCH_SEED, run_once

from repro.experiments import format_table, run_fig6


@pytest.mark.parametrize("cluster", ["mid-range", "high-end"])
def test_fig6_training_speedup(benchmark, cluster, mid_estimator,
                               high_estimator):
    estimator = mid_estimator if cluster == "mid-range" else high_estimator
    result = run_once(benchmark, run_fig6, cluster_name=cluster,
                      seed=BENCH_SEED, memory_estimator=estimator)
    rows = [{
        "method": m.method,
        "config": m.config_label,
        "time_per_iter_s": m.time_per_iter_s,
        "speedup_vs_MLM": m.speedup_vs_mlm,
    } for m in result.methods]
    print("\n" + format_table(
        rows, title=f"Fig. 6 {cluster} ({result.model}, global batch "
                    f"{result.global_batch})"))
    print(f"PPT-LF/AMP {result.speedup('PPT-LF', 'AMP'):.2f}x "
          "(paper 1.12 mid / 1.46 high); "
          f"PPT-LF/VR {result.speedup('PPT-LF', 'VR'):.2f}x; "
          f"PPT-LF/MLM {result.speedup('PPT-LF', 'MLM'):.2f}x "
          "(paper 1.07 / 1.26)")

    lf = result.by_method("PPT-LF").time_per_iter_s
    # Paper shape: VR slowest; PPT-LF fastest (3% tolerance — the
    # estimator may pick a config within noise of the true optimum,
    # exactly the regime Fig. 5b's top-10 spread shows).
    assert result.by_method("VR").time_per_iter_s \
        > result.by_method("AMP").time_per_iter_s
    for other in ("MLM", "VR", "AMP", "PPT-L"):
        assert lf <= result.by_method(other).time_per_iter_s * 1.03
    assert result.speedup("PPT-LF", "VR") > 1.3
    assert result.speedup("PPT-LF", "AMP") >= 1.0

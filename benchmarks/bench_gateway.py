"""Gateway throughput: concurrent clients vs serial submission.

Two claims, one per test:

* **Concurrency wins wall-clock without changing answers.**  Four
  clients ask four *distinct* planning questions (one per cluster of a
  four-cluster fleet) at the same moment.  Submitted serially to bare
  synchronous services — the only option before the gateway — the
  searches run back to back.  Submitted concurrently through the
  gateway, the per-cluster lanes drain in parallel threads and every
  search fans its candidate work over the shared process
  :class:`~repro.service.executor.CandidateExecutor`, so the fleet
  answers in a fraction of the serial wall-clock (>= 2x on a >= 4-core
  planner host) while every plan stays byte-identical to its serial
  twin (``to_payload``, net of stopwatch fields — the determinism
  contract of the seeded search).
* **Coalescing makes identical storms cost one search.**  Eight
  clients asking the *same* question concurrently produce exactly one
  miss and seven coalesced answers sharing the one result object.
"""

import asyncio
import json
import time

import pytest
from conftest import run_once

from repro.cluster import NetworkProfiler, make_fabric
from repro.cluster.presets import mid_range_cluster
from repro.core import PipetteOptions, SAOptions
from repro.model import get_model
from repro.service import (
    CandidateExecutor,
    ClusterRegistry,
    PlanGateway,
    PlanningService,
    available_workers,
)

SEED = 2
N_CLUSTERS = 4
N_NODES = 2
GLOBAL_BATCH = 64
OPTIONS = PipetteOptions(sa=SAOptions(max_iterations=1200), sa_top_k=4,
                         seed=SEED)

#: ``to_payload`` fields that time the search instead of describing
#: the plan; equal plans time differently run to run.
_STOPWATCH_FIELDS = ("memory_check_s", "annealing_s", "total_s")


def _plan_bytes(result) -> str:
    payload = result.to_payload()
    for field in _STOPWATCH_FIELDS:
        payload.pop(field, None)
    return json.dumps(payload, sort_keys=True)


def _fleet():
    """N distinct small clusters (one fabric draw each) + their model."""
    world = []
    for index in range(N_CLUSTERS):
        cluster = mid_range_cluster(n_nodes=N_NODES)
        seed = SEED + index
        network = NetworkProfiler().profile(make_fabric(cluster, seed=seed),
                                            seed=seed)
        world.append((f"mid-{index}", cluster, network.bandwidth, seed))
    return world, get_model("gpt-1.1b")


def test_concurrent_distinct_requests_vs_serial(benchmark):
    """4 concurrent distinct requests: >= 2x wall-clock, same bytes."""
    world, model = _fleet()

    def collect():
        # Serial submission: one bare synchronous service per cluster,
        # planned one after another — the pre-gateway workflow.
        serial_payloads = {}
        t0 = time.perf_counter()
        for name, cluster, bandwidth, seed in world:
            service = PlanningService(cluster, bandwidth, profile_seed=seed)
            response = service.plan(service.request(model, GLOBAL_BATCH,
                                                    options=OPTIONS))
            serial_payloads[name] = _plan_bytes(response.result)
        serial_s = time.perf_counter() - t0

        # Concurrent submission: fresh caches, same questions, one
        # gateway over per-cluster lanes + the shared process pool.
        with CandidateExecutor(kind="process") as executor:
            registry = ClusterRegistry(executor=executor)
            for name, cluster, bandwidth, seed in world:
                registry.add_cluster(name, cluster, bandwidth,
                                     profile_seed=seed)
            requests = [
                (name, registry.service(name).request(model, GLOBAL_BATCH,
                                                      options=OPTIONS))
                for name, *_ in world]

            async def storm():
                async with PlanGateway(registry,
                                       drain_workers=N_CLUSTERS) as gateway:
                    t0 = time.perf_counter()
                    answers = await asyncio.gather(
                        *(gateway.plan(request, cluster=name)
                          for name, request in requests))
                    return answers, time.perf_counter() - t0

            answers, concurrent_s = asyncio.run(storm())
            workers = executor.n_workers
        concurrent_payloads = {a.cluster_name: _plan_bytes(a.result)
                               for a in answers}
        return serial_s, serial_payloads, concurrent_s, \
            concurrent_payloads, workers

    serial_s, serial_payloads, concurrent_s, concurrent_payloads, workers = \
        run_once(benchmark, collect)
    speedup = serial_s / concurrent_s
    print(f"\nserial submission:     {serial_s:7.2f} s "
          f"({N_CLUSTERS} distinct requests, back to back)")
    print(f"concurrent via gateway: {concurrent_s:6.2f} s "
          f"({workers} process workers, {N_CLUSTERS} lanes)")
    print(f"speedup:               {speedup:7.2f}x")

    # Identity holds on every host: concurrency may move wall-clock,
    # never answers.
    assert set(concurrent_payloads) == set(serial_payloads)
    for name, expected in serial_payloads.items():
        assert concurrent_payloads[name] == expected, \
            f"{name}: concurrent plan diverged from serial submission"

    if workers < 2:
        pytest.skip("single usable CPU: concurrent drains cannot beat "
                    "serial wall-clock here")
    # The full >= 2x claim needs enough cores for the four searches'
    # fanned candidate work to actually overlap.
    target = 2.0 if workers >= 4 else 1.2
    assert speedup >= target, \
        f"expected >= {target}x on {workers} workers, got {speedup:.2f}x"


def test_identical_storm_coalesces_to_one_search(benchmark):
    """8 identical concurrent clients: one miss, seven shared answers."""
    world, model = _fleet()
    name, cluster, bandwidth, seed = world[0]

    def collect():
        registry = ClusterRegistry()
        registry.add_cluster(name, cluster, bandwidth, profile_seed=seed)
        service = registry.service(name)
        request = service.request(model, GLOBAL_BATCH, options=OPTIONS)

        async def storm():
            async with PlanGateway(registry) as gateway:
                t0 = time.perf_counter()
                answers = await asyncio.gather(
                    *(gateway.plan(request) for _ in range(8)))
                return answers, time.perf_counter() - t0, gateway.stats

        answers, elapsed_s, stats = asyncio.run(storm())
        reference = PlanningService(cluster, bandwidth, profile_seed=seed)
        baseline = reference.plan(reference.request(model, GLOBAL_BATCH,
                                                    options=OPTIONS))
        return answers, elapsed_s, stats, service.stats, \
            _plan_bytes(baseline.result)

    answers, elapsed_s, stats, service_stats, baseline = \
        run_once(benchmark, collect)
    statuses = sorted(a.status for a in answers)
    print(f"\n8 identical clients answered in {elapsed_s:.2f} s: "
          f"{statuses.count('miss')} miss, "
          f"{statuses.count('coalesced')} coalesced")
    print(f"gateway stats: {stats}")
    assert statuses == ["coalesced"] * 7 + ["miss"]
    assert stats.submitted == 1 and stats.coalesced == 7
    assert service_stats["cache_misses"] == 1  # exactly one search ran
    first = answers[0].result
    assert all(a.result is first for a in answers)
    assert _plan_bytes(first) == baseline

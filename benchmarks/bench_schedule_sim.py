"""Generic schedule engine vs the pre-refactor 1F1B loop.

Two claims, matching the schedule-instruction layer's contract
(:mod:`repro.sim.schedule`):

* the generic engine — which executes *any* registered schedule from
  its instruction stream — returns **bit-identical** iteration times
  to the pre-refactor engine, whose 1F1B/GPipe knowledge was
  hard-coded (a verbatim copy of that loop is embedded below);
* generality costs little: the generic engine stays within 1.5x of
  the legacy loop's throughput (simulated iterations per second).
"""

import time
from dataclasses import dataclass

import numpy as np
from conftest import BENCH_SEED

from repro.experiments.common import ExperimentContext
from repro.model.memory import stage_layer_count
from repro.parallel import ParallelConfig, WorkerGrid, sequential_mapping
from repro.parallel.messages import pp_message_bytes, tp_comm_time
from repro.profiling.compute import ComputeTimeModel
from repro.sim.engine import (
    DEFAULT_DP_EFFICIENCY,
    _dp_allreduce_time,
    simulate_iteration,
)
from repro.units import GB  # noqa: F401  (kept for parity with engine imports)
from repro.utils.rng import spawn_rng

# The 128-GPU Megatron shape used by the other engine benchmarks.
CONFIG = ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4, global_batch=512)


# --------------------------------------------------------------------------
# Verbatim pre-refactor implementation (hard-coded 1F1B), kept as the
# bit-identity and throughput baseline.  Only the op container differs
# cosmetically (a local dataclass instead of the removed PipelineOp).
# --------------------------------------------------------------------------

_FORWARD, _BACKWARD = "F", "B"


@dataclass(frozen=True)
class _Op:
    kind: str
    microbatch: int


def _legacy_one_f_one_b(pp, n_mb):
    stages = []
    for s in range(pp):
        warmup = min(pp - s - 1, n_mb)
        ops = [_Op(_FORWARD, m) for m in range(warmup)]
        for k in range(n_mb - warmup):
            ops.append(_Op(_FORWARD, warmup + k))
            ops.append(_Op(_BACKWARD, k))
        ops += [_Op(_BACKWARD, k) for k in range(n_mb - warmup, n_mb)]
        stages.append(ops)
    return stages


def _legacy_chain_link_times(model, config, mapping, bandwidth, z):
    msg = pp_message_bytes(model, config.micro_batch)
    fwd, bwd = [], []
    for x in range(config.pp - 1):
        worst_f = worst_b = 0.0
        for y in range(config.tp):
            g1 = mapping.gpu(x, y, z)
            g2 = mapping.gpu(x + 1, y, z)
            worst_f = max(worst_f, bandwidth.transfer_time(msg, g1, g2))
            worst_b = max(worst_b, bandwidth.transfer_time(msg, g2, g1))
        fwd.append(worst_f)
        bwd.append(worst_b)
    return fwd, bwd


def _legacy_stage_tp_time(model, config, mapping, bandwidth, x, z):
    if config.tp == 1:
        return 0.0
    group = mapping.tp_group(x, z)
    bw = bandwidth.min_over_group(group)
    alpha = bandwidth.max_alpha_over_group(group)
    layers = stage_layer_count(model.n_layers, config.pp, x)
    return tp_comm_time(model, layers, config.micro_batch, config.tp, bw,
                        alpha)


def _legacy_simulate(model, config, mapping, bandwidth, compute=None,
                     jitter_sigma=0.01, dp_efficiency=DEFAULT_DP_EFFICIENCY,
                     seed=0):
    from repro.parallel.messages import dp_message_bytes

    if compute is None:
        compute = ComputeTimeModel(gpu=mapping.cluster.node.gpu)
    rng = spawn_rng(seed, f"engine-{config.describe()}")
    run_skew = float(rng.lognormal(0.0, 0.01)) if jitter_sigma > 0 else 1.0
    pp, n_mb = config.pp, config.n_microbatches
    ops_by_stage = _legacy_one_f_one_b(pp, n_mb)

    stage_c = [compute.stage_compute_time(model, pp, s, config.tp,
                                          config.micro_batch)
               for s in range(pp)]

    compute_end = 0.0
    last_backward_end = np.zeros((config.dp, pp))

    for z in range(config.dp):
        hops_fwd, hops_bwd = _legacy_chain_link_times(model, config, mapping,
                                                      bandwidth, z)
        tp_t = [_legacy_stage_tp_time(model, config, mapping, bandwidth, x, z)
                for x in range(pp)]
        dur_f = [stage_c[x] / 3.0 + tp_t[x] / 2.0 for x in range(pp)]
        if config.recompute:
            dur_b = [stage_c[x] + tp_t[x] for x in range(pp)]
        else:
            dur_b = [2.0 * stage_c[x] / 3.0 + tp_t[x] / 2.0
                     for x in range(pp)]

        fwd_end = {}
        bwd_end = {}
        gpu_free = [0.0] * pp
        pos = [0] * pp
        remaining = sum(len(ops) for ops in ops_by_stage)

        while remaining > 0:
            progressed = False
            for s in range(pp):
                ops = ops_by_stage[s]
                while pos[s] < len(ops):
                    op = ops[pos[s]]
                    if op.kind == _FORWARD:
                        if s > 0 and (s - 1, op.microbatch) not in fwd_end:
                            break
                        arrival = 0.0 if s == 0 else (
                            fwd_end[(s - 1, op.microbatch)] + hops_fwd[s - 1]
                        )
                        dur = dur_f[s]
                    else:
                        if s < pp - 1 \
                                and (s + 1, op.microbatch) not in bwd_end:
                            break
                        if (s, op.microbatch) not in fwd_end:
                            break
                        arrival = 0.0 if s == pp - 1 else (
                            bwd_end[(s + 1, op.microbatch)] + hops_bwd[s]
                        )
                        arrival = max(arrival, fwd_end[(s, op.microbatch)])
                        dur = dur_b[s]
                    start = max(gpu_free[s], arrival)
                    jitter = float(rng.lognormal(0.0, jitter_sigma)) \
                        if jitter_sigma > 0 else 1.0
                    end = start + dur * jitter * run_skew
                    gpu_free[s] = end
                    if op.kind == _FORWARD:
                        fwd_end[(s, op.microbatch)] = end
                    else:
                        bwd_end[(s, op.microbatch)] = end
                    pos[s] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                raise RuntimeError("legacy schedule deadlock")
        for s in range(pp):
            last_backward_end[z, s] = gpu_free[s]
            compute_end = max(compute_end, gpu_free[s])

    dp_end = 0.0
    for s in range(pp):
        dur = _dp_allreduce_time(model, config, mapping, bandwidth, s,
                                 dp_efficiency)
        if dur == 0.0:
            continue
        start = float(np.max(last_backward_end[:, s]))
        dp_end = max(dp_end, start + dur)

    params_per_gpu = max(
        dp_message_bytes(model, pp, config.tp, s) / 4.0 for s in range(pp)
    )
    optimizer = 3.0 * 18.0 * params_per_gpu / (compute.gpu.hbm_gb_s * 1e9)
    return max(compute_end, dp_end) + optimizer


# ------------------------------------------------------------------- tests


def _world():
    ctx = ExperimentContext.create("high-end", seed=BENCH_SEED)
    mapping = sequential_mapping(WorkerGrid(CONFIG.pp, CONFIG.tp, CONFIG.dp),
                                 ctx.cluster)
    return ctx, mapping


def test_generic_engine_is_bit_identical_to_legacy_1f1b():
    ctx, mapping = _world()
    bandwidth = ctx.fabric.bandwidth()
    for seed in (0, 3, 11):
        legacy = _legacy_simulate(ctx.model, CONFIG, mapping, bandwidth,
                                  seed=seed)
        generic = simulate_iteration(ctx.model, CONFIG, mapping, bandwidth,
                                     seed=seed).time_s
        assert generic == legacy  # bit-identical, not approximately


def test_generic_engine_within_1_5x_of_legacy_throughput():
    ctx, mapping = _world()
    bandwidth = ctx.fabric.bandwidth()
    rounds = 12

    # Warm both paths once (lazy imports, caches), then time.
    _legacy_simulate(ctx.model, CONFIG, mapping, bandwidth, seed=0)
    simulate_iteration(ctx.model, CONFIG, mapping, bandwidth, seed=0)

    t0 = time.perf_counter()
    for i in range(rounds):
        _legacy_simulate(ctx.model, CONFIG, mapping, bandwidth, seed=i)
    legacy_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for i in range(rounds):
        simulate_iteration(ctx.model, CONFIG, mapping, bandwidth, seed=i)
    generic_s = time.perf_counter() - t0

    slowdown = generic_s / legacy_s
    print(f"\n  legacy {rounds / legacy_s:6.1f} iter/s   "
          f"generic {rounds / generic_s:6.1f} iter/s   "
          f"slowdown {slowdown:.2f}x")
    assert slowdown <= 1.5, (
        f"generic engine is {slowdown:.2f}x slower than the legacy "
        f"1F1B loop (budget: 1.5x)"
    )

"""Fig. 8: cluster/model size scalability of Pipette over AMP."""

import pytest
from conftest import BENCH_SEED, run_once

from repro.experiments import format_table, run_fig8


@pytest.mark.parametrize("cluster", ["mid-range", "high-end"])
def test_fig8_weak_scaling(benchmark, cluster, mid_estimator, high_estimator):
    estimator = mid_estimator if cluster == "mid-range" else high_estimator
    points = run_once(benchmark, run_fig8, cluster_name=cluster,
                      seed=BENCH_SEED, memory_estimator=estimator)
    rows = [{
        "gpus": p.n_gpus,
        "model": p.model,
        "AMP_s": p.amp_time_s,
        "Pipette_s": p.pipette_time_s,
        "speedup": p.speedup,
    } for p in points]
    print("\n" + format_table(rows, title=f"Fig. 8 {cluster} weak scaling"))
    # Paper shape: speedup everywhere (>= 1.02x small clusters) and
    # largest at full scale where heterogeneity bites hardest.
    speedups = {p.n_gpus: p.speedup for p in points}
    assert all(s >= 0.99 for s in speedups.values())
    assert speedups[128] >= max(speedups[32], speedups[64]) - 0.02
    assert speedups[128] > 1.05

"""Annealer hot path: vectorized kernel vs reference latency model.

Two claims, matching the kernel's contract
(:mod:`repro.core.latency_kernel`):

* on the Table 1 cluster shapes (16 nodes x 8 GPUs = 128 GPUs) the
  kernel evaluates the SA objective >= 10x faster than the reference
  ``pipette_latency`` path, measured as objective evaluations/sec over
  identical random permutations;
* the speed costs nothing: every kernel evaluation is bit-identical to
  the reference, and a same-seed annealing run returns the identical
  best mapping with a value within 1e-9 relative (in fact equal).
"""

import time

import numpy as np
import pytest

from repro.cluster import Fabric
from repro.cluster.presets import high_end_cluster, mid_range_cluster
from repro.core.annealing import (
    SAOptions,
    anneal_mapping,
    anneal_mapping_reference,
    apply_move,
)
from repro.core.latency_kernel import pipette_kernel
from repro.core.latency_model import pipette_latency
from repro.model import get_model
from repro.parallel import ParallelConfig, WorkerGrid, random_block_mapping
from repro.profiling import profile_compute

#: One concrete fabric draw, like the other macro-benchmarks.
SEED = 2

#: 128-GPU parallelizations of the Table 1 clusters.  The first is the
#: canonical Megatron shape (full-node TP groups) the >= 10x bound is
#: asserted on; the others are reported for coverage of skinnier TP.
SHAPES = [
    ("high-end", ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4,
                                global_batch=512), True),
    ("mid-range", ParallelConfig(pp=16, tp=8, dp=1, micro_batch=4,
                                 global_batch=512), True),
    ("mid-range", ParallelConfig(pp=8, tp=2, dp=8, micro_batch=4,
                                 global_batch=512), False),
]

_CLUSTERS = {"high-end": high_end_cluster, "mid-range": mid_range_cluster}


def _world(cluster_name):
    cluster = _CLUSTERS[cluster_name](16)
    bandwidth = Fabric(cluster, seed=SEED).bandwidth()
    model = get_model("gpt-8.1b")
    profile = profile_compute(model, cluster, seed=SEED)
    return cluster, model, bandwidth, profile


def _evals_per_sec(fn, items, min_time=0.3):
    """Best-of-3 throughput of ``fn`` mapped over ``items``."""
    best = 0.0
    for _ in range(3):
        done = 0
        t0 = time.perf_counter()
        while True:
            for item in items:
                fn(item)
            done += len(items)
            elapsed = time.perf_counter() - t0
            if elapsed >= min_time:
                break
        best = max(best, done / elapsed)
    return best


def test_kernel_vs_reference_throughput():
    """>= 10x objective evaluations/sec on the 128-GPU Table 1 shapes."""
    print()
    for cluster_name, config, assert_10x in SHAPES:
        cluster, model, bandwidth, profile = _world(cluster_name)
        kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
        grid = WorkerGrid(config.pp, config.tp, config.dp)
        mappings = [random_block_mapping(grid, cluster, seed=s)
                    for s in range(32)]
        perms = [m.block_to_slot for m in mappings]

        # Identity on every measured permutation (bitwise, which is
        # stronger than the 1e-9 acceptance bound).
        for mapping, perm in zip(mappings, perms):
            ref = pipette_latency(model, config, mapping, bandwidth, profile)
            assert kernel.evaluate_perm(perm) == ref

        ref_rate = _evals_per_sec(
            lambda m: pipette_latency(model, config, m, bandwidth, profile),
            mappings)
        kernel_rate = _evals_per_sec(kernel.evaluate_perm, perms)
        speedup = kernel_rate / ref_rate
        shape = f"pp={config.pp} tp={config.tp} dp={config.dp}"
        print(f"  {cluster_name:10s} {shape:20s} "
              f"reference {ref_rate:9.0f} eval/s   "
              f"kernel {kernel_rate:9.0f} eval/s   {speedup:5.1f}x")
        if assert_10x:
            assert speedup >= 10.0, (
                f"kernel speedup {speedup:.1f}x below the 10x bound on "
                f"{cluster_name} {shape}"
            )
        else:
            assert speedup >= 5.0


def test_same_seed_same_answer_on_table1_shape():
    """Old and new annealers agree exactly on a 128-GPU search."""
    cluster, model, bandwidth, profile = _world("high-end")
    config = ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4,
                            global_batch=512)
    initial = random_block_mapping(WorkerGrid(4, 8, 4), cluster, seed=1)
    kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
    options = SAOptions(max_iterations=400, seed=SEED)

    reference = anneal_mapping_reference(
        initial,
        lambda m: pipette_latency(model, config, m, bandwidth, profile),
        options)
    fast = anneal_mapping(initial, kernel, options)

    assert np.array_equal(fast.mapping.block_to_slot,
                          reference.mapping.block_to_slot)
    assert fast.value == pytest.approx(reference.value, rel=1e-9, abs=0.0)
    assert fast.value == reference.value  # in fact bit-identical
    assert fast.accepted == reference.accepted
    assert fast.history == reference.history


def test_annealer_wall_clock_speedup():
    """End-to-end SA (moves + bookkeeping + objective) also wins big."""
    cluster, model, bandwidth, profile = _world("high-end")
    config = ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4,
                            global_batch=512)
    initial = random_block_mapping(WorkerGrid(4, 8, 4), cluster, seed=1)
    kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
    options = SAOptions(max_iterations=600, seed=SEED)

    t0 = time.perf_counter()
    reference = anneal_mapping_reference(
        initial,
        lambda m: pipette_latency(model, config, m, bandwidth, profile),
        options)
    ref_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = anneal_mapping(initial, kernel, options)
    fast_s = time.perf_counter() - t0

    print(f"\n  600-iteration anneal: reference {600 / ref_s:7.0f} it/s   "
          f"kernel {600 / fast_s:7.0f} it/s   {ref_s / fast_s:5.1f}x")
    assert fast.value == reference.value
    assert fast.mapping == reference.mapping
    assert ref_s / fast_s >= 5.0


def _random_moves(rng, n, count):
    """Valid (kind, i, j) move specs over length-``n`` permutations."""
    moves = []
    for _ in range(count):
        kind = ("swap", "migrate", "reverse")[int(rng.integers(3))]
        if kind == "swap":
            i, j = (int(v) for v in rng.choice(n, size=2, replace=False))
        elif kind == "migrate":
            i, j = int(rng.integers(n)), int(rng.integers(n - 1))
        else:
            i = int(rng.integers(n - 1))
            j = int(rng.integers(i + 2, n + 1))
        moves.append((kind, i, j))
    return moves


def test_delta_and_batch_throughput_floor():
    """Incremental contract: >= 3x the full per-call re-score.

    The PR 5 kernel's unit of work was one ``evaluate_perm`` call per
    proposed move (a full re-score, dispatch included).  The new
    evaluation contract must beat that by at least 3x on the Table 1
    128-GPU shapes — enforced on ``evaluate_batch`` (64 permutations
    per dispatch, the annealer's batched-proposal shape), which
    amortizes the NumPy dispatch that dominates at these sizes.

    The per-proposal delta path (a bound ``IncrementalEvaluator``) is
    reported alongside, not asserted: range moves touch ~n/3 of the
    permutation, so at Table 1 scale (16-64 slots) the vectorized
    full re-score wins and ``anneal_mapping``'s ``delta_min_slots``
    gate correctly keeps the delta path off — it breaks even around
    128-256 slots and wins >2x by 512.  Exactness rides along either
    way: every measured delta equals the full re-score difference,
    bitwise.
    """
    print()
    batch_k = 64
    for cluster_name, config, assert_floor in SHAPES:
        cluster, model, bandwidth, profile = _world(cluster_name)
        kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
        grid = WorkerGrid(config.pp, config.tp, config.dp)
        rng = np.random.default_rng(SEED)
        base = np.asarray(
            random_block_mapping(grid, cluster, seed=0).block_to_slot,
            dtype=np.int64)
        n = len(base)
        moves = _random_moves(rng, n, 32)

        for move in moves[:16]:
            after = apply_move(base, move)
            full = kernel.evaluate_perm(after) - kernel.evaluate_perm(base)
            assert kernel.delta_for_move(base, move) == full

        full_rate = _evals_per_sec(kernel.evaluate_perm,
                                   [base + 0 for _ in range(8)])
        batch = np.stack([rng.permutation(n)
                          for _ in range(batch_k)]).astype(np.int64)
        batch_rate = batch_k * _evals_per_sec(kernel.evaluate_batch, [batch])
        # The annealer's actual delta path: one bound incremental
        # evaluator, proposals staged against it (apply_move cost
        # excluded, as the sequential loop pre-builds candidates into
        # a scratch buffer).
        inc = kernel.incremental()
        inc.bind(base)
        candidates = [apply_move(base, move) for move in moves]
        delta_rate = _evals_per_sec(inc.propose, candidates)

        batch_speedup = batch_rate / full_rate
        delta_speedup = delta_rate / full_rate
        shape = f"pp={config.pp} tp={config.tp} dp={config.dp}"
        print(f"  {cluster_name:10s} {shape:20s} "
              f"full {full_rate:9.0f} eval/s   "
              f"batch {batch_rate:9.0f} eval/s ({batch_speedup:5.1f}x)   "
              f"delta {delta_rate:9.0f} eval/s ({delta_speedup:5.1f}x)")
        if assert_floor:
            assert batch_speedup >= 3.0, (
                f"evaluate_batch speedup {batch_speedup:.1f}x below the 3x "
                f"floor on {cluster_name} {shape}"
            )


def test_delta_path_wins_at_scale():
    """The ``delta_min_slots`` gate points the right way.

    At 512 slots (128 mid-range nodes, pp=16 tp=2 dp=32) per-move
    delta bookkeeping is no longer dispatch-bound relative to the
    full re-score, and the bound incremental path must win clearly —
    this is the regime the sequential loop's gate turns it on for.
    """
    cluster = mid_range_cluster(128)
    bandwidth = Fabric(cluster, seed=SEED).bandwidth()
    model = get_model("gpt-8.1b")
    profile = profile_compute(model, cluster, seed=SEED)
    config = ParallelConfig(pp=16, tp=2, dp=32, micro_batch=4,
                            global_batch=512)
    kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
    grid = WorkerGrid(config.pp, config.tp, config.dp)
    base = np.asarray(
        random_block_mapping(grid, cluster, seed=0).block_to_slot,
        dtype=np.int64)
    rng = np.random.default_rng(SEED)
    moves = _random_moves(rng, len(base), 32)
    inc = kernel.incremental()
    inc.bind(base)
    candidates = [apply_move(base, move) for move in moves]
    for cand in candidates[:8]:
        assert inc.propose(cand) == kernel.evaluate_perm(cand)

    full_rate = _evals_per_sec(kernel.evaluate_perm, candidates[:8])
    delta_rate = _evals_per_sec(inc.propose, candidates)
    speedup = delta_rate / full_rate
    print(f"\n  512-slot shape: full {full_rate:7.0f} eval/s   "
          f"delta {delta_rate:7.0f} eval/s   {speedup:4.1f}x")
    assert speedup >= 1.5, (
        f"delta path speedup {speedup:.1f}x at 512 slots — the "
        f"delta_min_slots gate's premise no longer holds"
    )

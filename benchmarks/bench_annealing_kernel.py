"""Annealer hot path: vectorized kernel vs reference latency model.

Two claims, matching the kernel's contract
(:mod:`repro.core.latency_kernel`):

* on the Table 1 cluster shapes (16 nodes x 8 GPUs = 128 GPUs) the
  kernel evaluates the SA objective >= 10x faster than the reference
  ``pipette_latency`` path, measured as objective evaluations/sec over
  identical random permutations;
* the speed costs nothing: every kernel evaluation is bit-identical to
  the reference, and a same-seed annealing run returns the identical
  best mapping with a value within 1e-9 relative (in fact equal).
"""

import time

import numpy as np
import pytest

from repro.cluster import Fabric
from repro.cluster.presets import high_end_cluster, mid_range_cluster
from repro.core.annealing import (
    SAOptions,
    anneal_mapping,
    anneal_mapping_reference,
)
from repro.core.latency_kernel import pipette_kernel
from repro.core.latency_model import pipette_latency
from repro.model import get_model
from repro.parallel import ParallelConfig, WorkerGrid, random_block_mapping
from repro.profiling import profile_compute

#: One concrete fabric draw, like the other macro-benchmarks.
SEED = 2

#: 128-GPU parallelizations of the Table 1 clusters.  The first is the
#: canonical Megatron shape (full-node TP groups) the >= 10x bound is
#: asserted on; the others are reported for coverage of skinnier TP.
SHAPES = [
    ("high-end", ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4,
                                global_batch=512), True),
    ("mid-range", ParallelConfig(pp=16, tp=8, dp=1, micro_batch=4,
                                 global_batch=512), True),
    ("mid-range", ParallelConfig(pp=8, tp=2, dp=8, micro_batch=4,
                                 global_batch=512), False),
]

_CLUSTERS = {"high-end": high_end_cluster, "mid-range": mid_range_cluster}


def _world(cluster_name):
    cluster = _CLUSTERS[cluster_name](16)
    bandwidth = Fabric(cluster, seed=SEED).bandwidth()
    model = get_model("gpt-8.1b")
    profile = profile_compute(model, cluster, seed=SEED)
    return cluster, model, bandwidth, profile


def _evals_per_sec(fn, items, min_time=0.3):
    """Best-of-3 throughput of ``fn`` mapped over ``items``."""
    best = 0.0
    for _ in range(3):
        done = 0
        t0 = time.perf_counter()
        while True:
            for item in items:
                fn(item)
            done += len(items)
            elapsed = time.perf_counter() - t0
            if elapsed >= min_time:
                break
        best = max(best, done / elapsed)
    return best


def test_kernel_vs_reference_throughput():
    """>= 10x objective evaluations/sec on the 128-GPU Table 1 shapes."""
    print()
    for cluster_name, config, assert_10x in SHAPES:
        cluster, model, bandwidth, profile = _world(cluster_name)
        kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
        grid = WorkerGrid(config.pp, config.tp, config.dp)
        mappings = [random_block_mapping(grid, cluster, seed=s)
                    for s in range(32)]
        perms = [m.block_to_slot for m in mappings]

        # Identity on every measured permutation (bitwise, which is
        # stronger than the 1e-9 acceptance bound).
        for mapping, perm in zip(mappings, perms):
            ref = pipette_latency(model, config, mapping, bandwidth, profile)
            assert kernel.evaluate_perm(perm) == ref

        ref_rate = _evals_per_sec(
            lambda m: pipette_latency(model, config, m, bandwidth, profile),
            mappings)
        kernel_rate = _evals_per_sec(kernel.evaluate_perm, perms)
        speedup = kernel_rate / ref_rate
        shape = f"pp={config.pp} tp={config.tp} dp={config.dp}"
        print(f"  {cluster_name:10s} {shape:20s} "
              f"reference {ref_rate:9.0f} eval/s   "
              f"kernel {kernel_rate:9.0f} eval/s   {speedup:5.1f}x")
        if assert_10x:
            assert speedup >= 10.0, (
                f"kernel speedup {speedup:.1f}x below the 10x bound on "
                f"{cluster_name} {shape}"
            )
        else:
            assert speedup >= 5.0


def test_same_seed_same_answer_on_table1_shape():
    """Old and new annealers agree exactly on a 128-GPU search."""
    cluster, model, bandwidth, profile = _world("high-end")
    config = ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4,
                            global_batch=512)
    initial = random_block_mapping(WorkerGrid(4, 8, 4), cluster, seed=1)
    kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
    options = SAOptions(max_iterations=400, seed=SEED)

    reference = anneal_mapping_reference(
        initial,
        lambda m: pipette_latency(model, config, m, bandwidth, profile),
        options)
    fast = anneal_mapping(initial, kernel, options)

    assert np.array_equal(fast.mapping.block_to_slot,
                          reference.mapping.block_to_slot)
    assert fast.value == pytest.approx(reference.value, rel=1e-9, abs=0.0)
    assert fast.value == reference.value  # in fact bit-identical
    assert fast.accepted == reference.accepted
    assert fast.history == reference.history


def test_annealer_wall_clock_speedup():
    """End-to-end SA (moves + bookkeeping + objective) also wins big."""
    cluster, model, bandwidth, profile = _world("high-end")
    config = ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4,
                            global_batch=512)
    initial = random_block_mapping(WorkerGrid(4, 8, 4), cluster, seed=1)
    kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
    options = SAOptions(max_iterations=600, seed=SEED)

    t0 = time.perf_counter()
    reference = anneal_mapping_reference(
        initial,
        lambda m: pipette_latency(model, config, m, bandwidth, profile),
        options)
    ref_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = anneal_mapping(initial, kernel, options)
    fast_s = time.perf_counter() - t0

    print(f"\n  600-iteration anneal: reference {600 / ref_s:7.0f} it/s   "
          f"kernel {600 / fast_s:7.0f} it/s   {ref_s / fast_s:5.1f}x")
    assert fast.value == reference.value
    assert fast.mapping == reference.mapping
    assert ref_s / fast_s >= 5.0

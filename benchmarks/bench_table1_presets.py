"""Table I: environment summary (sanity of the hardware presets)."""

from conftest import run_once

from repro.experiments import format_table, run_table1


def test_table1_environment(benchmark):
    rows = run_once(benchmark, run_table1)
    print("\n" + format_table(rows, title="Table I experimental environment"))
    names = {r["cluster"] for r in rows}
    assert names == {"mid-range", "high-end"}
    for row in rows:
        assert row["gpus"] == 128
        assert row["nodes"] == 16

"""Fig. 5b: top-10 recommendation quality (OOM rates) on mid-range."""

from conftest import BENCH_SEED, run_once

from repro.experiments import format_table, run_fig5b


def test_fig5b_top10_recommendations(benchmark, mid_estimator):
    result = run_once(benchmark, run_fig5b, cluster_name="mid-range",
                      seed=BENCH_SEED, memory_estimator=mid_estimator)
    for tool in ("varuna", "amp", "pipette"):
        rows = [{
            "rank": o.rank,
            "config": o.config.describe(),
            "estimated_s": o.estimated_s,
            "actual_s": None if o.oom else o.actual_s,
            "OOM": "OOM" if o.oom else "",
        } for o in result.outcomes[tool]]
        print("\n" + format_table(rows, title=f"Fig. 5b {tool} top-10"))
        print(f"{tool}: {result.oom_count(tool)}/10 OOM")
    # Paper shape: 8/10 of AMP and Varuna OOM including top picks;
    # Pipette's are overwhelmingly runnable.
    assert result.oom_count("varuna") >= 6
    assert result.oom_count("amp") >= 4
    assert result.outcomes["amp"][0].oom or result.outcomes["varuna"][0].oom
    assert result.oom_count("pipette") <= 2

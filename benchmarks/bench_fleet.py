"""The sharded fleet: aggregate cache-miss throughput and identity.

The headline claim of :mod:`repro.service.fleet`: planning throughput
scales *horizontally* — N worker processes behind the consistent-hash
router answer a cache-miss workload ≥ 2.5x faster at N=4 than one
process, while every plan stays byte-identical to the single-process
answer and every question is searched exactly once across the fleet.

Three angles, cheapest truth first:

* **pinned-cost scale-out** (always runs, deterministic): the search
  is stubbed to a fixed sleep, so the measured 4-vs-1 ratio is pure
  placement math — 64 keys spread over 4 shards drain concurrently in
  the time of the largest shard (~18 keys on this ring), not of all
  64.  No CPU-count luck involved; this is the assertion that holds
  on any machine.
* **multi-process scale-out** (needs >= 4 CPUs, e.g. the CI runner):
  the real thing — ``fleet --workers 4`` vs ``--workers 1`` over real
  Table-1 mid-range searches, byte-identical plans, >= 2.5x.
* **fleet identity** (always runs): a 2-worker fleet's detailed plans
  equal an in-process reference service byte-for-byte (net of
  stopwatch fields), re-asks hit, and the aggregated ``/metrics``
  page shows exactly one cache miss per distinct key fleet-wide —
  same-key requests provably landed on one shard.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest
from conftest import run_once

from repro.cluster import NetworkProfiler, make_fabric
from repro.cluster.presets import mid_range_cluster
from repro.core import PipetteOptions, SAOptions
from repro.model import get_model
from repro.service import (
    ClusterRegistry,
    FleetRouter,
    HttpPlanServer,
    MetricsRegistry,
    PlanGateway,
    PlanningService,
    WorkerClient,
    routing_key,
)

SEED = 2
_SRC = str(Path(__file__).resolve().parents[1] / "src")
_STOPWATCH = ("memory_check_s", "annealing_s", "total_s")

#: Fixed per-search cost for the pinned-cost benchmark.
PINNED_COST_S = 0.04

#: Distinct cache-miss questions for the pinned-cost benchmark
#: (portfolio_k varies the fingerprint, not the search cost).
PINNED_KEYS = list(range(1, 65))

#: 16 keys that this ring spreads exactly 4/4/4/4 over 4 workers
#: (deterministic: the ring hashes content, so this never changes).
BALANCED_KEYS = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 18, 20, 28]


def _canonical(answer: dict) -> str:
    out = {key: value for key, value in answer.items()
           if key not in ("elapsed_ms", "status", "id", "timing")}
    if isinstance(out.get("result"), dict):
        out["result"] = {key: value for key, value
                         in out["result"].items()
                         if key not in _STOPWATCH}
    return json.dumps(out, sort_keys=True)


# ----------------------------------------------- pinned-cost scale-out


def _registry_with_pinned_search(result) -> ClusterRegistry:
    cluster = mid_range_cluster(n_nodes=2)
    network = NetworkProfiler(n_rounds=2).profile(
        make_fabric(cluster, seed=SEED), seed=SEED)
    registry = ClusterRegistry()
    registry.add_cluster("alpha", cluster, network.bandwidth,
                         profile_seed=SEED)
    service = registry.service("alpha")

    def pinned_search(request):
        time.sleep(PINNED_COST_S)
        return result

    service._search = pinned_search
    return registry


class _PinnedFleet:
    """N in-process workers with a fixed-cost search, behind a router."""

    def __init__(self, n_workers: int, result) -> None:
        self.n_workers = n_workers
        self.result = result

    async def __aenter__(self):
        options = PipetteOptions(use_worker_dedication=False, seed=SEED)
        self.gateways, self.servers, self.clients = [], [], []
        for index in range(self.n_workers):
            registry = _registry_with_pinned_search(self.result)
            gateway = PlanGateway(registry)
            await gateway.__aenter__()
            front = HttpPlanServer(gateway, options)
            server = await asyncio.start_server(front.handle,
                                                host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            self.gateways.append(gateway)
            self.servers.append(server)
            self.clients.append(WorkerClient("127.0.0.1", port, index))
        self.router = FleetRouter(self.clients)
        self.router_server = await asyncio.start_server(
            self.router.handle, host="127.0.0.1", port=0)
        self.port = self.router_server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        self.router_server.close()
        await self.router_server.wait_closed()
        for client in self.clients:
            client.close()
        for server in self.servers:
            server.close()
            await server.wait_closed()
        for gateway in self.gateways:
            await gateway.__aexit__(*exc)


async def _router_post(port: int, payload: dict) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = json.dumps(payload).encode("utf-8")
    writer.write((f"POST /v1/plan HTTP/1.1\r\nHost: bench\r\n"
                  f"Content-Length: {len(data)}\r\n"
                  "Connection: close\r\n\r\n").encode() + data)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    writer.close()
    assert status == 200, body
    return json.loads(body)


def test_pinned_cost_throughput_scales_4x_vs_1(benchmark):
    """>= 2.5x aggregate miss throughput at 4 workers — placement math
    alone, independent of this machine's CPU count."""
    cluster = mid_range_cluster(n_nodes=2)
    network = NetworkProfiler(n_rounds=2).profile(
        make_fabric(cluster, seed=SEED), seed=SEED)
    seed_service = PlanningService(cluster, network.bandwidth,
                                   profile_seed=SEED)
    result = seed_service._search(seed_service.request(
        get_model("gpt-toy"), 32,
        options=PipetteOptions(use_worker_dedication=False, seed=SEED)))

    payloads = [{"model": "gpt-toy", "global_batch": 32,
                 "cluster": "alpha", "portfolio_k": k}
                for k in PINNED_KEYS]

    async def drain_fleet(n_workers):
        async with _PinnedFleet(n_workers, result) as fleet:
            started = time.perf_counter()
            answers = await asyncio.gather(
                *(_router_post(fleet.port, payload)
                  for payload in payloads))
            elapsed = time.perf_counter() - started
            return elapsed, answers

    def collect():
        one = asyncio.run(drain_fleet(1))
        four = asyncio.run(drain_fleet(4))
        return one, four

    (t_one, one_answers), (t_four, four_answers) = run_once(benchmark,
                                                            collect)
    keys = len(payloads)
    speedup = t_one / t_four
    print(f"\npinned cost:    {PINNED_COST_S * 1e3:.0f} ms/search, "
          f"{keys} distinct keys")
    print(f"1 worker:       {t_one:8.2f} s "
          f"({keys / t_one:6.1f} plans/s)")
    print(f"4 workers:      {t_four:8.2f} s "
          f"({keys / t_four:6.1f} plans/s)")
    print(f"speedup:        {speedup:8.2f}x")
    assert speedup >= 2.5
    # Routing must not change answers: both fleet sizes agree per key.
    for one_answer, four_answer in zip(one_answers, four_answers):
        assert _canonical(one_answer) == _canonical(four_answer)


# -------------------------------------------- multi-process scale-out


def _free_port_block(n: int) -> int:
    for _ in range(50):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        base = probe.getsockname()[1]
        probe.close()
        held = []
        try:
            for offset in range(n):
                sock = socket.socket()
                sock.bind(("127.0.0.1", base + offset))
                held.append(sock)
        except OSError:
            continue
        finally:
            for sock in held:
                sock.close()
        if len(held) == n:
            return base
    raise AssertionError("no consecutive free port block found")


def _post(port: int, payload: dict, timeout: float = 300.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/plan",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get_text(port: int, path: str) -> str:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10.0) as response:
        return response.read().decode("utf-8")


class _CliFleet:
    """A real ``python -m repro.service fleet`` process."""

    def __init__(self, n_workers: int, tmp_path, sa_iterations: int):
        self.n_workers = n_workers
        self.tmp_path = tmp_path
        self.sa_iterations = sa_iterations

    def __enter__(self):
        base = _free_port_block(self.n_workers + 1)
        self.port = base
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + (os.pathsep + env["PYTHONPATH"]
                                    if env.get("PYTHONPATH") else "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "fleet",
             "--workers", str(self.n_workers),
             "--http", str(base), "--base-port", str(base + 1),
             "--clusters", "mid-range:2",
             "--store-dir", str(self.tmp_path /
                                f"store-{self.n_workers}"),
             "--sa-iterations", str(self.sa_iterations),
             "--no-dedication", "--seed", str(SEED)],
            env=env, stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 120
        while True:
            try:
                health = json.loads(_get_text(self.port, "/healthz"))
                if health["status"] == "ok":
                    return self
            except (OSError, json.JSONDecodeError):
                pass
            assert time.monotonic() < deadline, "fleet never healthy"
            assert self.proc.poll() is None, "fleet process died"
            time.sleep(0.3)

    def __exit__(self, *exc):
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=30)


def _fleet_misses(port: int) -> float:
    """Fleet-wide cache misses from the aggregated /metrics page."""
    total = 0.0
    for line in _get_text(port, "/metrics").splitlines():
        if line.startswith("pipette_cache_misses_total{"):
            total += float(line.rsplit(" ", 1)[1])
    return total


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="real 4-worker scale-out needs >= 4 CPUs")
def test_multiprocess_miss_throughput_4_workers(benchmark, tmp_path):
    """The real thing on Table-1 mid-range searches: 4 processes
    answer a balanced 16-key miss workload >= 2.5x faster than 1."""
    payloads = [{"model": "gpt-toy", "global_batch": 32,
                 "cluster": "mid-range-0", "portfolio_k": k,
                 "detail": True}
                for k in BALANCED_KEYS]

    def drain(n_workers):
        with _CliFleet(n_workers, tmp_path, sa_iterations=300) as fleet:
            with ThreadPoolExecutor(len(payloads)) as pool:
                started = time.perf_counter()
                answers = list(pool.map(
                    lambda payload: _post(fleet.port, payload), payloads))
                elapsed = time.perf_counter() - started
            misses = _fleet_misses(fleet.port)
            return elapsed, answers, misses

    def collect():
        return drain(1), drain(4)

    (t_one, one_answers, one_misses), (t_four, four_answers, four_misses) \
        = run_once(benchmark, collect)
    keys = len(payloads)
    speedup = t_one / t_four
    print(f"\n{keys} distinct mid-range searches, balanced 4/4/4/4")
    print(f"1 worker:       {t_one:8.2f} s "
          f"({keys / t_one:6.2f} plans/s), {one_misses:.0f} misses")
    print(f"4 workers:      {t_four:8.2f} s "
          f"({keys / t_four:6.2f} plans/s), {four_misses:.0f} misses")
    print(f"speedup:        {speedup:8.2f}x")
    # Every question was searched exactly once per fleet, and the
    # 4-worker plans are byte-identical to the 1-worker plans.
    assert one_misses == keys
    assert four_misses == keys
    for one_answer, four_answer in zip(one_answers, four_answers):
        assert one_answer["status"] == "miss"
        assert _canonical(one_answer) == _canonical(four_answer)
    assert speedup >= 2.5


# ------------------------------------------------------ fleet identity


def test_fleet_plans_match_single_process_byte_for_byte(benchmark,
                                                        tmp_path):
    """A 2-worker fleet's plans equal the in-process reference exactly
    (net of stopwatch fields); re-asks hit; the aggregated metrics
    show one miss per distinct key across the whole fleet."""
    sa_iterations = 300
    batches = (16, 32, 64)  # this ring: two keys on shard 0, one on 1
    payloads = [{"model": "gpt-toy", "global_batch": batch,
                 "cluster": "mid-range-0", "detail": True}
                for batch in batches]

    def collect():
        with _CliFleet(2, tmp_path, sa_iterations=sa_iterations) as fleet:
            first = [_post(fleet.port, payload) for payload in payloads]
            again = [_post(fleet.port, payload) for payload in payloads]
            misses = _fleet_misses(fleet.port)
        return first, again, misses

    first, again, misses = run_once(benchmark, collect)

    # The reference: exactly what one `serve` worker builds for
    # cluster "mid-range-0" (preset, fabric seed, profiler, options).
    cluster = mid_range_cluster(n_nodes=2)
    network = NetworkProfiler().profile(make_fabric(cluster, seed=SEED),
                                        seed=SEED)
    reference = PlanningService(cluster, network.bandwidth,
                                profile_seed=SEED)
    options = PipetteOptions(
        use_worker_dedication=False,
        sa=SAOptions(max_iterations=sa_iterations, portfolio_k=4),
        seed=SEED)
    model = get_model("gpt-toy")

    for payload, answer, re_answer in zip(payloads, first, again):
        assert answer["status"] == "miss"
        assert re_answer["status"] == "hit"
        assert _canonical(answer) == _canonical(re_answer)
        expected = reference.plan(reference.request(
            model, payload["global_batch"], options=options))
        expected_payload = expected.result.to_payload()
        got_payload = dict(answer["result"])
        for field in _STOPWATCH:
            expected_payload.pop(field, None)
            got_payload.pop(field, None)
        assert json.dumps(got_payload, sort_keys=True) == \
            json.dumps(expected_payload, sort_keys=True)
    assert misses == len(payloads)
    owners = {routing_key(payload) for payload in payloads}
    assert len(owners) == len(payloads)  # distinct questions, distinct keys
    print(f"\n{len(payloads)} keys planned through 2 workers: "
          f"all byte-identical to the reference, {misses:.0f} "
          f"fleet-wide misses, re-asks all hit")

"""Table II: configuration overhead of Pipette."""

from conftest import BENCH_SEED, run_once

from repro.experiments import format_table
from repro.experiments.table2 import run_table2_row


def test_table2_configuration_overhead(benchmark, mid_estimator,
                                       high_estimator):
    def collect():
        rows = []
        for cluster, estimator in (("mid-range", mid_estimator),
                                   ("high-end", high_estimator)):
            for n_nodes in (8, 16):
                rows.append(run_table2_row(cluster, n_nodes, seed=BENCH_SEED,
                                           memory_estimator=estimator,
                                           sa_iterations=2000))
        return rows

    rows = run_once(benchmark, collect)
    printable = [{
        "cluster": r.cluster,
        "nodes": r.n_nodes,
        "model": r.model,
        "profiling_s": r.profiling_s,
        "SA_s": r.annealing_s,
        "SA_s@paper": r.annealing_paper_protocol_s,
        "mem_est_s": r.memory_estimation_s,
        "total_s": r.total_s,
        "overhead_%": r.overhead_percent,
        "AMP_days": r.amp_days,
        "PPT_days": r.pipette_days,
        "saving_days": r.time_saving_days,
    } for r in rows]
    print("\n" + format_table(printable,
                              title="Table II configuration overhead "
                                    "(300K iterations)"))
    for r in rows:
        # Paper shape: profiling around a minute (mid 8-node) to a few
        # minutes; memory estimation sub-second; total overhead
        # negligible against the training run.
        assert r.memory_estimation_s < 1.0
        assert r.overhead_percent < 0.2
    # Pipette's configurations win training time overall, most at the
    # full-scale columns (the paper's 0.97-10.97 day range); a single
    # off-peak column may tie within noise.
    assert sum(r.time_saving_days for r in rows) > 0.5
    assert rows[1].time_saving_days > 0   # mid-range, 16 nodes
    assert rows[3].time_saving_days > 0   # high-end, 16 nodes
    mid8 = rows[0]
    assert 30 < mid8.profiling_s < 120
    # Profiling cost scales with node count (Table II's pattern).
    assert rows[1].profiling_s > rows[0].profiling_s
    assert rows[3].profiling_s > rows[2].profiling_s

"""Tracing overhead: an end-to-end plan must stay within 5%.

The observability layer's contract (``docs/OBSERVABILITY.md``): with
the global tracer *enabled* — spans through the planner, per-candidate
``search.candidate`` synthesis, and the flight recorder riding every
anneal — an end-to-end plan through :class:`PlanningService` costs at
most 5% more wall-clock than with tracing disabled.  Disabled tracing
is near-free by construction (one attribute read per call site), so
the interesting bound is the enabled one.

Identity rides along: the traced and untraced searches must return the
same ranked configurations — telemetry must never perturb the answer.
"""

import time

import pytest

from repro.cluster import Fabric, HeterogeneityModel, NetworkProfiler
from repro.cluster.topology import ClusterSpec, GpuSpec, LinkSpec, NodeSpec
from repro.core import PipetteOptions, SAOptions
from repro.model import get_model
from repro.obs import TRACER
from repro.service import PlanningService
from repro.units import GIB

SEED = 7

#: Repeats per mode; the *minimum* is compared (robust to scheduler
#: noise in a way means are not).
RUNS = 5


def _service() -> PlanningService:
    gpu = GpuSpec(name="BenchGPU", memory_bytes=16 * GIB, peak_flops=100e12,
                  achievable_fraction=0.5, hbm_gb_s=1500.0)
    node = NodeSpec(gpus_per_node=4, gpu=gpu,
                    intra_link=LinkSpec("NVL", 300.0, alpha_s=1e-6))
    cluster = ClusterSpec(name="bench", n_nodes=4, node=node,
                          inter_link=LinkSpec("IB", 25.0, alpha_s=1e-5))
    fabric = Fabric(cluster, heterogeneity=HeterogeneityModel(), seed=SEED)
    bandwidth = NetworkProfiler(n_rounds=2).profile(
        fabric, seed=SEED).bandwidth
    return PlanningService(cluster, bandwidth)


def _plan_once(service: PlanningService, request) -> float:
    """One uncached end-to-end plan; returns its wall-clock seconds."""
    service.cache.clear()
    t0 = time.perf_counter()
    response = service.plan(request)
    elapsed = time.perf_counter() - t0
    assert response.best is not None
    return elapsed


def test_tracing_overhead_under_5_percent():
    service = _service()
    options = PipetteOptions(sa=SAOptions(max_iterations=1500, seed=SEED),
                             seed=SEED)
    request = service.request(get_model("gpt-1.1b"), 64, options=options)

    TRACER.disable()
    baseline_best = service.plan(request).result  # warmup + identity ref
    service.cache.clear()
    untraced = min(_plan_once(service, request) for _ in range(RUNS))

    TRACER.enable()
    try:
        traced_result = service.plan(request).result
        service.cache.clear()
        traced = min(_plan_once(service, request) for _ in range(RUNS))
    finally:
        TRACER.disable()
        TRACER.reset()

    overhead = traced / untraced - 1.0
    print(f"\nuntraced plan: {untraced * 1e3:8.2f} ms")
    print(f"traced plan:   {traced * 1e3:8.2f} ms")
    print(f"overhead:      {overhead * 100:+7.2f}%  (bound: +5%)")

    # Identity: telemetry never changes the answer.
    ranked = [(e.config, e.estimated_latency_s) for e in baseline_best.ranked]
    ranked_traced = [(e.config, e.estimated_latency_s)
                     for e in traced_result.ranked]
    assert ranked == ranked_traced

    assert overhead < 0.05, (
        f"tracing overhead {overhead * 100:.2f}% exceeds the 5% bound "
        f"(traced {traced * 1e3:.2f} ms vs untraced {untraced * 1e3:.2f} ms)")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-s", "-q"]))

"""Train the MLP memory estimator and beat the analytic baseline (§VI).

Profiles every legal configuration on 1-4-node sub-clusters of a V100
cluster (the paper's protocol), trains the five-layer/200-hidden MLP
of Eq. (7), and validates it — including extrapolation to cluster
sizes never profiled — against the first-principles estimator of
[Bricken 2022] the paper uses as its Fig. 7 baseline.

Run:  python examples/memory_estimator_training.py
"""

from __future__ import annotations

from repro import get_model, mid_range_cluster
from repro.baselines import analytic_memory_estimate_bytes
from repro.core import MemoryEstimator, build_memory_dataset
from repro.parallel import enumerate_parallel_configs
from repro.sim.memory_sim import simulated_max_memory_bytes
from repro.units import GIB, mape
from repro.utils.rng import spawn_rng


def main() -> None:
    cluster = mid_range_cluster(n_nodes=16)
    models = [get_model(n) for n in ("gpt-774m", "gpt-1.1b", "gpt-small")]

    # --- profile small sub-clusters (the cheap part of the protocol) --
    dataset = build_memory_dataset(cluster, models, [128, 256],
                                   node_counts=[1, 2, 4], seed=0)
    print(f"profiled {len(dataset)} configurations on 1-4 node sub-clusters")

    estimator = MemoryEstimator(seed=0)
    result = estimator.fit(dataset, iterations=6000)
    print(f"trained 5-layer/200-hidden MLP for {result.iterations_run} "
          f"iterations (val MSE {result.best_validation_loss:.5f})\n")

    # --- validate, including extrapolation to 8 and 16 nodes ----------
    rng = spawn_rng(0, "validation")
    print(f"{'gpus':>5s} {'config':22s} {'actual':>8s} {'MLP':>8s} "
          f"{'analytic':>9s}")
    rows = []
    for n_nodes in (2, 8, 16):
        sub = cluster.scaled_to(n_nodes)
        model = models[0] if n_nodes < 8 else models[1]
        configs = enumerate_parallel_configs(sub.n_gpus, 256,
                                             n_layers=model.n_layers)
        for i in rng.choice(len(configs), size=12, replace=False):
            config = configs[i]
            actual = simulated_max_memory_bytes(model, config, sub, seed=31)
            mlp = estimator.predict_bytes(model, config, sub.n_gpus)
            base = analytic_memory_estimate_bytes(model, config)
            rows.append((sub.n_gpus, actual, mlp, base))
            if i % 4 == 0:
                print(f"{sub.n_gpus:5d} {config.describe():22s} "
                      f"{actual / GIB:7.1f}G {mlp / GIB:7.1f}G "
                      f"{base / GIB:8.1f}G")

    actuals = [r[1] for r in rows]
    print(f"\nMLP MAPE:      {mape([r[2] for r in rows], actuals):6.2f}%  "
          "(paper: 7.39%)")
    print(f"analytic MAPE: {mape([r[3] for r in rows], actuals):6.2f}%  "
          "(paper: 65.71%)")
    under = sum(1 for r in rows if r[3] < r[1])
    print(f"the analytic baseline underestimates on {under}/{len(rows)} "
          "points — it cannot see framework/library overhead")


if __name__ == "__main__":
    main()

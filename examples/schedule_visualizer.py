"""Visualize pipeline schedules and the hidden critical path (Fig. 2).

Renders ASCII Gantt charts of the memory-unaware (GPipe) and
memory-efficient (1F1B) schedules from actual engine timelines, and
shows why the 1F1B schedule re-exposes inter-stage communication every
``pp`` microbatches — the hidden critical path that Pipette's latency
model captures and Eq. (1) misses.

Run:  python examples/schedule_visualizer.py
"""

from __future__ import annotations

from repro import (
    ParallelConfig,
    WorkerGrid,
    get_model,
    make_fabric,
    mid_range_cluster,
    sequential_mapping,
    simulate_iteration,
)


def render_gantt(timeline, pp: int, width: int = 100) -> str:
    """ASCII Gantt: one row per stage, digits are microbatch ids."""
    end_time = max(end for *_rest, end in timeline)
    rows = []
    for stage in range(pp):
        line = [" "] * width
        for gpu, s, kind, mb, start, end in timeline:
            if s != stage:
                continue
            a = int(start / end_time * (width - 1))
            b = max(a + 1, int(end / end_time * (width - 1)))
            char = str(mb % 10) if kind == "F" else \
                chr(ord("a") + mb % 10)  # backward in letters
            for i in range(a, min(b, width)):
                line[i] = char
        rows.append(f"stage {stage} |{''.join(line)}|")
    return "\n".join(rows)


def main() -> None:
    cluster = mid_range_cluster(n_nodes=4)
    fabric = make_fabric(cluster, seed=3)
    model = get_model("gpt-small")
    config = ParallelConfig(pp=4, tp=8, dp=1, micro_batch=2, global_batch=12)
    mapping = sequential_mapping(WorkerGrid(4, 8, 1), cluster)
    bw = fabric.bandwidth()

    print(f"{model.name}, {config.describe()}, 6 microbatches, "
          "digits = forward, letters = backward\n")
    for name in ("gpipe", "1f1b"):
        result = simulate_iteration(model, config, mapping, bw,
                                    schedule=name, jitter_sigma=0.0,
                                    record_timeline=True)
        label = "memory-unaware (GPipe)" if name == "gpipe" \
            else "memory-efficient (1F1B)"
        print(f"--- {label}: {result.time_s:.3f} s/iter ---")
        print(render_gantt(result.timeline, config.pp))
        print()

    # Interleaved 1F1B needs n_mb to be a multiple of pp, so it gets
    # its own 8-microbatch shape; each device runs two model chunks,
    # halving the fill/drain bubble at the cost of doubled hops.
    inter = ParallelConfig(pp=4, tp=8, dp=1, micro_batch=2,
                           global_batch=16, schedule="interleaved_1f1b")
    result = simulate_iteration(model, inter, mapping, bw,
                                jitter_sigma=0.0, record_timeline=True)
    print(f"--- interleaved 1F1B (2 chunks/device, 8 microbatches): "
          f"{result.time_s:.3f} s/iter ---")
    print(render_gantt(result.timeline, inter.pp))
    print()

    # The memory side of the trade-off (Fig. 2's point).
    from repro.sim import simulated_max_memory_bytes
    from repro.units import GIB
    eff = simulated_max_memory_bytes(model, config, cluster, schedule="1f1b")
    una = simulated_max_memory_bytes(model, config, cluster, schedule="gpipe")
    print(f"peak memory: 1F1B {eff / GIB:.2f} GiB vs GPipe {una / GIB:.2f} "
          "GiB per GPU")
    print("=> 1F1B trades the all-forward burst for bounded in-flight "
          "activations;")
    print("   its zig-zag dependency chain is the hidden critical path "
          "of §V.")


if __name__ == "__main__":
    main()

"""Quickstart: configure LLM training on a heterogeneous cluster.

Walks the full Pipette flow of Algorithm 1 on a (simulated) 8-node
V100 cluster training GPT-1.1B:

1. profile the cluster's attained pairwise bandwidth,
2. profile the model's per-microbatch compute time,
3. train the MLP memory estimator from small-scale profiles,
4. search (pp, tp, dp, microbatch) with the latency estimator and
   fine-grained worker dedication,
5. launch the recommendation and compare against the naive default.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClusterRunner,
    NetworkProfiler,
    PipetteConfigurator,
    PipetteOptions,
    SAOptions,
    get_model,
    make_fabric,
    mid_range_cluster,
    profile_compute,
)
from repro.core import MemoryEstimator, build_memory_dataset
from repro.units import GIB


def main() -> None:
    # --- the cluster (in reality: your machines; here: a simulation) --
    cluster = mid_range_cluster(n_nodes=8)
    fabric = make_fabric(cluster, seed=2024)
    model = get_model("gpt-1.1b")
    global_batch = 256
    print(f"cluster: {cluster.description}")
    print(f"model:   {model.name} ({model.billions:.2f}B params), "
          f"global batch {global_batch}\n")

    # --- step 1: profile the network (Algorithm 1, line 1) -----------
    network = NetworkProfiler().profile(fabric, seed=1)
    matrix = network.bandwidth.matrix
    import numpy as np
    inter = [matrix[i, j] for i in range(cluster.n_gpus)
             for j in range(cluster.n_gpus)
             if np.isfinite(matrix[i, j]) and not cluster.same_node(i, j)]
    print(f"profiled inter-node bandwidth: min {min(inter):.1f} / "
          f"mean {np.mean(inter):.1f} / max {max(inter):.1f} GB/s "
          f"(nominal {cluster.inter_link.bandwidth_gb_s:.1f})")

    # --- step 2: profile compute --------------------------------------
    profile = profile_compute(model, cluster, seed=1)

    # --- step 3: train the memory estimator on <=2-node profiles ------
    print("\nprofiling memory on 1-2 node sub-clusters ...")
    dataset = build_memory_dataset(cluster, [model], [128, 256],
                                   node_counts=[1, 2], seed=3)
    estimator = MemoryEstimator(seed=3)
    result = estimator.fit(dataset, iterations=4000)
    print(f"trained MLP on {len(dataset)} profiled points "
          f"({result.iterations_run} iterations)")

    # --- step 4: search ------------------------------------------------
    pipette = PipetteConfigurator(
        cluster, model, network.bandwidth, profile, estimator,
        options=PipetteOptions(sa=SAOptions(max_iterations=2500)),
    )
    found = pipette.search(global_batch)
    best = found.best
    print(f"\nsearch: {len(found.ranked)} feasible configurations, "
          f"{found.rejected_oom} rejected as OOM")
    print(f"best:   {best.config.describe()} "
          f"(estimated {best.estimated_latency_s:.2f} s/iter, "
          f"predicted {best.estimated_memory_bytes / GIB:.1f} GiB/GPU)")

    # --- step 5: launch it (simulation stands in for the cluster) -----
    runner = ClusterRunner(fabric, model, seed=9)
    tuned = runner.run(best.config, best.mapping)
    default = runner.run(best.config)  # same config, rank-order mapping
    print(f"\nmeasured, dedicated mapping: {tuned.time_per_iter_s:.2f} s/iter "
          f"({tuned.max_memory_gib:.1f} GiB/GPU)")
    print(f"measured, default mapping:   {default.time_per_iter_s:.2f} s/iter")
    gain = default.time_per_iter_s / tuned.time_per_iter_s
    print(f"worker dedication gain:      {gain:.3f}x")


if __name__ == "__main__":
    main()

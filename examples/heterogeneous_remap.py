"""Fine-grained worker dedication on a straggler-ridden fabric (§IV).

Reproduces the paper's Fig. 4 story at machine scale: a cluster whose
nominally equal links differ (including a few 2-3x stragglers), a
pipeline whose naive rank-order placement crosses bad links, and the
simulated-annealing search that re-groups nodes to steer critical
traffic onto fast links.

Also runs the move-set ablation the paper motivates: the *reverse*
move exploits near-symmetric link bandwidths.

Run:  python examples/heterogeneous_remap.py
"""

from __future__ import annotations

from repro import (
    NetworkProfiler,
    ParallelConfig,
    SAOptions,
    WorkerGrid,
    anneal_mapping,
    get_model,
    make_fabric,
    mid_range_cluster,
    pipette_latency,
    profile_compute,
    sequential_mapping,
    simulate_iteration,
)
from repro.cluster import HeterogeneityModel


def main() -> None:
    cluster = mid_range_cluster(n_nodes=16)
    # Exaggerate the heterogeneity a little, like the paper's Fig. 4.
    rough = HeterogeneityModel(straggler_prob=0.15, straggler_factor=0.35,
                               pair_sigma=0.18, node_sigma=0.10)
    fabric = make_fabric(cluster, seed=7, heterogeneity=rough)
    model = get_model("gpt-3.1b")
    profile = profile_compute(model, cluster, seed=1)
    network = NetworkProfiler().profile(fabric, seed=2)

    config = ParallelConfig(pp=4, tp=8, dp=4, micro_batch=4,
                            global_batch=256)
    grid = WorkerGrid(config.pp, config.tp, config.dp)
    naive = sequential_mapping(grid, cluster)

    def objective(mapping):
        return pipette_latency(model, config, mapping, network.bandwidth,
                               profile)

    print(f"config: {config.describe()} on {cluster.n_nodes} nodes")
    print(f"naive mapping estimate: {objective(naive):.3f} s/iter\n")

    # --- full move set -------------------------------------------------
    result = anneal_mapping(naive, objective,
                            SAOptions(max_iterations=6000, seed=0))
    print("simulated annealing (migrate + swap + reverse):")
    print(f"  estimate {result.initial_value:.3f} -> {result.value:.3f} s "
          f"({result.improvement * 100:.1f}% gain, "
          f"{result.iterations} moves, {result.accepted} accepted)")

    # Where did the pipeline stages go?
    before = [naive.node_of_block(x, 0) for x in range(config.pp)]
    after = [result.mapping.node_of_block(x, 0) for x in range(config.pp)]
    print(f"  chain z=0 node order: {before} -> {after}")

    # --- verify on the execution simulator ------------------------------
    truth = fabric.bandwidth()
    t_naive = simulate_iteration(model, config, naive, truth, seed=5).time_s
    t_tuned = simulate_iteration(model, config, result.mapping, truth,
                                 seed=5).time_s
    print(f"\nmeasured: naive {t_naive:.3f} s vs dedicated {t_tuned:.3f} s "
          f"({(t_naive / t_tuned - 1) * 100:.1f}% faster)\n")

    # --- move-set ablation ----------------------------------------------
    print("move-set ablation (same budget):")
    for moves in (("swap",), ("migrate",), ("reverse",),
                  ("migrate", "swap"), ("migrate", "swap", "reverse")):
        r = anneal_mapping(naive, objective,
                           SAOptions(max_iterations=6000, moves=moves,
                                     seed=0))
        print(f"  {'+'.join(moves):24s} -> {r.value:.3f} s "
              f"({r.improvement * 100:5.1f}%)")


if __name__ == "__main__":
    main()

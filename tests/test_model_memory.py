"""Analytic memory breakdown: stage split, components, in-flight counts."""

import pytest

from repro.model import get_model
from repro.model.memory import (
    BYTES_PER_PARAM_GRADS,
    BYTES_PER_PARAM_OPTIMIZER,
    BYTES_PER_PARAM_WEIGHTS,
    analytic_memory_breakdown,
    first_principles_max_bytes,
    max_stage_layer_count,
    one_f_one_b_in_flight,
    stage_layer_count,
    stage_parameter_count,
)


class TestStageLayerCount:
    def test_even_split(self):
        assert [stage_layer_count(8, 4, s) for s in range(4)] == [2, 2, 2, 2]

    def test_uneven_split_front_loaded(self):
        assert [stage_layer_count(10, 4, s) for s in range(4)] == [3, 3, 2, 2]

    def test_sums_to_total(self):
        for layers, pp in [(34, 4), (72, 16), (7, 3)]:
            assert sum(stage_layer_count(layers, pp, s)
                       for s in range(pp)) == layers

    def test_max_is_stage_zero(self):
        assert max_stage_layer_count(10, 4) == stage_layer_count(10, 4, 0)

    def test_rejects_more_stages_than_layers(self):
        with pytest.raises(ValueError):
            stage_layer_count(2, 3, 0)

    def test_rejects_bad_stage(self):
        with pytest.raises(ValueError):
            stage_layer_count(8, 4, 4)


class TestStageParameterCount:
    def test_embeddings_on_first_stage(self):
        m = get_model("gpt-toy")
        first = stage_parameter_count(m, 2, 0)
        second = stage_parameter_count(m, 2, 1)
        # Both stages have 2 layers; the first adds the input
        # embedding, the last the output head.
        assert first - 2 * m.layer_params == m.embedding_params
        assert second - 2 * m.layer_params == m.vocab_size * m.hidden_size

    def test_single_stage_holds_everything(self):
        m = get_model("gpt-toy")
        assert stage_parameter_count(m, 1, 0) == m.param_count

    def test_total_at_least_model(self):
        # With pp > 1 the embedding is replicated on both ends.
        m = get_model("gpt-toy")
        total = sum(stage_parameter_count(m, 4, s) for s in range(4))
        assert total >= m.param_count


class TestInFlight:
    def test_first_stage_holds_most(self):
        assert one_f_one_b_in_flight(4, 0, 100) == 4
        assert one_f_one_b_in_flight(4, 3, 100) == 1

    def test_capped_by_microbatches(self):
        assert one_f_one_b_in_flight(8, 0, 3) == 3

    def test_monotone_in_stage(self):
        vals = [one_f_one_b_in_flight(4, s, 16) for s in range(4)]
        assert vals == sorted(vals, reverse=True)

    def test_rejects_bad_stage(self):
        with pytest.raises(ValueError):
            one_f_one_b_in_flight(4, 4, 16)


class TestBreakdown:
    def test_static_bytes_per_param(self):
        m = get_model("gpt-toy")
        parts = analytic_memory_breakdown(m, 1, 1, 0, 1, 1)
        per_param = parts.static_bytes / m.param_count
        expected = (BYTES_PER_PARAM_WEIGHTS + BYTES_PER_PARAM_GRADS
                    + BYTES_PER_PARAM_OPTIMIZER)
        assert per_param == pytest.approx(expected)

    def test_tp_divides_everything_static(self):
        m = get_model("gpt-toy")
        one = analytic_memory_breakdown(m, 1, 1, 0, 1, 1)
        four = analytic_memory_breakdown(m, 1, 4, 0, 1, 1)
        assert four.static_bytes == pytest.approx(one.static_bytes / 4)

    def test_in_flight_scales_activations(self):
        m = get_model("gpt-toy")
        a1 = analytic_memory_breakdown(m, 2, 1, 0, 2, 1).activation_bytes
        a2 = analytic_memory_breakdown(m, 2, 1, 0, 2, 2).activation_bytes
        assert a2 == pytest.approx(2 * a1)

    def test_logits_only_on_last_stage(self):
        m = get_model("gpt-toy")
        assert analytic_memory_breakdown(m, 2, 1, 0, 1, 1).logits_bytes == 0.0
        assert analytic_memory_breakdown(m, 2, 1, 1, 1, 1).logits_bytes > 0.0

    def test_total_is_component_sum(self):
        m = get_model("gpt-toy")
        p = analytic_memory_breakdown(m, 2, 2, 1, 2, 2)
        assert p.total_bytes == pytest.approx(
            p.weights_bytes + p.gradients_bytes + p.optimizer_bytes
            + p.activation_bytes + p.logits_bytes)

    def test_recompute_cuts_activations(self):
        m = get_model("gpt-toy")
        full = analytic_memory_breakdown(m, 4, 1, 0, 2, 4)
        rc = analytic_memory_breakdown(m, 4, 1, 0, 2, 4, recompute=True)
        assert rc.activation_bytes < full.activation_bytes

    def test_recompute_keeps_working_set(self):
        m = get_model("gpt-toy")
        rc = analytic_memory_breakdown(m, 4, 1, 0, 2, 4, recompute=True)
        layers = stage_layer_count(m.n_layers, 4, 0)
        working = layers * m.activation_bytes_per_layer(2)
        assert rc.activation_bytes >= working


class TestFirstPrinciplesMax:
    def test_positive(self):
        m = get_model("gpt-toy")
        assert first_principles_max_bytes(m, 2, 2, 2, 4) > 0

    def test_covers_every_stage(self):
        m = get_model("gpt-toy")
        total = first_principles_max_bytes(m, 2, 1, 1, 8)
        for stage in range(2):
            in_flight = one_f_one_b_in_flight(2, stage, 8)
            parts = analytic_memory_breakdown(m, 2, 1, stage, 1, in_flight)
            assert total >= parts.total_bytes * 0.999

    def test_more_tp_means_less_memory(self):
        m = get_model("gpt-toy")
        assert first_principles_max_bytes(m, 2, 4, 2, 4) \
            < first_principles_max_bytes(m, 2, 1, 2, 4)

    def test_recompute_reduces(self):
        m = get_model("gpt-toy")
        assert first_principles_max_bytes(m, 4, 1, 2, 8, recompute=True) \
            < first_principles_max_bytes(m, 4, 1, 2, 8)

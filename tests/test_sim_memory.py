"""Memory ground truth: overhead model, OOM oracle, runner facade."""

import pytest

from repro.model import get_model
from repro.parallel import ParallelConfig, WorkerGrid, sequential_mapping
from repro.sim import (
    ClusterRunner,
    FrameworkOverheadModel,
    is_oom,
    simulated_max_memory_bytes,
    simulated_memory_by_stage,
)
from repro.model.memory import analytic_memory_breakdown, one_f_one_b_in_flight


@pytest.fixture
def cfg():
    return ParallelConfig(pp=2, tp=4, dp=2, micro_batch=2, global_batch=16)


class TestMemorySim:
    def test_stage_count(self, toy_model, tiny_cluster, cfg):
        usages = simulated_memory_by_stage(toy_model, cfg, tiny_cluster)
        assert len(usages) == cfg.pp

    def test_max_is_max_of_stages(self, toy_model, tiny_cluster, cfg):
        usages = simulated_memory_by_stage(toy_model, cfg, tiny_cluster)
        assert simulated_max_memory_bytes(toy_model, cfg, tiny_cluster) \
            == max(usages)

    def test_exceeds_first_principles(self, toy_model, tiny_cluster, cfg):
        # The whole point of §VI: real usage > analytic components.
        in_flight = one_f_one_b_in_flight(cfg.pp, 0, cfg.n_microbatches)
        analytic = analytic_memory_breakdown(
            toy_model, cfg.pp, cfg.tp, 0, cfg.micro_batch, in_flight)
        actual = simulated_memory_by_stage(toy_model, cfg, tiny_cluster)[0]
        assert actual > analytic.total_bytes

    def test_deterministic(self, toy_model, tiny_cluster, cfg):
        a = simulated_max_memory_bytes(toy_model, cfg, tiny_cluster, seed=1)
        b = simulated_max_memory_bytes(toy_model, cfg, tiny_cluster, seed=1)
        assert a == b

    def test_seed_jitters_measurement(self, toy_model, tiny_cluster, cfg):
        a = simulated_max_memory_bytes(toy_model, cfg, tiny_cluster, seed=1)
        b = simulated_max_memory_bytes(toy_model, cfg, tiny_cluster, seed=2)
        assert a != b
        assert abs(a - b) / a < 0.2

    def test_gpipe_uses_more_than_1f1b(self, toy_model, tiny_cluster):
        cfg = ParallelConfig(pp=4, tp=1, dp=4, micro_batch=1, global_batch=32)
        eff = simulated_max_memory_bytes(toy_model, cfg, tiny_cluster,
                                         schedule="1f1b")
        una = simulated_max_memory_bytes(toy_model, cfg, tiny_cluster,
                                         schedule="gpipe")
        assert una > eff

    def test_recompute_uses_less(self, toy_model, tiny_cluster):
        cfg = ParallelConfig(pp=4, tp=1, dp=4, micro_batch=2, global_batch=64)
        plain = simulated_max_memory_bytes(toy_model, cfg, tiny_cluster)
        rc = simulated_max_memory_bytes(toy_model, cfg.with_recompute(),
                                        tiny_cluster)
        assert rc < plain

    def test_unknown_schedule_rejected(self, toy_model, tiny_cluster, cfg):
        with pytest.raises(ValueError):
            simulated_memory_by_stage(toy_model, cfg, tiny_cluster,
                                      schedule="magic")

    def test_bigger_microbatch_uses_more(self, toy_model, tiny_cluster):
        small = ParallelConfig(pp=2, tp=4, dp=2, micro_batch=1, global_batch=16)
        big = ParallelConfig(pp=2, tp=4, dp=2, micro_batch=8, global_batch=16)
        assert simulated_max_memory_bytes(toy_model, big, tiny_cluster) \
            > simulated_max_memory_bytes(toy_model, small, tiny_cluster)


class TestOverheadModel:
    def test_fragmentation_grows_with_microbatches(self):
        m = FrameworkOverheadModel()
        a = ParallelConfig(pp=1, tp=1, dp=1, micro_batch=1, global_batch=2)
        b = ParallelConfig(pp=1, tp=1, dp=1, micro_batch=1, global_batch=64)
        assert m.fragmentation(b) > m.fragmentation(a)

    def test_overhead_positive(self, toy_model, tiny_cluster, cfg):
        m = FrameworkOverheadModel()
        extra = m.overhead_bytes(toy_model, cfg, tiny_cluster, 0,
                                 static_bytes=1e9, dynamic_bytes=1e9)
        assert extra > m.context_bytes

    def test_communicator_terms_require_parallelism(self, toy_model,
                                                    tiny_cluster):
        m = FrameworkOverheadModel(noise_sigma=0.0)
        serial = ParallelConfig(pp=1, tp=1, dp=1, micro_batch=1,
                                global_batch=1)
        parallel = ParallelConfig(pp=2, tp=2, dp=4, micro_batch=1,
                                  global_batch=4)
        a = m.overhead_bytes(toy_model, serial, tiny_cluster, 0, 1e9, 1e9)
        b = m.overhead_bytes(toy_model, parallel, tiny_cluster, 0, 1e9, 1e9)
        assert b > a


class TestOomOracle:
    def test_toy_fits(self, toy_model, tiny_cluster, cfg):
        assert not is_oom(toy_model, cfg, tiny_cluster)

    def test_big_model_on_tiny_gpu_ooms(self, tiny_cluster):
        model = get_model("gpt-small")  # 0.13B params on a 4 GiB GPU
        cfg = ParallelConfig(pp=1, tp=1, dp=16, micro_batch=1,
                             global_batch=16)
        assert is_oom(model, cfg, tiny_cluster)

    def test_parallelism_rescues(self, tiny_cluster):
        model = get_model("gpt-small")
        packed = ParallelConfig(pp=1, tp=1, dp=16, micro_batch=1,
                                global_batch=16)
        spread = ParallelConfig(pp=4, tp=4, dp=1, micro_batch=1,
                                global_batch=16)
        assert is_oom(model, packed, tiny_cluster)
        assert not is_oom(model, spread, tiny_cluster)


class TestRunner:
    def test_oom_run_reports_infinite_time(self, tiny_fabric):
        model = get_model("gpt-small")
        runner = ClusterRunner(tiny_fabric, model)
        run = runner.run(ParallelConfig(pp=1, tp=1, dp=16, micro_batch=1,
                                        global_batch=16))
        assert run.oom
        assert run.time_per_iter_s == float("inf")

    def test_runnable_reports_finite_time(self, tiny_fabric, toy_model, cfg):
        runner = ClusterRunner(tiny_fabric, toy_model)
        run = runner.run(cfg)
        assert not run.oom
        assert 0 < run.time_per_iter_s < float("inf")
        assert run.max_memory_gib > 0

    def test_rejects_wrong_gpu_count(self, tiny_fabric, toy_model):
        runner = ClusterRunner(tiny_fabric, toy_model)
        with pytest.raises(ValueError):
            runner.run(ParallelConfig(pp=1, tp=1, dp=1, micro_batch=1,
                                      global_batch=1))

    def test_custom_mapping_changes_time(self, tiny_fabric, toy_model, cfg):
        from repro.parallel import random_block_mapping
        runner = ClusterRunner(tiny_fabric, toy_model)
        grid = WorkerGrid(cfg.pp, cfg.tp, cfg.dp)
        seq = runner.run(cfg, sequential_mapping(grid, tiny_fabric.spec))
        rnd = runner.run(cfg, random_block_mapping(grid, tiny_fabric.spec,
                                                   seed=5))
        assert seq.time_per_iter_s != rnd.time_per_iter_s

"""Baseline configurators: AMP, Varuna, Megatron-LM, analytic memory."""

import pytest

from repro.baselines import (
    AmpConfigurator,
    MegatronLmTuner,
    VarunaConfigurator,
    analytic_memory_estimate_bytes,
)
from repro.model import get_model
from repro.parallel import ParallelConfig
from repro.sim import ClusterRunner
from repro.sim.memory_sim import simulated_max_memory_bytes


@pytest.fixture
def amp(tiny_cluster, toy_model, tiny_fabric, toy_profile):
    return AmpConfigurator(tiny_cluster, toy_model,
                           tiny_fabric.nominal_bandwidth(), toy_profile)


@pytest.fixture
def varuna(tiny_cluster, toy_model, tiny_fabric, toy_profile):
    return VarunaConfigurator(tiny_cluster, toy_model,
                              tiny_fabric.nominal_bandwidth(), toy_profile)


class TestAmp:
    def test_ranked_by_estimate(self, amp):
        recs = amp.search(32)
        estimates = [r.estimated_latency_s for r in recs]
        assert estimates == sorted(estimates)

    def test_no_memory_filtering(self, amp, tiny_cluster, toy_model):
        # AMP must include configurations that do not fit: that is the
        # paper's §VI critique.
        recs = amp.search(32)
        usages = [simulated_max_memory_bytes(toy_model, r.config,
                                             tiny_cluster)
                  for r in recs]
        assert len(recs) == len(usages)  # nothing dropped

    def test_top_k(self, amp):
        assert len(amp.search(32, top_k=3)) == 3

    def test_micro_batch_restriction(self, amp):
        recs = amp.search(32, micro_batches=[1])
        assert recs
        assert all(r.config.micro_batch == 1 for r in recs)

    def test_first_runnable_respects_patience(self, amp):
        assert amp.first_runnable(32, lambda c: False, patience=5) is None

    def test_first_runnable_returns_first_fit(self, amp):
        recs = amp.search(32)
        target = recs[2].config
        pick = amp.first_runnable(32, lambda c: c == target)
        assert pick is not None
        assert pick.config == target

    def test_estimates_are_mapping_free(self, amp):
        # AMP's estimate must not depend on anything but the config.
        c = ParallelConfig(pp=2, tp=4, dp=2, micro_batch=2, global_batch=32)
        assert amp.estimate_latency(c) == amp.estimate_latency(c)


class TestVaruna:
    def test_tp_always_one(self, varuna):
        recs = varuna.search(32)
        assert recs
        assert all(r.config.tp == 1 for r in recs)

    def test_memory_screen_uses_analytic_estimate(self, varuna, toy_model):
        for rec in varuna.search(32):
            assert rec.estimated_memory_bytes == pytest.approx(
                analytic_memory_estimate_bytes(toy_model, rec.config))
            assert rec.estimated_memory_bytes \
                <= varuna.cluster.gpu_memory_bytes

    def test_recompute_mode_flags_configs(self, varuna):
        recs = varuna.search(32, recompute=True)
        assert recs
        assert all(r.config.recompute for r in recs)

    def test_fallback_prefers_plain_configs(self, varuna):
        pick = varuna.search_with_fallback(32, lambda c: True)
        assert pick is not None
        assert not pick.config.recompute

    def test_fallback_switches_to_recompute(self, varuna):
        pick = varuna.search_with_fallback(
            32, lambda c: c.recompute)  # only recompute runs fit
        assert pick is not None
        assert pick.config.recompute

    def test_fallback_gives_up_gracefully(self, varuna):
        assert varuna.search_with_fallback(32, lambda c: False) is None


class TestMegatronTuner:
    def test_fixes_tp_to_node_size(self, tiny_fabric, toy_model):
        runner = ClusterRunner(tiny_fabric, toy_model)
        tuner = MegatronLmTuner(runner)
        for config in tuner.candidate_configs(32):
            assert config.tp == tiny_fabric.spec.gpus_per_node

    def test_expert_order(self, tiny_fabric, toy_model):
        runner = ClusterRunner(tiny_fabric, toy_model)
        configs = MegatronLmTuner(runner).candidate_configs(32)
        # Large microbatches first; ties broken by shallow pipelines.
        assert configs[0].micro_batch >= configs[-1].micro_batch

    def test_tune_returns_runnable_best(self, tiny_fabric, toy_model):
        runner = ClusterRunner(tiny_fabric, toy_model)
        best, trials = MegatronLmTuner(runner, max_trials=6).tune(32)
        assert not best.oom
        runnable = [t.run.time_per_iter_s for t in trials if not t.run.oom]
        assert best.time_per_iter_s == min(runnable)

    def test_trial_budget_respected(self, tiny_fabric, toy_model):
        runner = ClusterRunner(tiny_fabric, toy_model)
        _, trials = MegatronLmTuner(runner, max_trials=3).tune(32)
        assert len(trials) <= 3

    def test_rejects_bad_budget(self, tiny_fabric, toy_model):
        runner = ClusterRunner(tiny_fabric, toy_model)
        with pytest.raises(ValueError):
            MegatronLmTuner(runner, max_trials=0)


class TestAnalyticMemoryBaseline:
    def test_underestimates_ground_truth(self, tiny_cluster, toy_model):
        # The Fig. 7 phenomenon, in miniature.
        config = ParallelConfig(pp=2, tp=2, dp=4, micro_batch=2,
                                global_batch=16)
        estimate = analytic_memory_estimate_bytes(toy_model, config)
        actual = simulated_max_memory_bytes(toy_model, config, tiny_cluster)
        assert estimate < actual

    def test_scales_down_with_tp(self, toy_model):
        a = analytic_memory_estimate_bytes(
            toy_model, ParallelConfig(1, 1, 16, 1, 16))
        b = analytic_memory_estimate_bytes(
            toy_model, ParallelConfig(1, 4, 4, 1, 16))
        assert b < a

    def test_ignores_in_flight_depth(self, toy_model):
        # Single-microbatch activation accounting: pp changes static
        # memory only through the stage split, never through in-flight
        # multiplicity — so estimates with equal stage shapes match.
        a = analytic_memory_estimate_bytes(
            toy_model, ParallelConfig(2, 1, 8, 1, 16))
        b = analytic_memory_estimate_bytes(
            toy_model, ParallelConfig(2, 1, 8, 1, 64))
        assert a == pytest.approx(b)

    def test_recompute_insensitive(self, toy_model):
        # The baseline counts a single microbatch's activations, so it
        # barely notices recomputation (only the boundary copies move)
        # — one more way it misjudges real memory behaviour.
        plain = ParallelConfig(4, 1, 4, 2, 32)
        a = analytic_memory_estimate_bytes(toy_model, plain)
        b = analytic_memory_estimate_bytes(toy_model, plain.with_recompute())
        assert abs(b - a) / a < 0.1

"""Fabric and bandwidth-matrix behaviour."""

import numpy as np
import pytest

from repro.cluster import Fabric, HeterogeneityModel
from repro.cluster.fabric import BandwidthMatrix
from repro.cluster.presets import mid_range_cluster


@pytest.fixture
def spec():
    return mid_range_cluster(n_nodes=4)


@pytest.fixture
def fabric(spec):
    return Fabric(spec, seed=11)


class TestBandwidthMatrixType:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            BandwidthMatrix(matrix=np.ones((2, 3)), alpha=np.ones((2, 3)))

    def test_rejects_alpha_shape_mismatch(self):
        with pytest.raises(ValueError):
            BandwidthMatrix(matrix=np.ones((2, 2)), alpha=np.ones((3, 3)))

    def test_between(self):
        m = np.array([[np.inf, 5.0], [4.0, np.inf]])
        bw = BandwidthMatrix(matrix=m, alpha=np.zeros((2, 2)))
        assert bw.between(0, 1) == 5.0
        assert bw.between(1, 0) == 4.0

    def test_transfer_time_self_is_zero(self):
        m = np.full((2, 2), 10.0)
        bw = BandwidthMatrix(matrix=m, alpha=np.zeros((2, 2)))
        assert bw.transfer_time(1e9, 0, 0) == 0.0

    def test_transfer_time_includes_alpha(self):
        m = np.full((2, 2), 1.0)
        bw = BandwidthMatrix(matrix=m, alpha=np.full((2, 2), 1e-5))
        assert bw.transfer_time(1e9, 0, 1) == pytest.approx(1.0 + 1e-5)

    def test_min_over_group(self):
        m = np.array([[np.inf, 5.0, 2.0],
                      [5.0, np.inf, 8.0],
                      [2.0, 8.0, np.inf]])
        bw = BandwidthMatrix(matrix=m, alpha=np.zeros((3, 3)))
        assert bw.min_over_group([0, 1, 2]) == 2.0
        assert bw.min_over_group([1, 2]) == 8.0

    def test_min_over_singleton_is_inf(self):
        m = np.full((2, 2), 1.0)
        bw = BandwidthMatrix(matrix=m, alpha=np.zeros((2, 2)))
        assert bw.min_over_group([0]) == float("inf")

    def test_max_alpha_over_group(self):
        m = np.full((2, 2), 1.0)
        alpha = np.array([[0.0, 2e-5], [1e-5, 0.0]])
        bw = BandwidthMatrix(matrix=m, alpha=alpha)
        assert bw.max_alpha_over_group([0, 1]) == 2e-5


class TestFabric:
    def test_matrix_shape(self, fabric, spec):
        assert fabric.bandwidth().matrix.shape == (spec.n_gpus, spec.n_gpus)

    def test_diagonal_infinite(self, fabric):
        assert np.all(np.isinf(np.diag(fabric.bandwidth().matrix)))

    def test_intra_node_faster_than_inter(self, fabric, spec):
        bw = fabric.bandwidth()
        intra = bw.between(0, 1)   # same node
        inter = bw.between(0, spec.gpus_per_node)  # adjacent nodes
        assert intra > 5 * inter

    def test_attained_below_nominal(self, fabric, spec):
        bw = fabric.bandwidth()
        nominal_inter = spec.inter_link.bandwidth_gb_s
        inter = bw.between(0, spec.gpus_per_node)
        assert inter < nominal_inter

    def test_deterministic_given_seed(self, spec):
        a = Fabric(spec, seed=5).bandwidth().matrix
        b = Fabric(spec, seed=5).bandwidth().matrix
        assert np.array_equal(a, b)

    def test_node_pair_shares_nic_path(self, fabric, spec):
        # All GPU pairs across one node pair attain the same bandwidth.
        bw = fabric.bandwidth()
        k = spec.gpus_per_node
        vals = {bw.between(i, k + j) for i in range(k) for j in range(k)}
        assert len(vals) == 1

    def test_day_changes_matrix(self, fabric):
        a = fabric.bandwidth_at_day(0.0).matrix
        b = fabric.bandwidth_at_day(5.0).matrix
        assert not np.array_equal(a, b)


class TestNominalBandwidth:
    def test_uniform_inter(self, fabric, spec):
        bw = fabric.nominal_bandwidth()
        k = spec.gpus_per_node
        assert bw.between(0, k) == spec.inter_link.bandwidth_gb_s
        assert bw.between(0, 2 * k) == spec.inter_link.bandwidth_gb_s

    def test_uniform_intra(self, fabric, spec):
        bw = fabric.nominal_bandwidth()
        assert bw.between(0, 1) == spec.node.intra_link.bandwidth_gb_s

    def test_nominal_dominates_attained(self, fabric):
        actual = fabric.bandwidth().matrix
        nominal = fabric.nominal_bandwidth().matrix
        finite = np.isfinite(actual)
        assert np.all(nominal[finite] >= actual[finite] * 0.999)

"""Pod-structured fabric model and multi-restart annealing."""

import numpy as np
import pytest

from repro.cluster import Fabric, PoddedHeterogeneityModel
from repro.cluster.presets import mid_range_cluster
from repro.core.annealing import SAOptions, anneal_mapping, anneal_mapping_with_restarts
from repro.parallel import WorkerGrid, sequential_mapping


@pytest.fixture
def spec():
    return mid_range_cluster(n_nodes=8)


@pytest.fixture
def podded():
    return PoddedHeterogeneityModel(nodes_per_pod=4, oversubscription=2.0)


class TestPoddedModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoddedHeterogeneityModel(oversubscription=0.5)
        with pytest.raises(ValueError):
            PoddedHeterogeneityModel(nodes_per_pod=0)

    def test_pod_of(self, podded):
        assert podded.pod_of(0) == 0
        assert podded.pod_of(3) == 0
        assert podded.pod_of(4) == 1

    def test_n_pods_rounds_up(self, podded):
        assert podded.n_pods(mid_range_cluster(n_nodes=8)) == 2
        assert podded.n_pods(mid_range_cluster(n_nodes=5)) == 2

    def test_cross_pod_slower(self, spec, podded):
        state = podded.sample_inter_node(spec, seed=0)
        eff = state.efficiency
        intra = [eff[i, j] for i in range(4) for j in range(4) if i != j]
        cross = [eff[i, j] for i in range(4) for j in range(4, 8)]
        assert np.mean(cross) < np.mean(intra) / 1.5

    def test_composes_with_base_spread(self, spec, podded):
        # Same-pod pairs still show the base model's random spread.
        eff = podded.sample_inter_node(spec, seed=0).efficiency
        intra = [eff[i, j] for i in range(4) for j in range(4) if i != j]
        assert max(intra) / min(intra) > 1.1

    def test_oversubscription_one_matches_base(self, spec):
        from repro.cluster import HeterogeneityModel
        flat = HeterogeneityModel()
        pod1 = PoddedHeterogeneityModel(nodes_per_pod=4,
                                        oversubscription=1.0)
        a = flat.sample_inter_node(spec, seed=3).efficiency
        b = pod1.sample_inter_node(spec, seed=3).efficiency
        assert np.allclose(a, b)

    def test_fabric_integration(self, spec, podded):
        fabric = Fabric(spec, heterogeneity=podded, seed=1)
        bw = fabric.bandwidth()
        k = spec.gpus_per_node
        same_pod = bw.between(0, 1 * k)       # node 0 -> node 1
        cross_pod = bw.between(0, 5 * k)      # node 0 -> node 5
        assert cross_pod < same_pod

    def test_dedication_exploits_pods(self, spec, podded):
        # A pipeline placed across pods should be improvable by
        # pulling its chain into one pod.
        from repro.core.latency_model import pipette_latency
        from repro.model import get_model
        from repro.parallel import ParallelConfig
        from repro.profiling import profile_compute

        fabric = Fabric(spec, heterogeneity=podded, seed=5)
        model = get_model("gpt-small")
        profile = profile_compute(model, spec, noise_sigma=0.0)
        config = ParallelConfig(pp=4, tp=8, dp=2, micro_batch=2,
                                global_batch=32)
        mapping = sequential_mapping(WorkerGrid(4, 8, 2), spec)
        bw = fabric.bandwidth()
        result = anneal_mapping(
            mapping,
            lambda m: pipette_latency(model, config, m, bw, profile),
            SAOptions(max_iterations=2500, seed=2),
        )
        assert result.improvement > 0.02  # pods give real headroom


class TestRestarts:
    def _objective(self, weights):
        def fn(mapping):
            return float(sum(weights[b, s]
                             for b, s in enumerate(mapping.block_to_slot)))
        return fn

    def test_never_worse_than_single_run(self, spec):
        grid = WorkerGrid(pp=4, tp=8, dp=2)
        mapping = sequential_mapping(grid, spec)
        rng = np.random.default_rng(0)
        objective = self._objective(rng.normal(size=(8, 8)))
        opts = SAOptions(max_iterations=300, seed=4)
        single = anneal_mapping(mapping, objective, opts)
        multi = anneal_mapping_with_restarts(mapping, objective, opts,
                                             n_restarts=3)
        assert multi.value <= single.value + 1e-12

    def test_improvement_reported_vs_callers_start(self, spec):
        grid = WorkerGrid(pp=4, tp=8, dp=2)
        mapping = sequential_mapping(grid, spec)
        rng = np.random.default_rng(1)
        objective = self._objective(rng.normal(size=(8, 8)))
        result = anneal_mapping_with_restarts(
            mapping, objective, SAOptions(max_iterations=200, seed=1),
            n_restarts=2)
        assert result.initial_value == pytest.approx(objective(mapping))

    def test_rejects_bad_restarts(self, spec):
        grid = WorkerGrid(pp=4, tp=8, dp=2)
        mapping = sequential_mapping(grid, spec)
        with pytest.raises(ValueError):
            anneal_mapping_with_restarts(mapping, lambda m: 0.0,
                                         n_restarts=0)

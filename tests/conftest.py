"""Shared fixtures: a small, fast cluster/model world for unit tests.

The "tiny" fixtures are deliberately small (4 nodes x 4 GPUs, a toy
transformer) so engine simulations and searches run in milliseconds;
the "paper" fixtures use the real Table I presets for the handful of
integration tests that need them.
"""

from __future__ import annotations

import re

import pytest

from repro.cluster import Fabric, HeterogeneityModel, NetworkProfiler
from repro.cluster.topology import ClusterSpec, GpuSpec, LinkSpec, NodeSpec
from repro.model import get_model
from repro.parallel import ParallelConfig, WorkerGrid, sequential_mapping
from repro.profiling import ComputeTimeModel, profile_compute
from repro.units import GIB


@pytest.fixture
def tiny_cluster() -> ClusterSpec:
    """4 nodes x 4 GPUs with small memory, for fast OOM-boundary tests."""
    gpu = GpuSpec(name="TestGPU", memory_bytes=4 * GIB, peak_flops=10e12,
                  achievable_fraction=0.5, hbm_gb_s=500.0)
    node = NodeSpec(gpus_per_node=4, gpu=gpu,
                    intra_link=LinkSpec("TestNVLink", 100.0, alpha_s=1e-6))
    return ClusterSpec(name="tiny", n_nodes=4, node=node,
                       inter_link=LinkSpec("TestIB", 10.0, alpha_s=1e-5))


@pytest.fixture
def tiny_fabric(tiny_cluster) -> Fabric:
    """One deterministic heterogeneity draw over the tiny cluster."""
    return Fabric(tiny_cluster, heterogeneity=HeterogeneityModel(), seed=42)


@pytest.fixture
def toy_model():
    """The 4-layer toy transformer from the catalog."""
    return get_model("gpt-toy")


@pytest.fixture
def toy_profile(toy_model, tiny_cluster):
    """Noise-free compute profile of the toy model on the tiny cluster."""
    return profile_compute(toy_model, tiny_cluster, noise_sigma=0.0)


@pytest.fixture
def toy_config() -> ParallelConfig:
    """A 16-GPU configuration matching the tiny cluster."""
    return ParallelConfig(pp=2, tp=4, dp=2, micro_batch=2, global_batch=16)


@pytest.fixture
def toy_mapping(toy_config, tiny_cluster):
    """Sequential mapping of the toy configuration."""
    grid = WorkerGrid(pp=toy_config.pp, tp=toy_config.tp, dp=toy_config.dp)
    return sequential_mapping(grid, tiny_cluster)


@pytest.fixture
def tiny_network(tiny_fabric):
    """Profiled bandwidth matrix of the tiny fabric."""
    return NetworkProfiler(n_rounds=2).profile(tiny_fabric, seed=7)


@pytest.fixture
def tiny_compute(tiny_cluster) -> ComputeTimeModel:
    """Compute-time model of the tiny cluster's GPU."""
    return ComputeTimeModel(gpu=tiny_cluster.node.gpu)


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict:
    """Prometheus text format -> ``{(name, labels frozenset): value}``.

    Deliberately strict: every non-comment line must be a well-formed
    sample, every sample's metric must have been declared by ``# TYPE``
    first (histogram ``_bucket``/``_sum``/``_count`` suffixes resolve
    to their family), so a test that parses the page also validates
    the exposition format.
    """
    declared: "set[str]" = set()
    samples: dict = {}
    for line in text.splitlines():
        if not line.strip():
            raise AssertionError("blank line inside exposition")
        if line.startswith("# TYPE "):
            declared.add(line.split()[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name, labels, value = match.groups()
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in declared or family in declared, \
            f"sample {name} has no preceding # TYPE"
        pairs = frozenset(
            (label, raw.replace('\\"', '"').replace("\\n", "\n")
             .replace("\\\\", "\\"))
            for label, raw in _LABEL_PAIR_RE.findall(labels or ""))
        key = (name, pairs)
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = float(value.replace("+Inf", "inf"))
    return samples


def metric_value(samples: dict, name: str, **labels) -> float:
    """One sample from :func:`parse_prometheus` output (0.0 if absent)."""
    return samples.get((name, frozenset(labels.items())), 0.0)

"""The schedule layer end to end: engine, payloads, determinism, search.

These tests pin the contracts the schedule-instruction refactor must
honor: the generic engine executes every registered schedule to
completion, version-1 payloads written before the ``schedule`` field
existed rehydrate as 1F1B, pinned-1F1B searches stay byte-identical,
and on a communication-light, compute-heavy fixture the configurator
ranks interleaved 1F1B above flat 1F1B — with the simulator agreeing.
"""

import asyncio
import copy
import json

import pytest
from conftest import metric_value, parse_prometheus

from repro.cluster import Fabric, HeterogeneityModel, NetworkProfiler
from repro.cluster.topology import ClusterSpec, GpuSpec, LinkSpec, NodeSpec
from repro.core import PipetteConfigurator, PipetteOptions
from repro.core.configurator import (
    PAYLOAD_VERSION,
    PipetteResult,
    READABLE_PAYLOAD_VERSIONS,
)
from repro.model.transformer import TransformerConfig
from repro.parallel import ParallelConfig, WorkerGrid, sequential_mapping
from repro.profiling import profile_compute
from repro.sim.engine import simulate_iteration
from repro.sim.memory_sim import simulated_max_memory_bytes, simulated_memory_by_stage
from repro.sim.schedule import (
    BACKWARD,
    FORWARD,
    build_schedule,
    pipeline_critical_time,
    registered_schedules,
)
from repro.units import GIB

FAST = PipetteOptions(use_worker_dedication=False)

_STOPWATCH_FIELDS = ("memory_check_s", "annealing_s", "total_s")


def _payload_bytes(payload: dict) -> str:
    payload = dict(payload)
    for field in _STOPWATCH_FIELDS:
        payload.pop(field, None)
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------- engine x schedules


class TestEngineExecutesEverySchedule:
    """The generic engine runs any registered schedule to completion."""

    @pytest.mark.parametrize("name", registered_schedules())
    def test_completes_all_microbatch_work(self, name, toy_model,
                                           tiny_cluster, tiny_fabric,
                                           toy_mapping):
        # pp=2 with n_mb=4 is feasible for every shipped schedule on
        # the 4-layer toy model (interleaved needs pp*degree <= layers).
        config = ParallelConfig(pp=2, tp=4, dp=2, micro_batch=2,
                                global_batch=16, schedule=name)
        result = simulate_iteration(toy_model, config, toy_mapping,
                                    tiny_fabric.bandwidth(), seed=3,
                                    record_timeline=True)
        assert result.time_s > 0.0
        sched = build_schedule(name, 2, config.n_microbatches)
        # Each DP replica runs the full schedule on every stage.
        expected = config.n_microbatches * sched.degree * config.dp
        for stage in range(2):
            events = [e for e in result.timeline if e[1] == stage]
            fwd = sum(1 for e in events if e[2] == FORWARD)
            bwd = sum(1 for e in events if e[2] == BACKWARD)
            assert (fwd, bwd) == (expected, expected)

    @pytest.mark.parametrize("name", registered_schedules())
    def test_explicit_schedule_overrides_config(self, name, toy_model,
                                                tiny_cluster, tiny_fabric,
                                                toy_mapping, toy_config):
        # jitter off: the engine's noise stream is keyed on the
        # config's describe(), which the override does not change.
        pinned = simulate_iteration(
            toy_model, toy_config.with_schedule(name), toy_mapping,
            tiny_fabric.bandwidth(), jitter_sigma=0.0, seed=3)
        overridden = simulate_iteration(
            toy_model, toy_config, toy_mapping, tiny_fabric.bandwidth(),
            schedule=name, jitter_sigma=0.0, seed=3)
        assert pinned.time_s == overridden.time_s

    def test_gpipe_holds_more_memory_than_1f1b(self, toy_model,
                                               tiny_cluster):
        # Deep pipeline, many microbatches: GPipe stores every
        # microbatch's activations while 1F1B caps at pp - stage.
        config = ParallelConfig(pp=4, tp=4, dp=1, micro_batch=1,
                                global_batch=8)
        efficient = simulated_memory_by_stage(toy_model, config,
                                              tiny_cluster, schedule="1f1b")
        unaware = simulated_memory_by_stage(toy_model, config,
                                            tiny_cluster, schedule="gpipe")
        assert unaware[0] > efficient[0]


# --------------------------------------------------- payload v1 migration


@pytest.fixture
def searched(tiny_cluster, toy_model, tiny_network, toy_profile):
    configurator = PipetteConfigurator(
        tiny_cluster, toy_model, tiny_network.bandwidth, toy_profile,
        None, options=FAST)
    return configurator.search(32)


class TestPayloadMigration:
    def test_current_payload_is_version_3(self, searched):
        payload = searched.to_payload()
        assert payload["version"] == PAYLOAD_VERSION == 3
        for entry in payload["ranked"]:
            assert entry["config"]["schedule"] == "1f1b"
            assert isinstance(entry["portfolio"], list)

    def test_v1_payload_rehydrates_as_1f1b(self, searched):
        # A version-1 payload predates the schedule field entirely.
        v1 = copy.deepcopy(searched.to_payload())
        v1["version"] = 1
        for entry in v1["ranked"]:
            del entry["config"]["schedule"]
            del entry["portfolio"]
        restored = PipetteResult.from_payload(v1)
        assert all(e.config.schedule == "1f1b" for e in restored.ranked)
        assert all(e.portfolio == () for e in restored.ranked)
        assert restored.best is restored.ranked[0]

    def test_v2_payload_rehydrates_with_empty_portfolio(self, searched):
        # A version-2 payload has schedules but predates portfolios.
        v2 = copy.deepcopy(searched.to_payload())
        v2["version"] = 2
        for entry in v2["ranked"]:
            del entry["portfolio"]
        restored = PipetteResult.from_payload(v2)
        assert all(e.portfolio == () for e in restored.ranked)
        assert restored.best is restored.ranked[0]

    def test_v1_round_trip_is_stable(self, searched):
        # Migrating v1 -> v3 must be a fixed point: serializing the
        # rehydrated result and round-tripping again changes nothing.
        v1 = copy.deepcopy(searched.to_payload())
        v1["version"] = 1
        for entry in v1["ranked"]:
            del entry["config"]["schedule"]
            del entry["portfolio"]
        once = PipetteResult.from_payload(v1).to_payload()
        assert once["version"] == PAYLOAD_VERSION
        twice = PipetteResult.from_payload(
            json.loads(json.dumps(once))).to_payload()
        assert json.dumps(once, sort_keys=True) \
            == json.dumps(twice, sort_keys=True)

    def test_unreadable_version_rejected(self, searched):
        bad = searched.to_payload()
        bad["version"] = 99
        with pytest.raises(ValueError, match="reads versions 1, 2, 3"):
            PipetteResult.from_payload(bad)
        assert READABLE_PAYLOAD_VERSIONS == (1, 2, 3)


# -------------------------------------------------- determinism regression


class TestPinned1F1BDeterminism:
    def test_search_twice_is_byte_identical(self, tiny_cluster, toy_model,
                                            tiny_network, toy_profile):
        def run():
            configurator = PipetteConfigurator(
                tiny_cluster, toy_model, tiny_network.bandwidth,
                toy_profile, None, options=FAST)
            return _payload_bytes(configurator.search(32).to_payload())

        assert run() == run()

    def test_1f1b_critical_time_matches_legacy_formula(self):
        # The pre-refactor latency model computed the hidden critical
        # path inline; the schedule registry must reproduce it bit for
        # bit so pinned-1F1B rankings cannot move.
        for pp in (1, 2, 3, 4, 8):
            for n_mb in (1, 2, 4, 7, 16):
                for c_tp in (1e-4, 3.7e-3, 0.21):
                    for t_pp in (0.0, 1e-5, 4.2e-3):
                        t_bubble = pp * c_tp + t_pp
                        t_straggler = (pp - 1) * c_tp
                        legacy = t_bubble * (n_mb / pp) + t_straggler
                        assert pipeline_critical_time(
                            "1f1b", pp, n_mb, c_tp, t_pp) == legacy

    def test_default_schedule_describe_unchanged(self):
        config = ParallelConfig(pp=2, tp=4, dp=2, micro_batch=2,
                                global_batch=16)
        assert config.describe() == "pp2-tp4-dp2-mb2"
        assert config.with_schedule("gpipe").describe() \
            == "pp2-tp4-dp2-mb2-gpipe"


# ------------------------------------------- search-dimension acceptance


def _hetero_world():
    """A compute-heavy, fast-interconnect world where interleaving wins.

    Eight layers over two nodes of four GPUs with only 0.5 GiB each:
    unpipelined configs OOM, and with fast links the fill/drain
    straggler bubble — which interleaving halves — dominates the extra
    boundary hops it introduces.
    """
    model = TransformerConfig("deep-toy", n_layers=8, hidden_size=512,
                              n_heads=8, seq_length=256, vocab_size=1024)
    gpu = GpuSpec(name="TestGPU", memory_bytes=int(0.5 * GIB),
                  peak_flops=10e12, achievable_fraction=0.5, hbm_gb_s=500.0)
    node = NodeSpec(gpus_per_node=4, gpu=gpu,
                    intra_link=LinkSpec("TestNVLink", 100.0, alpha_s=1e-6))
    cluster = ClusterSpec(name="hetero", n_nodes=2, node=node,
                          inter_link=LinkSpec("TestIB", 50.0, alpha_s=1e-5))
    fabric = Fabric(cluster, heterogeneity=HeterogeneityModel(), seed=42)
    return model, cluster, fabric


class _OracleEstimator:
    """Memory estimator backed by the ground truth (test double)."""

    soft_margin = 0.92

    def __init__(self, cluster, seed=5):
        self.cluster = cluster
        self.seed = seed

    def predict_bytes(self, model, config, n_gpus=None):
        return simulated_max_memory_bytes(model, config, self.cluster,
                                          seed=self.seed)


class TestScheduleAsSearchDimension:
    def test_interleaved_outranks_1f1b_and_simulator_agrees(self):
        model, cluster, fabric = _hetero_world()
        network = NetworkProfiler(n_rounds=2).profile(fabric, seed=7)
        profile = profile_compute(model, cluster, noise_sigma=0.0)
        configurator = PipetteConfigurator(
            cluster, model, network.bandwidth, profile,
            _OracleEstimator(cluster), options=FAST)
        result = configurator.search(8, schedules=("1f1b",
                                                   "interleaved_1f1b"))
        assert result.best is not None
        assert result.best.config.schedule == "interleaved_1f1b"
        schedules = {e.config.schedule for e in result.ranked}
        assert "1f1b" in schedules  # the flat schedule lost, not vanished

        # The simulator oracle confirms the ordering on the winner's
        # shape against the attained (not just profiled) bandwidth.
        base = result.best.config
        grid = WorkerGrid(pp=base.pp, tp=base.tp, dp=base.dp)
        mapping = sequential_mapping(grid, cluster)
        times = {
            name: simulate_iteration(model, base.with_schedule(name),
                                     mapping, fabric.bandwidth(),
                                     seed=3).time_s
            for name in ("1f1b", "interleaved_1f1b")
        }
        assert times["interleaved_1f1b"] < times["1f1b"]

    def test_default_sweep_stays_1f1b_only(self, tiny_cluster, toy_model,
                                           tiny_network, toy_profile):
        configurator = PipetteConfigurator(
            tiny_cluster, toy_model, tiny_network.bandwidth, toy_profile,
            None, options=FAST)
        result = configurator.search(32)
        assert {e.config.schedule for e in result.ranked} == {"1f1b"}


# ----------------------------------------------------- HTTP end to end


class TestHttpScheduleField:
    def test_plan_with_interleaved_schedule(self, toy_model):
        from test_service_http import _Server, _json, _registry, _request

        payload = {"model": "gpt-toy", "global_batch": 32,
                   "cluster": "alpha", "schedule": "interleaved_1f1b"}

        async def main():
            async with _Server(_registry()) as server:
                plan = await _request(server.port, "POST", "/v1/plan",
                                      payload)
                metrics = await _request(server.port, "GET", "/metrics")
                return plan, metrics

        (status, _, body), (_, _, metrics_body) = asyncio.run(main())
        assert status == 200
        out = _json(body)
        assert out["schedule"] == "interleaved_1f1b"
        assert out["config"].endswith("-interleaved_1f1b")
        samples = parse_prometheus(metrics_body.decode("utf-8"))
        assert metric_value(samples, "pipette_plans_by_schedule_total",
                            cluster="alpha",
                            schedule="interleaved_1f1b") == 1.0

    def test_unknown_schedule_is_a_request_error(self, toy_model):
        from test_service_http import _Server, _json, _registry, _request

        async def main():
            async with _Server(_registry()) as server:
                return await _request(
                    server.port, "POST", "/v1/plan",
                    {"model": "gpt-toy", "global_batch": 32,
                     "cluster": "alpha", "schedule": "zigzag"})

        status, _, body = asyncio.run(main())
        assert status == 400
        assert "registered schedules" in _json(body)["error"]

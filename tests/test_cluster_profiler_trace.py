"""Network profiler and the Fig. 3 latency trace."""

import numpy as np
import pytest

from repro.cluster import Fabric, NetworkProfiler, collect_latency_trace
from repro.cluster.presets import high_end_cluster, mid_range_cluster
from repro.cluster.trace import chain_latency_s


@pytest.fixture
def fabric():
    return Fabric(mid_range_cluster(n_nodes=8), seed=3)


class TestProfiler:
    def test_measured_close_to_truth(self, fabric):
        truth = fabric.bandwidth().matrix
        measured = NetworkProfiler(n_rounds=8, noise_sigma=0.01).profile(
            fabric, seed=0).bandwidth.matrix
        mask = np.isfinite(truth)
        rel = np.abs(measured[mask] - truth[mask]) / truth[mask]
        assert rel.max() < 0.05

    def test_more_rounds_reduce_noise(self, fabric):
        truth = fabric.bandwidth().matrix
        mask = np.isfinite(truth)

        def err(rounds):
            m = NetworkProfiler(n_rounds=rounds, noise_sigma=0.05).profile(
                fabric, seed=1).bandwidth.matrix
            return np.abs(m[mask] - truth[mask]).mean()

        assert err(16) < err(1)

    def test_deterministic(self, fabric):
        p = NetworkProfiler()
        a = p.profile(fabric, seed=2).bandwidth.matrix
        b = p.profile(fabric, seed=2).bandwidth.matrix
        assert np.array_equal(a, b)

    def test_diagonal_stays_infinite(self, fabric):
        m = NetworkProfiler().profile(fabric, seed=0).bandwidth.matrix
        assert np.all(np.isinf(np.diag(m)))

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            NetworkProfiler(n_rounds=0)


class TestProfilingCost:
    def test_grows_with_nodes(self):
        p = NetworkProfiler()
        assert p.profiling_cost(mid_range_cluster(16)) \
            > p.profiling_cost(mid_range_cluster(8))

    def test_table2_scale_mid_range(self):
        # Table II: ~58 s at 8 nodes, ~120 s at 16 nodes.
        p = NetworkProfiler(n_rounds=4)
        assert 30 < p.profiling_cost(mid_range_cluster(8)) < 90
        assert 70 < p.profiling_cost(mid_range_cluster(16)) < 180

    def test_table2_scale_high_end(self):
        # Table II: ~114 s at 8 nodes with the finer HDR sweep.
        p = NetworkProfiler(n_rounds=8)
        assert 70 < p.profiling_cost(high_end_cluster(8)) < 180


class TestChainLatency:
    def test_positive(self, fabric):
        bw = fabric.bandwidth()
        t = chain_latency_s(bw, [0, 1, 2], 2**20, fabric.spec.gpus_per_node)
        assert t > 0

    def test_more_hops_cost_more(self, fabric):
        bw = fabric.bandwidth()
        k = fabric.spec.gpus_per_node
        short = chain_latency_s(bw, [0, 1], 2**20, k)
        long = chain_latency_s(bw, [0, 1, 2, 3], 2**20, k)
        assert long > short

    def test_order_matters_on_heterogeneous_fabric(self, fabric):
        bw = fabric.bandwidth()
        k = fabric.spec.gpus_per_node
        orders = [[0, 1, 2, 3], [3, 1, 0, 2], [2, 0, 3, 1]]
        times = {round(chain_latency_s(bw, o, 2**26, k), 9) for o in orders}
        assert len(times) > 1


class TestTrace:
    def test_shapes(self, fabric):
        trace = collect_latency_trace(fabric, n_days=5, n_orderings=8, seed=0)
        assert trace.latencies_ms.shape == (5, 5)
        assert len(trace.days) == 5

    def test_quantiles_ordered(self, fabric):
        # Legend order Q(100%) .. Q(0%): each row must be non-increasing.
        trace = collect_latency_trace(fabric, n_days=4, n_orderings=16, seed=0)
        diffs = np.diff(trace.latencies_ms, axis=1)
        assert np.all(diffs <= 1e-9)

    def test_spread_ratio_above_one(self, fabric):
        trace = collect_latency_trace(fabric, n_days=4, n_orderings=16, seed=0)
        assert trace.spread_ratio() > 1.05

    def test_rows_format(self, fabric):
        trace = collect_latency_trace(fabric, n_days=2, n_orderings=4, seed=0)
        rows = trace.rows()
        assert len(rows) == 2
        assert "Q(100%)" in rows[0]
        assert "Q(0%)" in rows[0]

    def test_rejects_chain_longer_than_cluster(self, fabric):
        with pytest.raises(ValueError):
            collect_latency_trace(fabric, n_nodes_in_chain=99)

    def test_rejects_single_ordering(self, fabric):
        with pytest.raises(ValueError):
            collect_latency_trace(fabric, n_orderings=1)

"""The incremental objective contract: delta moves, batches, portfolios.

PR 8's refactor rests on three exactness claims, each load-bearing for
plan-cache byte identity:

* ``delta_for_move`` equals a full ``evaluate_perm`` re-score *exactly*
  (not approximately) for every move kind, shape, and ablation corner;
* ``evaluate_batch`` rows are bit-identical to per-row
  ``evaluate_perm`` calls;
* the rewritten annealer — delta path, portfolio bookkeeping, flight
  recorder — draws the same RNG stream and lands the same floats as
  ``anneal_mapping_reference``.

The suites below sweep randomized move walks over every (pp, tp, dp)
factorization of the tiny cluster (including the degenerate pp==1,
tp==1, dp==1 axes), with recompute and the latency-model ablation
switches on and off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Fabric, HeterogeneityModel
from repro.core.annealing import (
    SAOptions,
    anneal_mapping,
    anneal_mapping_reference,
    anneal_mapping_with_restarts,
    apply_move,
)
from repro.core.latency_kernel import LatencyKernel, pipette_kernel
from repro.core.latency_model import LatencyModelOptions, latency_with_options
from repro.model import get_model
from repro.obs.recorder import FlightRecorder
from repro.parallel import ParallelConfig, WorkerGrid, sequential_mapping
from repro.profiling import profile_compute

#: Every (pp, tp, dp) factorization of the 16-GPU tiny cluster whose TP
#: groups fit a 4-GPU node and whose stages fit the toy model's
#: 4 layers — includes all three degenerate axes.
SHAPES = [
    (1, 4, 4), (2, 4, 2), (4, 4, 1),
    (1, 2, 8), (2, 2, 4), (4, 2, 2),
    (1, 1, 16), (2, 1, 8), (4, 1, 4),
]

#: Ablation corners exercised by the exactness sweeps.
OPTION_DRAWS = [
    LatencyModelOptions(),
    LatencyModelOptions(dp_exposure_aware=True),
    LatencyModelOptions(dp_exposure_aware=True, collective_efficiency=0.88),
    LatencyModelOptions(hidden_critical_path=False),
]


@pytest.fixture(scope="module")
def tiny_cluster_module():
    from repro.cluster.topology import ClusterSpec, GpuSpec, LinkSpec, NodeSpec
    from repro.units import GIB

    gpu = GpuSpec(name="TestGPU", memory_bytes=4 * GIB, peak_flops=10e12,
                  achievable_fraction=0.5, hbm_gb_s=500.0)
    node = NodeSpec(gpus_per_node=4, gpu=gpu,
                    intra_link=LinkSpec("TestNVLink", 100.0, alpha_s=1e-6))
    return ClusterSpec(name="tiny", n_nodes=4, node=node,
                       inter_link=LinkSpec("TestIB", 10.0, alpha_s=1e-5))


@pytest.fixture(scope="module")
def world(tiny_cluster_module):
    cluster = tiny_cluster_module
    fabric = Fabric(cluster, heterogeneity=HeterogeneityModel(), seed=11)
    model = get_model("gpt-toy")
    profile = profile_compute(model, cluster, noise_sigma=0.01, seed=5)
    return cluster, model, fabric.bandwidth(), profile


def _config(pp, tp, dp, recompute=False):
    return ParallelConfig(pp=pp, tp=tp, dp=dp, micro_batch=2,
                          global_batch=2 * dp * 4, recompute=recompute)


def _random_move(rng: np.random.Generator, n: int):
    """A random (kind, i, j) spec valid for apply_move on length n."""
    kind = ("swap", "migrate", "reverse")[int(rng.integers(3))]
    if kind == "swap":
        i, j = rng.choice(n, size=2, replace=False)
    elif kind == "migrate":
        i, j = int(rng.integers(n)), int(rng.integers(n - 1))
    else:
        i = int(rng.integers(n - 1))
        j = int(rng.integers(i + 2, n + 1))
    return (kind, int(i), int(j))


# ------------------------------------------------------------- apply_move


class TestApplyMove:
    def test_swap(self):
        perm = np.arange(6)
        out = apply_move(perm, ("swap", 1, 4))
        assert list(out) == [0, 4, 2, 3, 1, 5]

    def test_migrate_matches_delete_insert(self):
        rng = np.random.default_rng(0)
        perm = rng.permutation(8)
        for i in range(8):
            for j in range(7):
                spec = np.insert(np.delete(perm, i), j, perm[i])
                assert np.array_equal(
                    apply_move(perm, ("migrate", i, j)), spec)

    def test_reverse(self):
        perm = np.arange(6)
        out = apply_move(perm, ("reverse", 1, 5))
        assert list(out) == [0, 4, 3, 2, 1, 5]

    def test_input_never_mutated(self):
        perm = np.arange(6)
        apply_move(perm, ("swap", 0, 5))
        apply_move(perm, ("migrate", 2, 0))
        apply_move(perm, ("reverse", 0, 6))
        assert list(perm) == list(range(6))

    @pytest.mark.parametrize("move", [
        ("swap", -1, 0), ("swap", 0, 6),
        ("migrate", 6, 0), ("migrate", 0, 5),
        ("reverse", 0, 1), ("reverse", 3, 2), ("reverse", 0, 7),
        ("teleport", 0, 1),
    ])
    def test_invalid_moves_rejected(self, move):
        with pytest.raises(ValueError):
            apply_move(np.arange(6), move)


# ------------------------------------------------- delta / batch exactness


class TestDeltaForMove:
    @pytest.mark.parametrize("pp,tp,dp", SHAPES)
    @pytest.mark.parametrize("recompute", [False, True])
    def test_random_walk_matches_full_rescore(self, world, pp, tp, dp,
                                              recompute):
        cluster, model, bandwidth, profile = world
        config = _config(pp, tp, dp, recompute=recompute)
        kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
        grid = WorkerGrid(pp=pp, tp=tp, dp=dp)
        perm = np.asarray(
            sequential_mapping(grid, cluster).block_to_slot, dtype=np.int64)
        n = len(perm)
        if n < 3:
            pytest.skip("single-block permutation has no moves")
        rng = np.random.default_rng(pp * 100 + tp * 10 + dp)
        for _ in range(40):
            move = _random_move(rng, n)
            after = apply_move(perm, move)
            full_delta = kernel.evaluate_perm(after) \
                - kernel.evaluate_perm(perm)
            assert kernel.delta_for_move(perm, move) == full_delta
            perm = after  # walk on, so deltas are probed off-optimum too

    @pytest.mark.parametrize("options", OPTION_DRAWS)
    def test_exact_under_every_ablation(self, world, options):
        cluster, model, bandwidth, profile = world
        config = _config(4, 2, 2)
        kernel = LatencyKernel(model, config, cluster, bandwidth, profile,
                               options)
        grid = WorkerGrid(pp=4, tp=2, dp=2)
        perm = np.asarray(
            sequential_mapping(grid, cluster).block_to_slot, dtype=np.int64)
        rng = np.random.default_rng(7)
        for _ in range(40):
            move = _random_move(rng, len(perm))
            after = apply_move(perm, move)
            full_delta = kernel.evaluate_perm(after) \
                - kernel.evaluate_perm(perm)
            assert kernel.delta_for_move(perm, move) == full_delta
            perm = after

    def test_identity_move_is_zero(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        perm = np.asarray(
            sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2),
                               cluster).block_to_slot, dtype=np.int64)
        assert kernel.delta_for_move(perm, ("swap", 3, 3)) == 0.0


class TestEvaluateBatch:
    @pytest.mark.parametrize("pp,tp,dp", SHAPES)
    def test_rows_bit_identical_to_evaluate_perm(self, world, pp, tp, dp):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(pp, tp, dp), cluster,
                                bandwidth, profile)
        n = pp * dp
        rng = np.random.default_rng(pp + tp + dp)
        perms = np.stack([rng.permutation(n) for _ in range(24)]
                         ).astype(np.int64)
        batch = kernel.evaluate_batch(perms)
        singles = np.array([kernel.evaluate_perm(p) for p in perms])
        assert np.array_equal(batch, singles)

    @pytest.mark.parametrize("options", OPTION_DRAWS)
    def test_exact_under_every_ablation(self, world, options):
        cluster, model, bandwidth, profile = world
        config = _config(2, 2, 4)
        kernel = LatencyKernel(model, config, cluster, bandwidth, profile,
                               options)
        rng = np.random.default_rng(13)
        perms = np.stack([rng.permutation(8) for _ in range(16)]
                         ).astype(np.int64)
        batch = kernel.evaluate_batch(perms)
        singles = np.array([kernel.evaluate_perm(p) for p in perms])
        assert np.array_equal(batch, singles)

    def test_agrees_with_reference_model(self, world):
        cluster, model, bandwidth, profile = world
        config = _config(4, 2, 2)
        kernel = LatencyKernel(model, config, cluster, bandwidth, profile,
                               LatencyModelOptions(dp_exposure_aware=True))
        grid = WorkerGrid(pp=4, tp=2, dp=2)
        base = sequential_mapping(grid, cluster)
        rng = np.random.default_rng(3)
        perms = np.stack([rng.permutation(8) for _ in range(6)]
                         ).astype(np.int64)
        expected = [latency_with_options(
            model, config, base.with_block_permutation(p.copy()), bandwidth,
            profile, options=LatencyModelOptions(dp_exposure_aware=True))
            for p in perms]
        assert list(kernel.evaluate_batch(perms)) == expected

    def test_rejects_wrong_shape(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        with pytest.raises(ValueError, match=r"\(K, 8\)"):
            kernel.evaluate_batch(np.arange(8))
        with pytest.raises(ValueError, match=r"\(K, 8\)"):
            kernel.evaluate_batch(np.zeros((2, 7), dtype=np.int64))


class TestIncrementalEvaluator:
    def test_bind_propose_accept_cycle(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        inc = kernel.incremental()
        perm = np.asarray(
            sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2),
                               cluster).block_to_slot, dtype=np.int64)
        assert inc.bind(perm) == kernel.evaluate_perm(perm)
        rng = np.random.default_rng(5)
        for _ in range(30):
            cand = apply_move(inc.perm, _random_move(rng, len(perm)))
            assert inc.propose(cand) == kernel.evaluate_perm(cand)
            if rng.random() < 0.5:
                inc.accept()
                assert np.array_equal(inc.perm, cand)
                assert inc.value == kernel.evaluate_perm(cand)

    def test_reject_leaves_bound_state_untouched(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(2, 2, 4), cluster, bandwidth,
                                profile)
        inc = kernel.incremental()
        perm = np.asarray(
            sequential_mapping(WorkerGrid(pp=2, tp=2, dp=4),
                               cluster).block_to_slot, dtype=np.int64)
        bound = inc.bind(perm)
        inc.propose(apply_move(perm, ("swap", 0, 7)))
        assert np.array_equal(inc.perm, perm)
        assert inc.value == bound

    def test_accept_without_proposal_raises(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        inc = kernel.incremental()
        with pytest.raises(RuntimeError):
            inc.accept()


# --------------------------------------------------------- seed identity


class TestSeedIdentity:
    @pytest.mark.parametrize("pp,tp,dp", [(4, 2, 2), (2, 4, 2), (1, 2, 8),
                                          (4, 1, 4), (2, 2, 4)])
    def test_delta_loop_matches_reference(self, world, pp, tp, dp):
        # The default loop now runs the incremental path whenever the
        # kernel offers one; the trajectory must still be bit-identical
        # to the pre-kernel reference implementation.
        cluster, model, bandwidth, profile = world
        config = _config(pp, tp, dp)
        kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
        initial = sequential_mapping(WorkerGrid(pp=pp, tp=tp, dp=dp), cluster)
        options = SAOptions(max_iterations=400, seed=pp + tp + dp,
                            delta_min_slots=0)
        fast = anneal_mapping(initial, kernel, options)
        reference = anneal_mapping_reference(initial, kernel, options)
        assert fast.value == reference.value
        assert fast.history == reference.history
        assert fast.accepted == reference.accepted
        assert fast.evaluations == reference.evaluations
        assert np.array_equal(fast.mapping.block_to_slot,
                              reference.mapping.block_to_slot)

    def test_portfolio_collection_never_perturbs_the_search(self, world):
        cluster, model, bandwidth, profile = world
        config = _config(4, 2, 2)
        kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2), cluster)
        plain = anneal_mapping(initial, kernel,
                               SAOptions(max_iterations=400, seed=9))
        tracked = anneal_mapping(initial, kernel,
                                 SAOptions(max_iterations=400, seed=9,
                                           portfolio_k=6))
        assert tracked.value == plain.value
        assert tracked.history == plain.history
        assert tracked.evaluations == plain.evaluations
        assert np.array_equal(tracked.mapping.block_to_slot,
                              plain.mapping.block_to_slot)

    def test_recorder_never_perturbs_the_delta_loop(self, world):
        cluster, model, bandwidth, profile = world
        config = _config(2, 2, 4)
        kernel = pipette_kernel(model, config, cluster, bandwidth, profile)
        initial = sequential_mapping(WorkerGrid(pp=2, tp=2, dp=4), cluster)
        options = SAOptions(max_iterations=300, seed=2, portfolio_k=3,
                            delta_min_slots=0)
        bare = anneal_mapping(initial, kernel, options)
        recorder = FlightRecorder()
        observed = anneal_mapping(initial, kernel, options, recorder=recorder)
        assert observed.value == bare.value
        assert observed.history == bare.history
        assert np.array_equal(observed.mapping.block_to_slot,
                              bare.mapping.block_to_slot)


# ------------------------------------------------------------- SAOptions


class TestOptionsKnobs:
    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            SAOptions(max_iterations=10, batch_size=0)

    def test_portfolio_k_validated(self):
        with pytest.raises(ValueError, match="portfolio_k"):
            SAOptions(max_iterations=10, portfolio_k=0)

    def test_delta_min_slots_validated(self):
        with pytest.raises(ValueError, match="delta_min_slots"):
            SAOptions(max_iterations=10, delta_min_slots=-1)

    def test_with_seed_preserves_new_knobs(self):
        options = SAOptions(max_iterations=123, alpha=0.99, seed=1,
                            batch_size=16, portfolio_k=5,
                            delta_min_slots=7, moves=("swap", "reverse"))
        reseeded = options.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.batch_size == 16
        assert reseeded.portfolio_k == 5
        assert reseeded.delta_min_slots == 7
        assert reseeded.moves == ("swap", "reverse")
        assert reseeded.max_iterations == 123
        assert reseeded.alpha == 0.99


# ------------------------------------------------------------- portfolio


class TestPortfolio:
    def test_entry_zero_is_the_best(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2), cluster)
        result = anneal_mapping(initial, kernel,
                                SAOptions(max_iterations=600, seed=4,
                                          portfolio_k=4))
        mapping, value = result.portfolio[0]
        assert value == result.value
        assert np.array_equal(mapping.block_to_slot,
                              result.mapping.block_to_slot)

    def test_entries_distinct_sorted_and_exactly_valued(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2), cluster)
        result = anneal_mapping(initial, kernel,
                                SAOptions(max_iterations=600, seed=4,
                                          portfolio_k=5))
        assert 1 < len(result.portfolio) <= 5
        values = [v for _, v in result.portfolio]
        assert values == sorted(values)
        keys = {np.asarray(m.block_to_slot, dtype=np.int64).tobytes()
                for m, _ in result.portfolio}
        assert len(keys) == len(result.portfolio)
        for mapping, value in result.portfolio:
            perm = np.asarray(mapping.block_to_slot, dtype=np.int64)
            assert kernel.evaluate_perm(perm) == value

    def test_collection_costs_zero_objective_calls(self, world):
        cluster, model, bandwidth, profile = world
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2),
                                     cluster)
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        calls = {"n": 0}

        def counting(mapping):
            calls["n"] += 1
            return float(kernel(mapping))

        iterations = 120
        anneal_mapping(initial, counting,
                       SAOptions(max_iterations=iterations, seed=1,
                                 initial_temperature=0.5, portfolio_k=8))
        assert calls["n"] == iterations + 1

    def test_restarts_merge_portfolios(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2), cluster)
        result = anneal_mapping_with_restarts(
            initial, kernel,
            SAOptions(max_iterations=250, seed=1, portfolio_k=4),
            n_restarts=3)
        assert result.portfolio[0][1] == result.value
        assert 1 < len(result.portfolio) <= 4
        values = [v for _, v in result.portfolio]
        assert values == sorted(values)
        for mapping, value in result.portfolio:
            perm = np.asarray(mapping.block_to_slot, dtype=np.int64)
            assert kernel.evaluate_perm(perm) == value

    def test_portfolio_k_one_keeps_only_the_best(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2), cluster)
        result = anneal_mapping(initial, kernel,
                                SAOptions(max_iterations=200, seed=1))
        assert len(result.portfolio) == 1
        assert result.portfolio[0][1] == result.value


# ----------------------------------------------------------- batched loop


class TestBatchedLoop:
    def test_deterministic_per_seed(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2), cluster)
        options = SAOptions(max_iterations=400, seed=6, batch_size=8,
                            portfolio_k=3)
        a = anneal_mapping(initial, kernel, options)
        b = anneal_mapping(initial, kernel, options)
        assert a.value == b.value
        assert a.history == b.history
        assert a.evaluations == b.evaluations
        assert a.accepted == b.accepted
        assert np.array_equal(a.mapping.block_to_slot,
                              b.mapping.block_to_slot)

    def test_respects_iteration_budget_exactly(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2), cluster)
        result = anneal_mapping(initial, kernel,
                                SAOptions(max_iterations=333, seed=6,
                                          batch_size=7))
        assert result.iterations == 333
        assert result.evaluations >= result.iterations

    def test_batch_path_matches_per_row_fallback(self, world):
        # An objective exposing evaluate_perm but not evaluate_batch is
        # scored row by row; the kernel's batched call must not change
        # the trajectory (rows are bit-identical by contract).
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(2, 2, 4), cluster, bandwidth,
                                profile)

        class PerRowOnly:
            grid = kernel.grid

            def evaluate_perm(self, perm):
                return kernel.evaluate_perm(perm)

        initial = sequential_mapping(WorkerGrid(pp=2, tp=2, dp=4), cluster)
        options = SAOptions(max_iterations=300, seed=8, batch_size=6)
        batched = anneal_mapping(initial, kernel, options)
        rowwise = anneal_mapping(initial, PerRowOnly(), options)
        assert batched.value == rowwise.value
        assert batched.history == rowwise.history
        assert batched.evaluations == rowwise.evaluations
        assert np.array_equal(batched.mapping.block_to_slot,
                              rowwise.mapping.block_to_slot)

    def test_never_worse_than_start(self, world):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2), cluster)
        result = anneal_mapping(initial, kernel,
                                SAOptions(max_iterations=500, seed=0,
                                          batch_size=16))
        assert result.value <= result.initial_value


# -------------------------------------------------- flight-recorder stats


class TestRecorderMoveStats:
    def _run(self, world, **sa_kwargs):
        cluster, model, bandwidth, profile = world
        kernel = pipette_kernel(model, _config(4, 2, 2), cluster, bandwidth,
                                profile)
        initial = sequential_mapping(WorkerGrid(pp=4, tp=2, dp=2), cluster)
        recorder = FlightRecorder()
        result = anneal_mapping(initial, kernel,
                                SAOptions(seed=3, **sa_kwargs),
                                recorder=recorder)
        return result, recorder

    def test_per_move_kind_counters(self, world):
        result, recorder = self._run(world, max_iterations=300)
        assert set(recorder.moves_proposed) <= {"migrate", "swap", "reverse"}
        assert sum(recorder.moves_proposed.values()) == result.iterations
        assert sum(recorder.moves_accepted.values()) == result.accepted
        for kind, accepted in recorder.moves_accepted.items():
            assert accepted <= recorder.moves_proposed[kind]

    def test_delta_vs_full_split_sequential(self, world):
        # With the delta path forced on, everything after the initial
        # bind goes through it: probes + one per iteration.
        result, recorder = self._run(world, max_iterations=300,
                                     delta_min_slots=0)
        assert recorder.full_evaluations == 1
        assert recorder.delta_evaluations == result.evaluations - 1
        assert recorder.delta_evaluations \
            + recorder.full_evaluations == recorder.evaluations

    def test_small_perms_default_to_full_rescoring(self, world):
        # Default gate: below delta_min_slots the vectorized full
        # re-score is faster, so no delta evaluations happen (the
        # trajectory is bit-identical either way).
        result, recorder = self._run(world, max_iterations=300)
        assert recorder.delta_evaluations == 0
        assert recorder.full_evaluations == recorder.evaluations
        forced, _ = self._run(world, max_iterations=300, delta_min_slots=0)
        assert forced.value == result.value
        assert forced.history == result.history
        assert np.array_equal(forced.mapping.block_to_slot,
                              result.mapping.block_to_slot)

    def test_delta_vs_full_split_batched(self, world):
        # Batch mode scores whole proposals via evaluate_batch — full
        # evaluations only.
        result, recorder = self._run(world, max_iterations=300, batch_size=8)
        assert recorder.delta_evaluations == 0
        assert recorder.full_evaluations == recorder.evaluations

    def test_payload_carries_move_and_delta_stats(self, world):
        result, recorder = self._run(world, max_iterations=120)
        payload = recorder.to_payload()
        assert payload["delta_evaluations"] == recorder.delta_evaluations
        assert payload["full_evaluations"] == recorder.full_evaluations
        assert payload["moves"]["proposed"] == recorder.moves_proposed
        assert payload["moves"]["accepted"] == recorder.moves_accepted

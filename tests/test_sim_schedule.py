"""Pipeline schedules: the instruction layer and its registry."""

import pytest

from repro.sim.schedule import (
    BACKWARD,
    FORWARD,
    BackwardPass,
    Dependency,
    ForwardPass,
    GPipeSchedule,
    Instruction,
    Interleaved1F1BSchedule,
    OneFOneBSchedule,
    RecvActivation,
    RecvGrad,
    SendActivation,
    SendGrad,
    build_schedule,
    max_in_flight,
    pipeline_critical_time,
    registered_schedules,
    schedule_type,
)


def op_counts(steps):
    fwd = sum(1 for o in steps if isinstance(o, ForwardPass))
    bwd = sum(1 for o in steps if isinstance(o, BackwardPass))
    return fwd, bwd


def kinds(steps):
    return [FORWARD if isinstance(o, ForwardPass) else BACKWARD
            for o in steps]


class TestInstruction:
    def test_rejects_negative_stage(self):
        with pytest.raises(ValueError):
            ForwardPass(-1, 0, 0)

    def test_rejects_negative_microbatch(self):
        with pytest.raises(ValueError):
            BackwardPass(0, -1, 0)

    def test_rejects_negative_virtual_stage(self):
        with pytest.raises(ValueError):
            Instruction(0, 0, -1)

    def test_frozen_and_hashable(self):
        a = ForwardPass(1, 2, 1)
        assert a == ForwardPass(1, 2, 1)
        assert a != BackwardPass(1, 2, 1)
        assert len({a, ForwardPass(1, 2, 1)}) == 1


class TestOneFOneB:
    @pytest.mark.parametrize("pp,n_mb", [(1, 1), (2, 4), (4, 8), (4, 2), (8, 3)])
    def test_each_stage_runs_every_microbatch(self, pp, n_mb):
        sched = OneFOneBSchedule(pp, n_mb)
        for s in range(pp):
            assert op_counts(sched.compute_steps(s)) == (n_mb, n_mb)

    def test_warmup_depth(self):
        sched = OneFOneBSchedule(4, 8)
        # Stage 0 warms up with pp-1 forwards, then enters the steady
        # 1F1B rhythm: one more forward, then its first backward.
        assert kinds(sched.compute_steps(0)[:5]) == \
            [FORWARD, FORWARD, FORWARD, FORWARD, BACKWARD]

    def test_last_stage_alternates_immediately(self):
        sched = OneFOneBSchedule(4, 4)
        assert kinds(sched.compute_steps(3)[:4]) == \
            [FORWARD, BACKWARD, FORWARD, BACKWARD]

    def test_backward_follows_own_forward(self):
        # On every stage, B(m) must appear after F(m).
        for pp, n_mb in [(2, 4), (4, 8), (3, 5)]:
            sched = OneFOneBSchedule(pp, n_mb)
            for s in range(pp):
                steps = sched.compute_steps(s)
                f_pos = {o.microbatch: i for i, o in enumerate(steps)
                         if isinstance(o, ForwardPass)}
                for i, o in enumerate(steps):
                    if isinstance(o, BackwardPass):
                        assert f_pos[o.microbatch] < i

    def test_microbatch_order_is_fifo(self):
        sched = OneFOneBSchedule(4, 8)
        for s in range(4):
            steps = sched.compute_steps(s)
            fwd = [o.microbatch for o in steps if isinstance(o, ForwardPass)]
            bwd = [o.microbatch for o in steps if isinstance(o, BackwardPass)]
            assert fwd == sorted(fwd)
            assert bwd == sorted(bwd)

    def test_in_flight_bounded_by_pp_minus_stage(self):
        # The memory-efficient property (Fig. 2b): stage s never holds
        # more than pp - s live activations.
        pp, n_mb = 4, 16
        sched = OneFOneBSchedule(pp, n_mb)
        for s in range(pp):
            assert max_in_flight(sched, s) == min(pp - s, n_mb)

    def test_fewer_microbatches_than_stages(self):
        sched = OneFOneBSchedule(8, 2)
        for s in range(8):
            assert op_counts(sched.compute_steps(s)) == (2, 2)

    def test_virtual_stage_equals_stage(self):
        sched = OneFOneBSchedule(4, 4)
        for s in range(4):
            assert all(o.virtual_stage == s for o in sched.compute_steps(s))


class TestGpipe:
    def test_all_forwards_first(self):
        sched = GPipeSchedule(2, 4)
        for s in range(2):
            assert kinds(sched.compute_steps(s)) == \
                [FORWARD] * 4 + [BACKWARD] * 4

    def test_in_flight_is_all_microbatches(self):
        # The memory-unaware property (Fig. 2a).
        sched = GPipeSchedule(4, 6)
        for s in range(4):
            assert max_in_flight(sched, s) == 6


class TestInterleaved:
    def test_degree_and_virtual_stages(self):
        sched = Interleaved1F1BSchedule(4, 8)
        assert sched.degree == 2
        assert sched.n_virtual_stages == 8
        assert sched.local_chunks(1) == [1, 5]
        assert sched.device_of(5) == 1

    @pytest.mark.parametrize("pp,n_mb", [(2, 4), (4, 8), (4, 4)])
    def test_each_chunk_runs_every_microbatch(self, pp, n_mb):
        sched = Interleaved1F1BSchedule(pp, n_mb)
        for s in range(pp):
            steps = sched.compute_steps(s)
            assert op_counts(steps) == (n_mb * 2, n_mb * 2)
            for vs in sched.local_chunks(s):
                fwd = {o.microbatch for o in steps
                       if isinstance(o, ForwardPass) and o.virtual_stage == vs}
                bwd = {o.microbatch for o in steps
                       if isinstance(o, BackwardPass) and o.virtual_stage == vs}
                assert fwd == bwd == set(range(n_mb))

    def test_forwards_advance_in_groups_of_pp(self):
        # Megatron ordering: pp microbatches through the shallow chunk,
        # then the same pp through the deep chunk.
        sched = Interleaved1F1BSchedule(2, 4)
        steps = [o for o in sched.compute_steps(0)
                 if isinstance(o, ForwardPass)]
        slots = [(o.virtual_stage, o.microbatch) for o in steps[:4]]
        assert slots == [(0, 0), (0, 1), (2, 0), (2, 1)]

    def test_backwards_drain_deepest_chunk_first(self):
        sched = Interleaved1F1BSchedule(2, 4)
        steps = [o for o in sched.compute_steps(0)
                 if isinstance(o, BackwardPass)]
        slots = [(o.virtual_stage, o.microbatch) for o in steps[:4]]
        assert slots == [(2, 0), (2, 1), (0, 0), (0, 1)]

    def test_infeasible_shapes_rejected(self):
        ok, why = Interleaved1F1BSchedule.feasible(1, 4)
        assert not ok and "pp >= 2" in why
        ok, why = Interleaved1F1BSchedule.feasible(4, 6)
        assert not ok and "multiple" in why
        ok, why = Interleaved1F1BSchedule.feasible(4, 8, n_layers=4)
        assert not ok and "layers" in why
        with pytest.raises(ValueError):
            Interleaved1F1BSchedule(4, 6)

    def test_holds_more_than_flat_1f1b(self):
        pp, n_mb = 4, 8
        inter = Interleaved1F1BSchedule(pp, n_mb)
        flat = OneFOneBSchedule(pp, n_mb)
        for s in range(pp):
            # Compare in device-stage equivalents: peak chunks / degree.
            assert inter.peak_activation_chunks(s) / inter.degree \
                > flat.peak_activation_chunks(s)


class TestStepsFraming:
    def test_1f1b_interior_stage_framed_with_transfers(self):
        sched = OneFOneBSchedule(4, 4)
        steps = sched.steps(1)
        # Every forward on an interior stage receives from upstream and
        # sends downstream; every backward receives grad and sends grad.
        fwd = [i for i, o in enumerate(steps) if isinstance(o, ForwardPass)]
        for i in fwd:
            assert isinstance(steps[i - 1], RecvActivation)
            assert steps[i - 1].peer == 0
            assert isinstance(steps[i + 1], SendActivation)
            assert steps[i + 1].peer == 2
        bwd = [i for i, o in enumerate(steps) if isinstance(o, BackwardPass)]
        for i in bwd:
            assert isinstance(steps[i - 1], RecvGrad)
            assert isinstance(steps[i + 1], SendGrad)

    def test_first_stage_never_receives_activations(self):
        sched = OneFOneBSchedule(4, 4)
        assert not any(isinstance(o, RecvActivation) for o in sched.steps(0))

    def test_last_stage_never_sends_activations(self):
        sched = OneFOneBSchedule(4, 4)
        assert not any(isinstance(o, SendActivation) for o in sched.steps(3))

    def test_single_stage_has_no_comm(self):
        sched = OneFOneBSchedule(1, 4)
        assert kinds(sched.steps(0)) == kinds(sched.compute_steps(0))


class TestDependencies:
    def test_first_forward_has_none(self):
        sched = OneFOneBSchedule(4, 4)
        assert sched.dependencies(ForwardPass(0, 0, 0)) == ()

    def test_interior_forward_waits_on_upstream(self):
        sched = OneFOneBSchedule(4, 4)
        deps = sched.dependencies(ForwardPass(2, 1, 2))
        assert deps == (Dependency(FORWARD, 1, 1, transfer_from=1),)

    def test_backward_waits_on_downstream_and_own_forward(self):
        sched = OneFOneBSchedule(4, 4)
        deps = sched.dependencies(BackwardPass(1, 0, 1))
        assert Dependency(BACKWARD, 2, 0, transfer_from=2) in deps
        assert Dependency(FORWARD, 1, 0) in deps

    def test_interleaved_cross_device_boundary_flagged(self):
        # With pp=2, degree=2: chunk 1 lives on device 1, chunk 2 on
        # device 0; the 1->2 boundary crosses devices so the forward of
        # chunk 2 on device 0 waits on a transfer from device 1.
        sched = Interleaved1F1BSchedule(2, 2)
        deps = sched.dependencies(ForwardPass(0, 0, 2))
        assert deps == (Dependency(FORWARD, 1, 0, transfer_from=1),)

    def test_comm_instruction_rejected(self):
        sched = OneFOneBSchedule(2, 2)
        with pytest.raises(TypeError):
            sched.dependencies(SendActivation(0, 0, 0, peer=1))


class TestRegistry:
    def test_registered_names(self):
        assert registered_schedules() == ("1f1b", "gpipe", "interleaved_1f1b")

    def test_build_dispatch(self):
        assert isinstance(build_schedule("1f1b", 2, 2), OneFOneBSchedule)
        assert isinstance(build_schedule("gpipe", 2, 2), GPipeSchedule)
        assert isinstance(build_schedule("interleaved_1f1b", 2, 2),
                          Interleaved1F1BSchedule)

    def test_unknown_rejected_listing_names(self):
        with pytest.raises(ValueError, match="registered schedules"):
            build_schedule("interleaved", 2, 2)
        with pytest.raises(ValueError, match="'1f1b', 'gpipe'"):
            schedule_type("bogus")

    def test_gpipe_holds_more_than_1f1b(self):
        pp, n_mb = 4, 8
        eff = build_schedule("1f1b", pp, n_mb)
        una = build_schedule("gpipe", pp, n_mb)
        assert max_in_flight(una, 0) > max_in_flight(eff, 1)


class TestCriticalTime:
    def test_1f1b_matches_paper_formula(self):
        pp, n_mb, c, t = 4, 8, 0.01, 0.002
        expected = ((pp * c + t) * (n_mb / pp)) + (pp - 1) * c
        assert pipeline_critical_time("1f1b", pp, n_mb, c, t) == expected

    def test_gpipe_pays_bubble_once(self):
        pp, n_mb, c, t = 4, 8, 0.01, 0.002
        assert pipeline_critical_time("gpipe", pp, n_mb, c, t) == \
            (n_mb + pp - 1) * c + t

    def test_interleaved_shrinks_straggler_but_doubles_hops(self):
        pp, n_mb = 4, 8
        # Communication-free: interleaving halves the straggler bubble.
        assert pipeline_critical_time("interleaved_1f1b", pp, n_mb, 0.01, 0.0) \
            < pipeline_critical_time("1f1b", pp, n_mb, 0.01, 0.0)
        # Communication-dominated: the doubled hops lose.
        assert pipeline_critical_time("interleaved_1f1b", pp, n_mb, 0.0, 0.01) \
            > pipeline_critical_time("1f1b", pp, n_mb, 0.0, 0.01)

"""Pipeline schedules: 1F1B and GPipe op sequences."""

import pytest

from repro.sim.schedule import (
    BACKWARD,
    FORWARD,
    PipelineOp,
    build_schedule,
    gpipe_schedule,
    max_in_flight,
    one_f_one_b_schedule,
)


def op_counts(ops):
    fwd = sum(1 for o in ops if o.kind == FORWARD)
    bwd = sum(1 for o in ops if o.kind == BACKWARD)
    return fwd, bwd


class TestPipelineOp:
    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            PipelineOp(0, "X", 0)

    def test_rejects_negative_stage(self):
        with pytest.raises(ValueError):
            PipelineOp(-1, FORWARD, 0)


class TestOneFOneB:
    @pytest.mark.parametrize("pp,n_mb", [(1, 1), (2, 4), (4, 8), (4, 2), (8, 3)])
    def test_each_stage_runs_every_microbatch(self, pp, n_mb):
        sched = one_f_one_b_schedule(pp, n_mb)
        assert len(sched) == pp
        for ops in sched:
            assert op_counts(ops) == (n_mb, n_mb)

    def test_warmup_depth(self):
        sched = one_f_one_b_schedule(4, 8)
        # Stage 0 warms up with pp-1 forwards, then enters the steady
        # 1F1B rhythm: one more forward, then its first backward.
        kinds = [o.kind for o in sched[0][:5]]
        assert kinds == [FORWARD, FORWARD, FORWARD, FORWARD, BACKWARD]

    def test_last_stage_alternates_immediately(self):
        sched = one_f_one_b_schedule(4, 4)
        kinds = [o.kind for o in sched[3][:4]]
        assert kinds == [FORWARD, BACKWARD, FORWARD, BACKWARD]

    def test_backward_follows_own_forward(self):
        # On every stage, B(m) must appear after F(m).
        for pp, n_mb in [(2, 4), (4, 8), (3, 5)]:
            sched = one_f_one_b_schedule(pp, n_mb)
            for ops in sched:
                f_pos = {o.microbatch: i for i, o in enumerate(ops)
                         if o.kind == FORWARD}
                for i, o in enumerate(ops):
                    if o.kind == BACKWARD:
                        assert f_pos[o.microbatch] < i

    def test_microbatch_order_is_fifo(self):
        sched = one_f_one_b_schedule(4, 8)
        for ops in sched:
            fwd = [o.microbatch for o in ops if o.kind == FORWARD]
            bwd = [o.microbatch for o in ops if o.kind == BACKWARD]
            assert fwd == sorted(fwd)
            assert bwd == sorted(bwd)

    def test_in_flight_bounded_by_pp_minus_stage(self):
        # The memory-efficient property (Fig. 2b): stage s never holds
        # more than pp - s live activations.
        pp, n_mb = 4, 16
        sched = one_f_one_b_schedule(pp, n_mb)
        for s in range(pp):
            assert max_in_flight(sched, s) == min(pp - s, n_mb)

    def test_fewer_microbatches_than_stages(self):
        sched = one_f_one_b_schedule(8, 2)
        for ops in sched:
            assert op_counts(ops) == (2, 2)


class TestGpipe:
    def test_all_forwards_first(self):
        sched = gpipe_schedule(2, 4)
        for ops in sched:
            kinds = [o.kind for o in ops]
            assert kinds == [FORWARD] * 4 + [BACKWARD] * 4

    def test_in_flight_is_all_microbatches(self):
        # The memory-unaware property (Fig. 2a).
        sched = gpipe_schedule(4, 6)
        for s in range(4):
            assert max_in_flight(sched, s) == 6


class TestBuildSchedule:
    def test_dispatch(self):
        assert build_schedule("1f1b", 2, 2) == one_f_one_b_schedule(2, 2)
        assert build_schedule("gpipe", 2, 2) == gpipe_schedule(2, 2)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_schedule("interleaved", 2, 2)

    def test_gpipe_holds_more_than_1f1b(self):
        pp, n_mb = 4, 8
        eff = one_f_one_b_schedule(pp, n_mb)
        una = gpipe_schedule(pp, n_mb)
        assert max_in_flight(una, 0) > max_in_flight(eff, 1)

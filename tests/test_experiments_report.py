"""Terminal reporting helpers and the run-everything orchestrator."""

import io

import pytest

from repro.experiments.report import ascii_bars, ascii_scatter, log_ticks
from repro.experiments.runner import ALL_EXPERIMENTS, run_all


class TestAsciiScatter:
    def test_renders_points_and_diagonal(self):
        text = ascii_scatter([1, 2, 3], [1.1, 1.9, 3.2], title="T")
        assert "T" in text
        assert "o" in text
        assert "." in text  # the R=1 line

    def test_custom_marks(self):
        text = ascii_scatter([1, 2], [1, 2], marks="PA")
        assert "P" in text and "A" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter([1], [1, 2])

    def test_mismatched_marks_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter([1, 2], [1, 2], marks="P")

    def test_empty_is_graceful(self):
        assert "(no points)" in ascii_scatter([], [], title="x")

    def test_axis_labels_present(self):
        text = ascii_scatter([1], [1], xlabel="act", ylabel="est")
        assert "est vs act" in text

    def test_all_points_land_in_grid(self):
        # No exception for extreme aspect ratios / ranges.
        ascii_scatter([0.001, 1000.0], [1000.0, 0.001], width=10, height=5)


class TestAsciiBars:
    def test_renders_all_bars(self):
        text = ascii_bars(["a", "bb"], [1.0, 2.0], unit="s")
        assert "a " in text or "a|" in text or "a |" in text
        assert "2.00s" in text

    def test_longest_bar_is_max(self):
        text = ascii_bars(["x", "y"], [1.0, 4.0], width=20)
        rows = [l for l in text.splitlines() if "|" in l]
        assert rows[1].count("#") > rows[0].count("#")

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])

    def test_empty_is_graceful(self):
        assert "(no bars)" in ascii_bars([], [], title="t")

    def test_zero_values_safe(self):
        ascii_bars(["a", "b"], [0.0, 0.0])


class TestLogTicks:
    def test_covers_range(self):
        ticks = log_ticks(0.5, 200.0)
        assert ticks[0] <= 0.5
        assert ticks[-1] >= 200.0

    def test_decades(self):
        assert log_ticks(1.0, 100.0) == [1.0, 10.0, 100.0]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            log_ticks(0.0, 1.0)
        with pytest.raises(ValueError):
            log_ticks(10.0, 1.0)


class TestRunner:
    def test_experiment_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "table2",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_all(["fig99"])

    def test_runs_cheap_subset(self):
        out = io.StringIO()
        timings = run_all(["table1"], output=out)
        assert "table1" in timings
        assert "mid-range" in out.getvalue()

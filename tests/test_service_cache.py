"""Request fingerprinting and the LRU plan cache."""

import numpy as np
import pytest

from repro.cluster.fabric import BandwidthMatrix
from repro.core import PipetteOptions, SAOptions
from repro.core.configurator import PipetteResult
from repro.model import get_model
from repro.service.cache import PlanCache, PlanRequest, canonical_value


def _result() -> PipetteResult:
    return PipetteResult(best=None, ranked=[], rejected_oom=0,
                         memory_check_s=0.0, annealing_s=0.0, total_s=0.0)


@pytest.fixture
def request_a(tiny_cluster, toy_model) -> PlanRequest:
    return PlanRequest(cluster=tiny_cluster, model=toy_model,
                       global_batch=32)


class TestFingerprint:
    def test_stable_across_equal_requests(self, tiny_cluster, toy_model,
                                          request_a):
        twin = PlanRequest(cluster=tiny_cluster, model=toy_model,
                           global_batch=32)
        assert request_a.fingerprint() == twin.fingerprint()

    def test_differs_on_batch(self, tiny_cluster, toy_model, request_a):
        other = PlanRequest(cluster=tiny_cluster, model=toy_model,
                            global_batch=64)
        assert request_a.fingerprint() != other.fingerprint()

    def test_differs_on_model(self, tiny_cluster, request_a):
        other = PlanRequest(cluster=tiny_cluster, model=get_model("gpt-1.1b"),
                            global_batch=32)
        assert request_a.fingerprint() != other.fingerprint()

    def test_differs_on_options(self, tiny_cluster, toy_model, request_a):
        other = PlanRequest(
            cluster=tiny_cluster, model=toy_model, global_batch=32,
            options=PipetteOptions(sa=SAOptions(max_iterations=7)))
        assert request_a.fingerprint() != other.fingerprint()

    def test_micro_batches_normalized(self, tiny_cluster, toy_model):
        a = PlanRequest(cluster=tiny_cluster, model=toy_model,
                        global_batch=32, micro_batches=(4, 1, 2, 2))
        b = PlanRequest(cluster=tiny_cluster, model=toy_model,
                        global_batch=32, micro_batches=(1, 2, 4))
        assert a.micro_batches == (1, 2, 4)  # sorted and deduplicated
        assert a.fingerprint() == b.fingerprint()

    def test_cluster_description_is_cosmetic(self, tiny_cluster, toy_model,
                                             request_a):
        from dataclasses import replace
        renamed = replace(tiny_cluster, description="after relabeling")
        other = PlanRequest(cluster=renamed, model=toy_model, global_batch=32)
        assert request_a.fingerprint() == other.fingerprint()

    def test_canonical_rejects_exotic_values(self):
        with pytest.raises(TypeError):
            canonical_value(object())

    def test_nonpositive_micro_batches_rejected(self, tiny_cluster,
                                                toy_model):
        # Regression: micro_batches=(0,) used to flow straight into
        # configuration enumeration (and get cached).
        for bad in ((0,), (-2,), (2, 0, 4)):
            with pytest.raises(ValueError, match="micro_batches"):
                PlanRequest(cluster=tiny_cluster, model=toy_model,
                            global_batch=32, micro_batches=bad)

    def test_nonpositive_memory_limit_rejected(self, tiny_cluster,
                                               toy_model):
        for bad in (0, -1.0, float("nan")):
            with pytest.raises(ValueError, match="memory_limit_bytes"):
                PlanRequest(cluster=tiny_cluster, model=toy_model,
                            global_batch=32, memory_limit_bytes=bad)

    def test_empty_micro_batches_rejected(self, tiny_cluster, toy_model):
        # An empty restriction enumerates zero configurations and
        # would cache a best=None answer.
        with pytest.raises(ValueError, match="micro_batches"):
            PlanRequest(cluster=tiny_cluster, model=toy_model,
                        global_batch=32, micro_batches=())


class TestPlanCache:
    def test_miss_then_hit(self, request_a):
        cache = PlanCache()
        key = request_a.fingerprint()
        assert cache.get(key, "epoch-1") is None
        cache.put(key, "epoch-1", _result())
        assert cache.get(key, "epoch-1") is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_bandwidth_epoch_mismatch_is_stale(self, request_a):
        cache = PlanCache()
        key = request_a.fingerprint()
        cache.put(key, "epoch-1", _result())
        assert cache.get(key, "epoch-2") is None
        assert cache.stats.stale_drops == 1
        assert key not in cache

    def test_lru_eviction_order(self):
        cache = PlanCache(max_entries=2)
        cache.put("a", "fp", _result())
        cache.put("b", "fp", _result())
        cache.get("a", "fp")           # refresh "a"; "b" is now LRU
        cache.put("c", "fp", _result())
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate_epoch(self):
        cache = PlanCache()
        cache.put("a", "old", _result())
        cache.put("b", "old", _result())
        cache.put("c", "new", _result())
        assert cache.invalidate_epoch("new") == 2
        assert len(cache) == 1 and "c" in cache

    def test_clear_keeps_stats(self):
        cache = PlanCache()
        cache.put("a", "fp", _result())
        cache.get("a", "fp")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)


class TestStaleLookupRecency:
    """A stale lookup must never count as "recent use".

    Regression guard for the LRU/staleness interaction: an epoch-stale
    entry found by ``get`` leaves the store outright.  If the lookup
    instead refreshed the key's recency (``move_to_end``) on its way
    out — or worse, left the refreshed entry behind — the dead plan
    would displace a *live* sibling at the next capacity eviction.
    """

    def test_stale_lookup_drops_entry_without_touching_siblings(self):
        cache = PlanCache(max_entries=2)
        cache.put("stale", "old-epoch", _result())
        cache.put("live", "epoch", _result())
        assert cache.get("stale", "epoch") is None
        assert "stale" not in cache
        # "live" must still be resident and must survive the next put
        # (capacity 2, one slot now free) — a recency-refreshed ghost
        # of "stale" would have pushed it out instead.
        cache.put("new", "epoch", _result())
        assert "live" in cache and "new" in cache
        assert cache.stats.evictions == 0

    def test_stale_lookup_keeps_lru_order_of_survivors(self):
        cache = PlanCache(max_entries=2)
        cache.put("a", "epoch", _result())
        cache.put("b", "old-epoch", _result())
        cache.get("a", "epoch")                 # real hit: "a" is MRU
        assert cache.get("b", "epoch") is None  # stale drop, no refresh
        cache.put("c", "epoch", _result())      # fills b's slot: [a, c]
        cache.put("d", "epoch", _result())      # evicts the true LRU
        assert "a" not in cache
        assert "c" in cache and "d" in cache
        assert cache.stats.evictions == 1

    def test_stale_lookup_stats_are_exact(self):
        cache = PlanCache()
        cache.put("k", "old-epoch", _result())
        assert cache.get("k", "epoch") is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1
        assert cache.stats.stale_drops == 1
        assert cache.stats.evictions == 0
        assert len(cache) == 0
        # Re-planting under the new epoch behaves like any fresh entry.
        cache.put("k", "epoch", _result())
        assert cache.get("k", "epoch") is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stale_drops == 1


class TestBandwidthFingerprint:
    def test_identical_matrices_share_fingerprint(self, tiny_network):
        bw = tiny_network.bandwidth
        twin = BandwidthMatrix(matrix=bw.matrix.copy(),
                               alpha=bw.alpha.copy())
        assert bw.fingerprint() == twin.fingerprint()

    def test_changed_link_changes_fingerprint(self, tiny_network):
        bw = tiny_network.bandwidth
        matrix = bw.matrix.copy()
        matrix[0, 5] *= 0.5
        assert bw.fingerprint() != BandwidthMatrix(
            matrix=matrix, alpha=bw.alpha).fingerprint()

    def test_sub_quantum_noise_ignored(self, tiny_network):
        # Start from an exactly-quantized matrix so the added noise is
        # guaranteed to stay within one rounding quantum.
        base = np.round(np.where(np.isfinite(tiny_network.bandwidth.matrix),
                                 tiny_network.bandwidth.matrix, np.inf), 3)
        alpha = tiny_network.bandwidth.alpha
        clean = BandwidthMatrix(matrix=base, alpha=alpha)
        noisy = BandwidthMatrix(matrix=base + 1e-6, alpha=alpha)
        assert clean.fingerprint(decimals=3) == noisy.fingerprint(decimals=3)

    def test_restrict_preserves_pairwise_values(self, tiny_network):
        bw = tiny_network.bandwidth
        keep = [0, 1, 2, 3, 8, 9, 10, 11]
        sub = bw.restrict(keep)
        assert sub.n_gpus == len(keep)
        for i, gi in enumerate(keep):
            for j, gj in enumerate(keep):
                if i != j:
                    assert sub.between(i, j) == bw.between(gi, gj)
                    assert sub.alpha_between(i, j) == bw.alpha_between(gi, gj)

    def test_restrict_validates(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.bandwidth.restrict([])
        with pytest.raises(ValueError):
            tiny_network.bandwidth.restrict([0, 0, 1])

    def test_nan_and_inf_hash_differently(self, tiny_network):
        # Regression: NaN (failed measurement) and inf both quantized
        # to -1.0, so a poisoned matrix could impersonate a healthy
        # one whose same entry was infinite.
        bw = tiny_network.bandwidth
        poisoned = bw.matrix.copy()
        poisoned[0, 5] = np.nan
        infinite = bw.matrix.copy()
        infinite[0, 5] = np.inf
        fp_nan = BandwidthMatrix(matrix=poisoned, alpha=bw.alpha).fingerprint()
        fp_inf = BandwidthMatrix(matrix=infinite, alpha=bw.alpha).fingerprint()
        assert fp_nan != fp_inf
        assert fp_nan != bw.fingerprint()
        assert fp_inf != bw.fingerprint()

    def test_nan_alpha_hashes_differently(self, tiny_network):
        bw = tiny_network.bandwidth
        alpha_nan = bw.alpha.copy()
        alpha_nan[0, 5] = np.nan
        alpha_inf = bw.alpha.copy()
        alpha_inf[0, 5] = np.inf
        assert BandwidthMatrix(matrix=bw.matrix,
                               alpha=alpha_nan).fingerprint() \
            != BandwidthMatrix(matrix=bw.matrix,
                               alpha=alpha_inf).fingerprint()
